// Tests for the composed §4 stack: OCS tailoring x parking x rate
// adaptation over a simulated fat tree running ML training traffic. The
// headline acceptance claim lives here: the combined stack saves at least
// as much as the best single mechanism on the same workload.
#include "netpp/mech/composite.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "netpp/mech/parking.h"
#include "netpp/mech/rateadapt.h"
#include "netpp/topo/builders.h"
#include "netpp/traffic/generators.h"

namespace netpp {
namespace {

using namespace netpp::literals;

class CompositeStack : public ::testing::Test {
 protected:
  void SetUp() override {
    topo_ = build_fat_tree(4, 100_Gbps);

    MlTrafficConfig cfg;
    cfg.compute_time = 0.9_s;
    cfg.comm_allowance = 0.1_s;
    cfg.iterations = 4;
    cfg.volume_per_host = Bits::from_gigabits(2.0);
    traffic_ = make_ml_training_traffic(topo_->hosts, cfg);

    // Ring all-reduce demands stay below the cores, so tailoring can power
    // off a big share of the over-provisioned fabric.
    const auto& hosts = topo_->hosts;
    for (std::size_t i = 0; i < hosts.size(); ++i) {
      demands_.push_back(
          TrafficDemand{hosts[i], hosts[(i + 1) % hosts.size()], 5_Gbps});
    }

    config_.parking.switch_capacity = Gbps{4 * 100.0};  // 4 ports at 100 G
    config_.num_ocs_devices = 4;
  }

  std::optional<BuiltTopology> topo_;
  MlTraffic traffic_;
  std::vector<TrafficDemand> demands_;
  CompositeConfig config_;
};

TEST_F(CompositeStack, CombinedStackBeatsEverySingleMechanism) {
  const CompositeReport report =
      run_composite(*topo_, traffic_.flows, demands_, 4.0_s, config_);

  EXPECT_EQ(report.switches_total, 20u);
  ASSERT_EQ(report.singles.size(), 3u);
  EXPECT_EQ(report.singles[0].name, "tailoring");
  EXPECT_EQ(report.singles[1].name, "parking");
  EXPECT_EQ(report.singles[2].name, "rate-adaptation");
  for (const auto& single : report.singles) {
    EXPECT_GT(single.savings, 0.0) << single.name;
    EXPECT_LT(single.energy.value(), report.baseline_energy.value())
        << single.name;
  }

  // The acceptance claim: stacking never loses to the best single
  // mechanism on this workload.
  EXPECT_GE(report.combined_savings, report.best_single_savings - 1e-9);
  EXPECT_GT(report.combined_savings, 0.0);
  EXPECT_LT(report.energy.value(), report.baseline_energy.value());
  EXPECT_LT(report.average_power.value(),
            report.baseline_average_power.value());

  // Tailoring bit: the ring workload lets a chunk of the fabric power off.
  EXPECT_TRUE(report.tailoring.feasible);
  EXPECT_FALSE(report.tailoring.powered_off.empty());

  // Parking was exercised by the bursty trace.
  EXPECT_GT(report.park_transitions, 0u);
  EXPECT_GE(report.horizon.value(), 4.0);
}

TEST_F(CompositeStack, ParkOnlyStackEqualsTheParkingSingle) {
  config_.tailor = false;
  config_.rate_adapt = false;
  const CompositeReport report =
      run_composite(*topo_, traffic_.flows, demands_, 4.0_s, config_);

  ASSERT_EQ(report.singles.size(), 1u);
  EXPECT_EQ(report.singles[0].name, "parking");
  // With one enabled mechanism, the "stack" is that mechanism: identical
  // energy, identical savings.
  EXPECT_DOUBLE_EQ(report.energy.value(), report.singles[0].energy.value());
  EXPECT_DOUBLE_EQ(report.combined_savings, report.singles[0].savings);
  EXPECT_DOUBLE_EQ(report.best_single_savings, report.singles[0].savings);
  EXPECT_EQ(report.level_transitions, 0u);  // rate stage disabled
  EXPECT_TRUE(report.tailoring.powered_off.empty());
}

TEST_F(CompositeStack, HorizonExtendsToCoverTheWorkload) {
  config_.tailor = false;
  config_.park = false;
  config_.rate_adapt = false;
  // The four 1-second training iterations outrun a 0.5 s horizon; the
  // energy window must cover the workload, not truncate it.
  const CompositeReport report =
      run_composite(*topo_, traffic_.flows, demands_, 0.5_s, config_);
  EXPECT_GT(report.horizon.value(), 3.0);

  // With every stage disabled, the stack prices the all-on baseline.
  EXPECT_TRUE(report.singles.empty());
  EXPECT_DOUBLE_EQ(report.energy.value(), report.baseline_energy.value());
  EXPECT_DOUBLE_EQ(report.combined_savings, 0.0);
}

TEST_F(CompositeStack, OcsDevicePowerIsCharged) {
  config_.park = false;
  config_.rate_adapt = false;
  config_.num_ocs_devices = 0;
  const CompositeReport free_ocs =
      run_composite(*topo_, traffic_.flows, demands_, 4.0_s, config_);
  config_.num_ocs_devices = 4;
  const CompositeReport paid_ocs =
      run_composite(*topo_, traffic_.flows, demands_, 4.0_s, config_);

  const double expected_charge = config_.ocs.config().ocs_power.value() * 4.0 *
                                 paid_ocs.horizon.value();
  EXPECT_NEAR(paid_ocs.energy.value() - free_ocs.energy.value(),
              expected_charge, 1e-6);
  EXPECT_LT(paid_ocs.combined_savings, free_ocs.combined_savings);
}

TEST_F(CompositeStack, RejectsBadInputs) {
  EXPECT_THROW((void)run_composite(*topo_, traffic_.flows, demands_,
                                   Seconds{0.0}, config_),
               std::invalid_argument);
  EXPECT_THROW((void)run_composite(*topo_, traffic_.flows, demands_,
                                   Seconds{-1.0}, config_),
               std::invalid_argument);
}

TEST(StackedSwitchPolicy, ValidatesTheEnabledStages) {
  ParkingConfig park;
  RateAdaptConfig rate;

  ParkingConfig bad_park = park;
  bad_park.min_active = 0;
  EXPECT_THROW(
      (StackedSwitchPolicy{bad_park, rate, StackedSwitchPolicy::Stages{}}),
      std::invalid_argument);

  bad_park = park;
  bad_park.hi_threshold = 1.5;
  EXPECT_THROW((StackedSwitchPolicy{bad_park, rate,
                                    StackedSwitchPolicy::Stages{true, true}}),
               std::invalid_argument);
  // Thresholds are only a parking concern: the rate-only stack accepts them.
  EXPECT_NO_THROW((StackedSwitchPolicy{bad_park, rate,
                                       StackedSwitchPolicy::Stages{false,
                                                                   true}}));

  RateAdaptConfig bad_rate = rate;
  bad_rate.min_frequency = 0.0;
  EXPECT_THROW((StackedSwitchPolicy{park, bad_rate,
                                    StackedSwitchPolicy::Stages{true, true}}),
               std::invalid_argument);
  EXPECT_NO_THROW((StackedSwitchPolicy{park, bad_rate,
                                       StackedSwitchPolicy::Stages{true,
                                                                   false}}));
}

TEST(StackedSwitchPolicy, RejectsChannelArityMismatch) {
  const ParkingConfig park;
  const RateAdaptConfig rate;
  StackedSwitchPolicy policy{park, rate, StackedSwitchPolicy::Stages{}};
  const int pipes = park.model.config().num_pipelines;

  LoadTrace trace;
  trace.times = {0.0_s};
  trace.loads = {std::vector<double>(static_cast<std::size_t>(pipes) + 1,
                                     0.1)};
  trace.end = 1.0_s;
  EXPECT_THROW((void)policy.make_timeline(trace), std::invalid_argument);

  trace.loads = {{0.1}};  // a single aggregate channel is fine
  EXPECT_NO_THROW((void)policy.make_timeline(trace));
}

}  // namespace
}  // namespace netpp
