#include "netpp/mech/trace_recorder.h"

#include <gtest/gtest.h>

#include "netpp/topo/builders.h"

namespace netpp {
namespace {

using namespace netpp::literals;

struct Rig {
  BuiltTopology topo = build_leaf_spine(1, 1, 2, 100_Gbps, 100_Gbps);
  SimEngine engine;
  Router router{topo.graph};
  FlowSimulator sim{topo.graph, router, engine};
  NodeId leaf = topo.graph.nodes_at_tier(1).at(0);
};

TEST(NodeLoadRecorder, RecordsLoadChanges) {
  Rig rig;
  NodeLoadRecorder recorder{rig.sim, {rig.leaf}};
  rig.sim.set_load_listener(recorder.listener());
  recorder.sample(0.0_s);

  rig.sim.submit(FlowSpec{rig.topo.hosts[0], rig.topo.hosts[1],
                          Bits::from_gigabits(100.0), 1.0_s, 0});
  rig.engine.run();
  EXPECT_GE(recorder.num_samples(), 2u);

  const auto trace = recorder.aggregate_trace(rig.leaf, 3.0_s);
  trace.validate();
  // Leaf has 3 links = 6 directed at 100 G; the flow crosses 2 at 100 G for
  // one second: load 1/3 during [1, 2).
  ASSERT_GE(trace.loads.size(), 2u);
  EXPECT_DOUBLE_EQ(trace.loads.front(), 0.0);
  double peak = 0.0;
  for (double l : trace.loads) peak = std::max(peak, l);
  EXPECT_NEAR(peak, 1.0 / 3.0, 1e-9);
  EXPECT_DOUBLE_EQ(trace.loads.back(), 0.0);
}

TEST(NodeLoadRecorder, AggregateTraceIntegratesCorrectly) {
  Rig rig;
  NodeLoadRecorder recorder{rig.sim, {rig.leaf}};
  rig.sim.set_load_listener(recorder.listener());
  recorder.sample(0.0_s);
  rig.sim.submit(FlowSpec{rig.topo.hosts[0], rig.topo.hosts[1],
                          Bits::from_gigabits(100.0), 1.0_s, 0});
  rig.engine.run();

  const auto trace = recorder.aggregate_trace(rig.leaf, 3.0_s);
  // Time-weighted mean load over [0, 3): (1/3 for 1 s) / 3 = 1/9.
  double integral = 0.0;
  for (std::size_t i = 0; i < trace.times.size(); ++i) {
    const double seg_end = (i + 1 < trace.times.size())
                               ? trace.times[i + 1].value()
                               : trace.end.value();
    integral += trace.loads[i] * (seg_end - trace.times[i].value());
  }
  EXPECT_NEAR(integral / 3.0, 1.0 / 9.0, 1e-9);
}

TEST(NodeLoadRecorder, PipelineTraceSplitsLinks) {
  Rig rig;
  NodeLoadRecorder recorder{rig.sim, {rig.leaf}};
  rig.sim.set_load_listener(recorder.listener());
  recorder.sample(0.0_s);
  rig.sim.submit(FlowSpec{rig.topo.hosts[0], rig.topo.hosts[1],
                          Bits::from_gigabits(100.0), 0.0_s, 0});
  rig.engine.run();

  const auto trace = recorder.pipeline_trace(rig.leaf, 2, 2.0_s);
  trace.validate(2);
  // At some sample, at least one pipeline carried load; none exceeded 1.
  double peak = 0.0;
  for (const auto& loads : trace.pipeline_loads) {
    for (double l : loads) {
      peak = std::max(peak, l);
      EXPECT_LE(l, 1.0);
    }
  }
  EXPECT_GT(peak, 0.0);
}

TEST(NodeLoadRecorder, UntrackedNodeThrows) {
  Rig rig;
  NodeLoadRecorder recorder{rig.sim, {rig.leaf}};
  recorder.sample(0.0_s);
  EXPECT_THROW(recorder.aggregate_trace(rig.topo.hosts[0], 1.0_s),
               std::out_of_range);
  EXPECT_THROW(recorder.pipeline_trace(rig.topo.hosts[0], 2, 1.0_s),
               std::out_of_range);
}

TEST(NodeLoadRecorder, NoSamplesThrows) {
  Rig rig;
  NodeLoadRecorder recorder{rig.sim, {rig.leaf}};
  EXPECT_THROW(recorder.aggregate_trace(rig.leaf, 1.0_s), std::logic_error);
}

TEST(NodeLoadRecorder, EmptyNodeListThrows) {
  Rig rig;
  EXPECT_THROW((NodeLoadRecorder{rig.sim, {}}), std::invalid_argument);
}

TEST(NodeLoadRecorder, InvalidPipelineCountThrows) {
  Rig rig;
  NodeLoadRecorder recorder{rig.sim, {rig.leaf}};
  recorder.sample(0.0_s);
  EXPECT_THROW(recorder.pipeline_trace(rig.leaf, 0, 1.0_s),
               std::invalid_argument);
}

// --- LoadTrace adapter (the unified entry both legacy adapters wrap) ------

TEST(NodeLoadRecorder, LoadTraceOnEmptyRecorderThrows) {
  Rig rig;
  const NodeLoadRecorder recorder{rig.sim, {rig.leaf}};
  EXPECT_THROW((void)recorder.load_trace(rig.leaf, 1, 1.0_s),
               std::logic_error);
}

TEST(NodeLoadRecorder, SingleSampleYieldsOneSegment) {
  Rig rig;
  NodeLoadRecorder recorder{rig.sim, {rig.leaf}};
  recorder.sample(0.0_s);

  const LoadTrace trace = recorder.load_trace(rig.leaf, 1, 2.5_s);
  EXPECT_NO_THROW(trace.validate());
  ASSERT_EQ(trace.num_segments(), 1u);
  EXPECT_DOUBLE_EQ(trace.times.front().value(), 0.0);
  EXPECT_DOUBLE_EQ(trace.end.value(), 2.5);
  EXPECT_DOUBLE_EQ(trace.loads[0][0], 0.0);
}

TEST(NodeLoadRecorder, EndMustNotPrecedeTheLastSample) {
  // The open final segment needs an explicit end — truncating before the
  // last sample would silently drop recorded load.
  Rig rig;
  NodeLoadRecorder recorder{rig.sim, {rig.leaf}};
  recorder.sample(0.0_s);
  recorder.sample(1.0_s);
  EXPECT_THROW((void)recorder.load_trace(rig.leaf, 1, 0.5_s),
               std::invalid_argument);
  EXPECT_NO_THROW((void)recorder.load_trace(rig.leaf, 1, 1.5_s));
  EXPECT_THROW((void)recorder.load_trace(rig.leaf, 0, 1.5_s),
               std::invalid_argument);
}

TEST(NodeLoadRecorder, EndOnSegmentBoundaryDropsTheZeroWidthSegment) {
  // Regression: a recording that ends exactly at its last sample time used
  // to throw; it must instead drop the zero-width final segment — the last
  // sample carries no duration, and emitting it would fail the trace's
  // strictly-increasing segment validation.
  Rig rig;
  NodeLoadRecorder recorder{rig.sim, {rig.leaf}};
  recorder.sample(0.0_s);
  recorder.sample(1.0_s);
  recorder.sample(2.0_s);

  const LoadTrace trace = recorder.load_trace(rig.leaf, 1, 2.0_s);
  EXPECT_NO_THROW(trace.validate());
  ASSERT_EQ(trace.num_segments(), 1u);  // equal idle loads collapse to one
  EXPECT_DOUBLE_EQ(trace.times.front().value(), 0.0);
  EXPECT_DOUBLE_EQ(trace.end.value(), 2.0);
  EXPECT_DOUBLE_EQ(trace.segment_end(0).value(), 2.0);

  // The adapters inherit the fix.
  EXPECT_NO_THROW(recorder.aggregate_trace(rig.leaf, 2.0_s).validate());
  EXPECT_NO_THROW(recorder.pipeline_trace(rig.leaf, 2, 2.0_s).validate(2));

  // A single sample that lands exactly on the end has no width at all.
  NodeLoadRecorder lone{rig.sim, {rig.leaf}};
  lone.sample(1.0_s);
  EXPECT_THROW((void)lone.load_trace(rig.leaf, 1, 1.0_s),
               std::invalid_argument);
}

TEST(NodeLoadRecorder, SingleChannelMatchesAggregateTrace) {
  Rig rig;
  NodeLoadRecorder recorder{rig.sim, {rig.leaf}};
  rig.sim.set_load_listener(recorder.listener());
  recorder.sample(0.0_s);
  rig.sim.submit(FlowSpec{rig.topo.hosts[0], rig.topo.hosts[1],
                          Bits::from_gigabits(100.0), 1.0_s, 0});
  rig.engine.run();

  const LoadTrace unified = recorder.load_trace(rig.leaf, 1, 3.0_s);
  const AggregateLoadTrace agg = recorder.aggregate_trace(rig.leaf, 3.0_s);
  ASSERT_EQ(unified.num_segments(), agg.times.size());
  for (std::size_t i = 0; i < agg.times.size(); ++i) {
    EXPECT_EQ(unified.times[i].value(), agg.times[i].value());
    EXPECT_EQ(unified.loads[i][0], agg.loads[i]);
  }
  EXPECT_EQ(unified.end.value(), agg.end.value());
}

}  // namespace
}  // namespace netpp
