// Re-prints the golden fixture expectations for golden_equivalence_test.cpp
// as ready-to-paste C++ (hexfloat doubles, exact integers). Run only to
// re-record after a deliberate behavior change; the whole point of the suite
// is that refactors do NOT change these values.
#include <cstdio>

#include "golden_inputs.h"

namespace {

using namespace netpp;

void field(const char* name, double v) {
  std::printf("    %s = %a;  // %.17g\n", name, v, v);
}
void field(const char* name, std::size_t v) {
  std::printf("    %s = %zu;\n", name, v);
}

void print_rateadapt(const char* tag, const RateAdaptResult& r) {
  std::printf("  {  // %s\n", tag);
  field("e.energy_j", r.energy.value());
  field("e.average_power_w", r.average_power.value());
  field("e.savings", r.savings_vs_none);
  field("e.transitions", r.frequency_transitions);
  field("e.mean_frequency", r.mean_frequency);
  std::printf("  }\n");
}

void print_parking(const char* tag, const ParkingResult& r) {
  std::printf("  {  // %s\n", tag);
  field("e.energy_j", r.energy.value());
  field("e.average_power_w", r.average_power.value());
  field("e.savings", r.savings_vs_all_on);
  field("e.mean_active", r.mean_active_pipelines);
  field("e.wakes", r.wake_transitions);
  field("e.parks", r.park_transitions);
  field("e.max_buffered_bits", r.max_buffered.value());
  field("e.dropped_bits", r.dropped.value());
  field("e.max_added_delay_s", r.max_added_delay.value());
  field("e.emergency_wakes", r.emergency_wakes);
  std::printf("  }\n");
}

void print_downrate(const char* tag, const DownrateResult& r) {
  std::printf("  {  // %s\n", tag);
  field("e.energy_j", r.energy.value());
  field("e.nominal_energy_j", r.nominal_energy.value());
  field("e.savings", r.savings_fraction);
  field("e.transitions", r.transitions);
  field("e.violation_s", r.violation_time.value());
  field("e.outage_s", r.outage_time.value());
  field("e.mean_speed_gbps", r.mean_speed.value());
  std::printf("  }\n");
}

void print_eee(const char* tag, const EeeResult& r) {
  std::printf("  {  // %s\n", tag);
  field("e.energy_j", r.energy.value());
  field("e.always_on_energy_j", r.always_on_energy.value());
  field("e.savings", r.energy_savings_fraction);
  field("e.lpi_fraction", r.lpi_time_fraction);
  field("e.mean_added_delay_s", r.mean_added_delay.value());
  field("e.max_added_delay_s", r.max_added_delay.value());
  field("e.wakes", r.wake_transitions);
  field("e.frames", r.frames);
  std::printf("  }\n");
}

}  // namespace

int main() {
  using namespace netpp;

  const auto ptrace = golden::pipeline_trace();
  print_rateadapt("kNone", simulate_rate_adaptation(
                               ptrace, golden::rateadapt_config(false),
                               RateAdaptMode::kNone));
  print_rateadapt("kGlobalAsic", simulate_rate_adaptation(
                                     ptrace, golden::rateadapt_config(false),
                                     RateAdaptMode::kGlobalAsic));
  print_rateadapt("kPerPipeline", simulate_rate_adaptation(
                                      ptrace, golden::rateadapt_config(false),
                                      RateAdaptMode::kPerPipeline));
  print_rateadapt("kPerPipeline+lanes",
                  simulate_rate_adaptation(ptrace,
                                           golden::rateadapt_config(true),
                                           RateAdaptMode::kPerPipeline));

  const auto atrace = golden::aggregate_trace();
  print_parking("reactive",
                simulate_parking_reactive(atrace, golden::parking_config()));
  print_parking("predictive",
                simulate_parking_predictive(atrace, golden::forecast(),
                                            golden::parking_config()));
  print_parking("resilient",
                simulate_parking_reactive_resilient(
                    atrace, golden::recalls(), golden::parking_config()));

  print_downrate("downrate", simulate_downrating(golden::diurnal_trace(),
                                                 golden::downrate_config()));

  print_eee("eee", simulate_eee_link(golden::eee_config(false),
                                     golden::eee_frames(),
                                     golden::eee_horizon()));
  print_eee("eee+coalesce", simulate_eee_link(golden::eee_config(true),
                                              golden::eee_frames(),
                                              golden::eee_horizon()));
  return 0;
}
