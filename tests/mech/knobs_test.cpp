#include "netpp/mech/knobs.h"

#include <gtest/gtest.h>

namespace netpp {
namespace {

TEST(Knobs, ReferenceRouterSumsTo750W) {
  const auto router = RouterComponentModel::reference_router();
  EXPECT_NEAR(router.total_power().value(), 750.0, 1e-9);
}

TEST(Knobs, FullFeatureSetGatesNothing) {
  const auto router = RouterComponentModel::reference_router();
  const auto power = router.power_for_features(
      features_for_cstate(SwitchCState::kC0FullRouter), GatingQuality::kFixed);
  EXPECT_NEAR(power.value(), 750.0, 1e-9);
}

TEST(Knobs, L2OnlyDeploymentSavesL3Machinery) {
  // §4.1: "if the switch is only configured for L2 forwarding, it could
  // automatically turn off all L3 functionality."
  const auto router = RouterComponentModel::reference_router();
  const Watts l2 = router.power_in_cstate(SwitchCState::kC2L2Only,
                                          GatingQuality::kFixed);
  // Gates: l3-lookup (45) + full-fib (30) + deep-buffers (30) +
  // telemetry (30) = 135 W.
  EXPECT_NEAR(l2.value(), 750.0 - 135.0, 1e-9);
}

TEST(Knobs, StandbyKeepsOnlyBaseComponents) {
  const auto router = RouterComponentModel::reference_router();
  const Watts standby = router.power_in_cstate(SwitchCState::kC3Standby,
                                               GatingQuality::kFixed);
  EXPECT_NEAR(standby.value(), 225.0, 1e-9);  // chassis + control CPU
}

TEST(Knobs, CStatesAreMonotone) {
  const auto router = RouterComponentModel::reference_router();
  const auto p = [&](SwitchCState s) {
    return router.power_in_cstate(s, GatingQuality::kFixed).value();
  };
  EXPECT_GE(p(SwitchCState::kC0FullRouter), p(SwitchCState::kC1LeanRouter));
  EXPECT_GE(p(SwitchCState::kC1LeanRouter), p(SwitchCState::kC2L2Only));
  EXPECT_GT(p(SwitchCState::kC2L2Only), p(SwitchCState::kC3Standby));
}

TEST(Knobs, BuggyGatingSavesNothing) {
  // The paper's observation: ports off in software may stay powered [15,24].
  const auto router = RouterComponentModel::reference_router();
  const Watts buggy = router.power_in_cstate(SwitchCState::kC2L2Only,
                                             GatingQuality::kBuggy);
  EXPECT_NEAR(buggy.value(), 750.0, 1e-9);
  EXPECT_NEAR(
      router.savings_for_features(features_for_cstate(SwitchCState::kC2L2Only),
                                  GatingQuality::kBuggy)
          .value(),
      0.0, 1e-9);
}

TEST(Knobs, PartialGatingSavesHalf) {
  const auto router = RouterComponentModel::reference_router();
  const Watts fixed = router.power_in_cstate(SwitchCState::kC2L2Only,
                                             GatingQuality::kFixed);
  const Watts partial = router.power_in_cstate(SwitchCState::kC2L2Only,
                                               GatingQuality::kPartial);
  const double fixed_savings = 750.0 - fixed.value();
  const double partial_savings = 750.0 - partial.value();
  EXPECT_NEAR(partial_savings, fixed_savings / 2.0, 1e-9);
}

TEST(Knobs, NonGateableComponentsNeverTurnOff) {
  RouterComponentModel router{{
      {"base", Watts{100.0}, "", false},
      {"ungateable-accel", Watts{50.0}, "accel", false},
      {"gateable-accel", Watts{25.0}, "accel", true},
  }};
  // Deployment does not need "accel": only the gateable half goes away.
  const Watts power = router.power_for_features({}, GatingQuality::kFixed);
  EXPECT_NEAR(power.value(), 150.0, 1e-9);
}

TEST(Knobs, GatingHeadroomFraction) {
  const auto router = RouterComponentModel::reference_router();
  EXPECT_NEAR(router.gating_headroom(
                  features_for_cstate(SwitchCState::kC3Standby),
                  GatingQuality::kFixed),
              525.0 / 750.0, 1e-9);
  EXPECT_NEAR(router.gating_headroom(
                  features_for_cstate(SwitchCState::kC0FullRouter),
                  GatingQuality::kFixed),
              0.0, 1e-9);
}

TEST(Knobs, UnknownFeaturesAreIgnored) {
  const auto router = RouterComponentModel::reference_router();
  const Watts power = router.power_for_features({"quantum-forwarding"},
                                                GatingQuality::kFixed);
  EXPECT_NEAR(power.value(), 225.0, 1e-9);  // only base stays
}

TEST(Knobs, InvalidInventoriesThrow) {
  EXPECT_THROW(RouterComponentModel{{}}, std::invalid_argument);
  const std::vector<RouterComponent> negative = {
      {"x", Watts{-1.0}, "", true}};
  EXPECT_THROW(RouterComponentModel{negative}, std::invalid_argument);
}

}  // namespace
}  // namespace netpp
