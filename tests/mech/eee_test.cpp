#include "netpp/mech/eee.h"

#include <gtest/gtest.h>

namespace netpp {
namespace {

using namespace netpp::literals;

EeeConfig fast_config() {
  EeeConfig cfg;
  cfg.link_rate = 100_Gbps;
  cfg.active_power = 4.0_W;
  cfg.lpi_power_fraction = 0.10;
  cfg.sleep_time = Seconds::from_microseconds(2.88);
  cfg.wake_time = Seconds::from_microseconds(4.48);
  return cfg;
}

TEST(Eee, IdleLinkSleepsAlmostTheWholeTime) {
  const auto result = simulate_eee_link(fast_config(), {}, 1.0_s);
  EXPECT_GT(result.lpi_time_fraction, 0.999);
  EXPECT_NEAR(result.energy_savings_fraction, 0.9, 0.001);
  EXPECT_EQ(result.wake_transitions, 0u);
}

TEST(Eee, SaturatedLinkSavesNothing) {
  // Back-to-back frames leave no idle gaps.
  std::vector<EeeFrame> frames;
  const double frame_time = 1e4 / 100e9;  // 10 kbit at 100 G
  for (int i = 0; i < 1000; ++i) {
    frames.push_back(EeeFrame{Seconds{i * frame_time}, Bits{1e4}});
  }
  const auto result =
      simulate_eee_link(fast_config(), frames, Seconds{1001 * frame_time});
  EXPECT_NEAR(result.energy_savings_fraction, 0.0, 0.01);
  EXPECT_NEAR(result.mean_added_delay.value(), 0.0, 1e-9);
}

TEST(Eee, SparseTrafficSavesNearlyMax) {
  // One small frame every 10 ms: the link sleeps between them. (The first
  // frame arrives after the initial sleep so every frame triggers a wake.)
  std::vector<EeeFrame> frames;
  for (int i = 0; i < 100; ++i) {
    frames.push_back(EeeFrame{Seconds{(i + 1) * 0.01}, Bits{12000.0}});
  }
  const auto result = simulate_eee_link(fast_config(), frames, 1.1_s);
  EXPECT_GT(result.energy_savings_fraction, 0.85);
  EXPECT_EQ(result.wake_transitions, 100u);
  // Every frame pays the wake penalty.
  EXPECT_NEAR(result.mean_added_delay.value(), 4.48e-6, 1e-7);
}

TEST(Eee, WakePenaltyDelaysFrames) {
  auto cfg = fast_config();
  cfg.wake_time = Seconds::from_microseconds(100.0);
  const std::vector<EeeFrame> frames = {{Seconds{0.5}, Bits{1e4}}};
  const auto result = simulate_eee_link(cfg, frames, 1.0_s);
  EXPECT_NEAR(result.max_added_delay.value(), 100e-6, 1e-9);
}

TEST(Eee, CoalescingTradesLatencyForFewerWakes) {
  auto cfg = fast_config();
  std::vector<EeeFrame> frames;
  // Bursts of 10 frames 1 us apart, bursts every 10 ms.
  for (int burst = 0; burst < 50; ++burst) {
    for (int i = 0; i < 10; ++i) {
      frames.push_back(
          EeeFrame{Seconds{burst * 0.01 + i * 1e-6}, Bits{1e4}});
    }
  }
  const auto plain = simulate_eee_link(cfg, frames, 1.0_s);

  cfg.coalescing_timer = Seconds::from_microseconds(50.0);
  const auto coalesced = simulate_eee_link(cfg, frames, 1.0_s);

  // Same number of wakes per burst either way here (each burst wakes once),
  // but coalescing delays frames more.
  EXPECT_LE(coalesced.wake_transitions, plain.wake_transitions);
  EXPECT_GT(coalesced.mean_added_delay.value(),
            plain.mean_added_delay.value());
  // And saves at least as much energy (sleeps through the burst head).
  EXPECT_GE(coalesced.energy_savings_fraction,
            plain.energy_savings_fraction - 1e-9);
}

TEST(Eee, FrameCountTriggerWakesEarly) {
  auto cfg = fast_config();
  cfg.coalescing_timer = Seconds::from_milliseconds(10.0);
  cfg.coalesce_frames = 3;
  // Three frames arrive 1 us apart: the count trigger fires at the third
  // frame, long before the 10 ms timer.
  const std::vector<EeeFrame> frames = {
      {Seconds{0.1}, Bits{1e4}},
      {Seconds{0.1 + 1e-6}, Bits{1e4}},
      {Seconds{0.1 + 2e-6}, Bits{1e4}},
  };
  const auto result = simulate_eee_link(cfg, frames, 1.0_s);
  EXPECT_EQ(result.wake_transitions, 1u);
  // Max delay far below the 10 ms timer.
  EXPECT_LT(result.max_added_delay.value(), 1e-3);
}

TEST(Eee, HigherLpiPowerReducesSavings) {
  auto cfg = fast_config();
  const auto low = simulate_eee_link(cfg, {}, 1.0_s);
  cfg.lpi_power_fraction = 0.5;
  const auto high = simulate_eee_link(cfg, {}, 1.0_s);
  EXPECT_GT(low.energy_savings_fraction, high.energy_savings_fraction);
}

TEST(Eee, InvalidInputsThrow) {
  auto cfg = fast_config();
  const std::vector<EeeFrame> unsorted = {{Seconds{1.0}, Bits{1e4}},
                                          {Seconds{0.5}, Bits{1e4}}};
  EXPECT_THROW((void)simulate_eee_link(cfg, unsorted, 2.0_s),
               std::invalid_argument);
  EXPECT_THROW((void)
      simulate_eee_link(cfg, {{Seconds{0.0}, Bits{0.0}}}, 1.0_s),
      std::invalid_argument);
  // Horizon before the last departure.
  EXPECT_THROW((void)
      simulate_eee_link(cfg, {{Seconds{0.9}, Bits{1e9}}}, Seconds{0.9}),
      std::invalid_argument);
  cfg.lpi_power_fraction = 1.5;
  EXPECT_THROW((void)simulate_eee_link(cfg, {}, 1.0_s), std::invalid_argument);
}

TEST(Eee, EnergyNeverExceedsAlwaysOn) {
  std::vector<EeeFrame> frames;
  for (int i = 0; i < 20; ++i) {
    frames.push_back(EeeFrame{Seconds{i * 0.03}, Bits{5e5}});
  }
  const auto result = simulate_eee_link(fast_config(), frames, 1.0_s);
  EXPECT_LE(result.energy.value(), result.always_on_energy.value() + 1e-9);
  EXPECT_GE(result.energy_savings_fraction, 0.0);
}

}  // namespace
}  // namespace netpp
