#include "netpp/mech/packet_switch.h"

#include <gtest/gtest.h>

#include "netpp/sim/random.h"

namespace netpp {
namespace {

using namespace netpp::literals;

PacketSwitchConfig small_switch() {
  PacketSwitchConfig cfg;
  cfg.num_ports = 8;
  cfg.num_pipelines = 4;
  cfg.port_rate = 100_Gbps;
  cfg.dwell = Seconds::from_microseconds(50.0);
  cfg.reconfig = Seconds::from_microseconds(1.0);
  return cfg;
}

constexpr double kPacketBits = 12000.0;  // 1500 B

TEST(PacketSwitch, SinglePacketLatencyIsServiceTime) {
  SimEngine engine;
  PacketSwitchSim sim{engine, small_switch()};
  sim.inject(0, Seconds{0.001}, Bits{kPacketBits});
  engine.run();
  const auto result = sim.finish(Seconds{0.002});
  EXPECT_EQ(result.served, 1u);
  // Service rate: 2 ports * 100 G = 200 Gbps -> 60 ns for 12 kbit.
  EXPECT_NEAR(result.latency.mean(), kPacketBits / 200e9, 1e-12);
}

TEST(PacketSwitch, AllPacketsServedFifo) {
  SimEngine engine;
  PacketSwitchSim sim{engine, small_switch()};
  for (int i = 0; i < 100; ++i) {
    sim.inject(i % 8, Seconds{i * 1e-5}, Bits{kPacketBits});
  }
  engine.run();
  const auto result = sim.finish(Seconds{0.01});
  EXPECT_EQ(result.injected, 100u);
  EXPECT_EQ(result.served, 100u);
  EXPECT_EQ(result.dropped, 0u);
}

TEST(PacketSwitch, QueueingDelaysBackToBackPackets) {
  SimEngine engine;
  PacketSwitchSim sim{engine, small_switch()};
  // Two packets on the same port at the same instant: the second waits for
  // the first's service.
  sim.inject(0, Seconds{0.0}, Bits{kPacketBits});
  sim.inject(0, Seconds{0.0}, Bits{kPacketBits});
  engine.run();
  const auto result = sim.finish(Seconds{0.001});
  const double service = kPacketBits / 200e9;
  EXPECT_NEAR(result.latency.min(), service, 1e-12);
  EXPECT_NEAR(result.latency.max(), 2.0 * service, 1e-12);
}

TEST(PacketSwitch, ParkedPipelinesAddMultiplexingLatency) {
  // With 1 of 4 pipelines active, a packet on a disconnected group waits
  // for rotation (up to 3 dwells + reconfigs).
  auto cfg = small_switch();
  cfg.active_pipelines = 1;
  SimEngine engine;
  PacketSwitchSim sim{engine, cfg};
  // Group 2 (ports 4,5) is not initially connected (pipeline starts on 0).
  sim.inject(4, Seconds{1e-6}, Bits{kPacketBits});
  engine.run_until(Seconds{0.001});
  const auto result = sim.finish(Seconds{0.001});
  EXPECT_EQ(result.served, 1u);
  // Must have waited at least one dwell, at most the full rotation cycle.
  EXPECT_GT(result.latency.mean(), 40e-6);
  EXPECT_LT(result.latency.mean(), 4 * (50e-6 + 1e-6) + 1e-6);
}

TEST(PacketSwitch, FullyActiveHasNoMultiplexingLatency) {
  auto cfg = small_switch();
  cfg.active_pipelines = 4;
  SimEngine engine;
  PacketSwitchSim sim{engine, cfg};
  sim.inject(4, Seconds{1e-6}, Bits{kPacketBits});
  engine.run();
  const auto result = sim.finish(Seconds{0.001});
  EXPECT_NEAR(result.latency.mean(), kPacketBits / 200e9, 1e-12);
}

TEST(PacketSwitch, ThroughputCapsAtActiveShare) {
  // Saturate all ports; with 2 of 4 pipelines the switch serves at most
  // half its nominal capacity.
  auto cfg = small_switch();
  cfg.active_pipelines = 2;
  cfg.port_buffer = Bits::from_bytes(20e3);  // small: excess drops
  SimEngine engine;
  PacketSwitchSim sim{engine, cfg};
  Rng rng{5};
  const double horizon = 0.002;
  // Offered: 8 ports x 100 G = 800 Gbps; capacity: 2 x 200 G = 400 Gbps.
  for (int port = 0; port < 8; ++port) {
    double t = 0.0;
    while (t < horizon) {
      sim.inject(port, Seconds{t}, Bits{kPacketBits});
      t += kPacketBits / 100e9;  // back-to-back at line rate
    }
  }
  engine.run_until(Seconds{horizon});
  const auto result = sim.finish(Seconds{horizon});
  const double served_bps =
      static_cast<double>(result.served) * kPacketBits / horizon;
  EXPECT_LT(served_bps, 400e9 * 1.02);
  EXPECT_GT(served_bps, 400e9 * 0.80);  // rotation overheads cost a little
  EXPECT_GT(result.dropped, 0u);
}

TEST(PacketSwitch, BufferOverflowDropsDeterministically) {
  auto cfg = small_switch();
  cfg.port_buffer = Bits{2.5 * kPacketBits};
  cfg.active_pipelines = 1;
  SimEngine engine;
  PacketSwitchSim sim{engine, cfg};
  // Five simultaneous packets on a disconnected port: 2 fit, 3 drop... the
  // buffer holds 2.5 packets -> 2 queued, 3 dropped.
  for (int i = 0; i < 5; ++i) {
    sim.inject(6, Seconds{0.0}, Bits{kPacketBits});
  }
  engine.run_until(Seconds{0.001});
  const auto result = sim.finish(Seconds{0.001});
  EXPECT_EQ(result.dropped, 3u);
  EXPECT_EQ(result.served, 2u);
}

TEST(PacketSwitch, ParkingSavesEnergy) {
  SimEngine e1, e2;
  auto cfg = small_switch();
  cfg.active_pipelines = 4;
  PacketSwitchSim all_on{e1, cfg};
  cfg.active_pipelines = 1;
  PacketSwitchSim parked{e2, cfg};
  for (int i = 0; i < 10; ++i) {
    all_on.inject(0, Seconds{i * 1e-5}, Bits{kPacketBits});
    parked.inject(0, Seconds{i * 1e-5}, Bits{kPacketBits});
  }
  e1.run_until(Seconds{0.001});
  e2.run_until(Seconds{0.001});
  const auto r_on = all_on.finish(Seconds{0.001});
  const auto r_park = parked.finish(Seconds{0.001});
  EXPECT_LT(r_park.average_power.value(), r_on.average_power.value());
  EXPECT_EQ(r_park.served, 10u);
}

TEST(PacketSwitch, FrequencyScalingSlowsService) {
  auto cfg = small_switch();
  cfg.pipeline_frequency = 0.5;
  SimEngine engine;
  PacketSwitchSim sim{engine, cfg};
  sim.inject(0, Seconds{0.0}, Bits{kPacketBits});
  engine.run();
  const auto result = sim.finish(Seconds{0.001});
  EXPECT_NEAR(result.latency.mean(), kPacketBits / 100e9, 1e-12);
}

TEST(PacketSwitch, LatencyQuantilesAreOrdered) {
  auto cfg = small_switch();
  cfg.active_pipelines = 2;
  SimEngine engine;
  PacketSwitchSim sim{engine, cfg};
  Rng rng{11};
  for (int i = 0; i < 2000; ++i) {
    sim.inject(static_cast<int>(rng.uniform_int(0, 7)),
               Seconds{rng.uniform(0.0, 0.01)}, Bits{kPacketBits});
  }
  engine.run_until(Seconds{0.02});
  const auto result = sim.finish(Seconds{0.02});
  EXPECT_LE(result.p50().value(), result.p99().value());
  EXPECT_LE(result.p99().value(), result.p999().value());
  EXPECT_GT(result.served, 1900u);
}

TEST(PacketSwitch, InvalidConfigsThrow) {
  SimEngine engine;
  auto cfg = small_switch();
  cfg.num_ports = 7;  // not divisible by 4 groups
  EXPECT_THROW((PacketSwitchSim{engine, cfg}), std::invalid_argument);
  cfg = small_switch();
  cfg.active_pipelines = 5;
  EXPECT_THROW((PacketSwitchSim{engine, cfg}), std::invalid_argument);
  cfg = small_switch();
  cfg.pipeline_frequency = 0.0;
  EXPECT_THROW((PacketSwitchSim{engine, cfg}), std::invalid_argument);
  cfg = small_switch();
  cfg.dwell = Seconds{0.0};
  EXPECT_THROW((PacketSwitchSim{engine, cfg}), std::invalid_argument);

  PacketSwitchSim sim{engine, small_switch()};
  EXPECT_THROW(sim.inject(99, Seconds{0.0}, Bits{1.0}), std::out_of_range);
  EXPECT_THROW(sim.inject(0, Seconds{0.0}, Bits{0.0}), std::invalid_argument);
}

TEST(PacketSwitch, FinishTwiceThrows) {
  SimEngine engine;
  PacketSwitchSim sim{engine, small_switch()};
  engine.run();
  auto r = sim.finish(Seconds{0.001});
  (void)r;
  EXPECT_THROW(sim.finish(Seconds{0.002}), std::logic_error);
}

}  // namespace
}  // namespace netpp
