#include "netpp/mech/downrate.h"

#include <gtest/gtest.h>

namespace netpp {
namespace {

AggregateLoadTrace constant_trace(double load, double duration) {
  AggregateLoadTrace trace;
  trace.times = {Seconds{0.0}};
  trace.loads = {load};
  trace.end = Seconds{duration};
  return trace;
}

/// Diurnal-ish two-level trace: low load for the first half, high after,
/// sampled every `step` seconds so dwell logic has boundaries to act on.
AggregateLoadTrace two_level_trace(double low, double high, double duration,
                                   double step = 10.0) {
  AggregateLoadTrace trace;
  for (double t = 0.0; t < duration; t += step) {
    trace.times.push_back(Seconds{t});
    trace.loads.push_back(t < duration / 2.0 ? low : high);
  }
  trace.end = Seconds{duration};
  return trace;
}

TEST(Downrate, FullLoadStaysAtNominal) {
  const auto result =
      simulate_downrating(constant_trace(0.9, 1000.0), DownrateConfig{});
  EXPECT_EQ(result.transitions, 0u);
  EXPECT_NEAR(result.savings_fraction, 0.0, 1e-12);
  EXPECT_NEAR(result.mean_speed.value(), 400.0, 1e-9);
}

TEST(Downrate, IdleLinkStepsToBottomAfterDwell) {
  DownrateConfig cfg;
  cfg.down_dwell = Seconds{60.0};
  const auto result =
      simulate_downrating(two_level_trace(0.01, 0.01, 1000.0), cfg);
  EXPECT_EQ(result.transitions, 1u);
  EXPECT_LT(result.mean_speed.value(), 150.0);
  // Power at 100 G (both ends 2x4 W) vs nominal (2x10 W): the long tail at
  // the bottom step dominates.
  EXPECT_GT(result.savings_fraction, 0.5);
  EXPECT_DOUBLE_EQ(result.violation_time.value(), 0.0);
}

TEST(Downrate, DiurnalCycleSavesAndServes) {
  DownrateConfig cfg;
  cfg.down_dwell = Seconds{30.0};
  // Night at 10%, day at 70% of 400 G.
  const auto result =
      simulate_downrating(two_level_trace(0.10, 0.70, 2000.0), cfg);
  EXPECT_GE(result.transitions, 2u);  // down at night, up for the day
  EXPECT_GT(result.savings_fraction, 0.10);
  EXPECT_DOUBLE_EQ(result.violation_time.value(), 0.0);
}

TEST(Downrate, StepUpIsImmediate) {
  DownrateConfig cfg;
  cfg.down_dwell = Seconds{1e6};  // never steps down
  const auto result =
      simulate_downrating(two_level_trace(0.10, 0.70, 1000.0), cfg);
  EXPECT_EQ(result.transitions, 0u);  // started at nominal, never left
  EXPECT_NEAR(result.mean_speed.value(), 400.0, 1e-9);
}

TEST(Downrate, HeadroomPreventsViolations) {
  DownrateConfig cfg;
  cfg.down_dwell = Seconds{10.0};
  cfg.headroom = 0.25;
  // Load 0.19: 0.19*400*1.25 = 95 G -> 100 G step covers the 76 G offered.
  const auto result =
      simulate_downrating(two_level_trace(0.19, 0.19, 500.0), cfg);
  EXPECT_DOUBLE_EQ(result.violation_time.value(), 0.0);
  EXPECT_NEAR(result.mean_speed.value(), 100.0, 15.0);
}

TEST(Downrate, BuggyGatingSavesNothing) {
  // The paper: "savings are limited - supposedly because few components are
  // powered off."
  DownrateConfig cfg;
  cfg.gating_effectiveness = 0.0;
  cfg.down_dwell = Seconds{10.0};
  const auto result =
      simulate_downrating(two_level_trace(0.01, 0.01, 500.0), cfg);
  EXPECT_NEAR(result.savings_fraction, 0.0, 1e-12);
  EXPECT_GT(result.transitions, 0u);  // it *does* down-rate, uselessly
}

TEST(Downrate, PartialGatingScalesSavings) {
  DownrateConfig full, half;
  full.down_dwell = half.down_dwell = Seconds{10.0};
  half.gating_effectiveness = 0.5;
  const auto trace = two_level_trace(0.01, 0.01, 500.0);
  const auto r_full = simulate_downrating(trace, full);
  const auto r_half = simulate_downrating(trace, half);
  EXPECT_NEAR(r_half.savings_fraction, r_full.savings_fraction / 2.0, 0.02);
}

TEST(Downrate, TransitionsCostOutage) {
  DownrateConfig cfg;
  cfg.down_dwell = Seconds{10.0};
  cfg.transition_outage = Seconds::from_milliseconds(50.0);
  const auto result =
      simulate_downrating(two_level_trace(0.05, 0.70, 1000.0), cfg);
  EXPECT_NEAR(result.outage_time.value(),
              0.05 * static_cast<double>(result.transitions), 1e-9);
}

TEST(Downrate, InvalidConfigsThrow) {
  const auto trace = constant_trace(0.5, 10.0);
  DownrateConfig cfg;
  cfg.ladder = {};
  EXPECT_THROW((void)simulate_downrating(trace, cfg), std::invalid_argument);
  cfg = DownrateConfig{};
  cfg.ladder = {400.0, 100.0};
  EXPECT_THROW((void)simulate_downrating(trace, cfg), std::invalid_argument);
  cfg = DownrateConfig{};
  cfg.ladder = {100.0, 200.0};  // does not top out at nominal
  EXPECT_THROW((void)simulate_downrating(trace, cfg), std::invalid_argument);
  cfg = DownrateConfig{};
  cfg.gating_effectiveness = 1.5;
  EXPECT_THROW((void)simulate_downrating(trace, cfg), std::invalid_argument);
}

}  // namespace
}  // namespace netpp
