// Tests for the unified LoadTrace and the shared validation helpers the
// aggregate/per-pipeline variants now delegate to (the "TypeName:
// constraint" error style).
#include "netpp/mech/load_trace.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

#include "netpp/units.h"

namespace netpp {
namespace {

using namespace netpp::literals;

LoadTrace make_trace() {
  LoadTrace trace;
  trace.times = {0.0_s, 1.0_s, 3.0_s};
  trace.loads = {{0.2, 0.4}, {0.8, 0.6}, {0.1, 0.3}};
  trace.end = 4.0_s;
  return trace;
}

std::string thrown_message(const auto& fn) {
  try {
    fn();
  } catch (const std::invalid_argument& e) {
    return e.what();
  }
  return {};
}

TEST(LoadTrace, ValidAcceptsAndReportsShape) {
  const LoadTrace trace = make_trace();
  EXPECT_NO_THROW(trace.validate());
  EXPECT_EQ(trace.num_segments(), 3u);
  EXPECT_EQ(trace.channels(), 2);
  EXPECT_DOUBLE_EQ(trace.duration().value(), 4.0);
  EXPECT_DOUBLE_EQ(trace.segment_end(0).value(), 1.0);
  EXPECT_DOUBLE_EQ(trace.segment_end(2).value(), 4.0);
}

TEST(LoadTrace, ValidationErrorsNameTheType) {
  LoadTrace trace = make_trace();
  trace.times.pop_back();
  EXPECT_EQ(thrown_message([&] { trace.validate(); }),
            "LoadTrace: needs matching, non-empty times and loads");

  trace = make_trace();
  trace.times[1] = trace.times[0];
  EXPECT_EQ(thrown_message([&] { trace.validate(); }),
            "LoadTrace: times must be strictly increasing");

  trace = make_trace();
  trace.times[1] = Seconds{std::numeric_limits<double>::quiet_NaN()};
  EXPECT_EQ(thrown_message([&] { trace.validate(); }),
            "LoadTrace: times must be finite");

  trace = make_trace();
  trace.end = 3.0_s;
  EXPECT_EQ(thrown_message([&] { trace.validate(); }),
            "LoadTrace: end must be finite and after the last segment");

  trace = make_trace();
  trace.loads[1] = {0.5};
  EXPECT_EQ(thrown_message([&] { trace.validate(); }),
            "LoadTrace: every segment needs the same channel count");

  trace = make_trace();
  trace.loads[0][1] = 1.5;
  EXPECT_EQ(thrown_message([&] { trace.validate(); }),
            "LoadTrace: loads must be finite and in [0, 1]");

  trace = make_trace();
  trace.loads[2][0] = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(thrown_message([&] { trace.validate(); }),
            "LoadTrace: loads must be finite and in [0, 1]");

  trace = make_trace();
  trace.loads = {{}, {}, {}};
  EXPECT_EQ(thrown_message([&] { trace.validate(); }),
            "LoadTrace: needs at least one channel");
}

TEST(LoadTrace, SharedHelpersPrefixTheCallersTypeName) {
  // Satellite 1: both legacy trace types route through the same helpers and
  // keep their own names in the messages.
  AggregateLoadTrace agg;
  agg.times = {0.0_s};
  agg.loads = {1.5};
  agg.end = 1.0_s;
  EXPECT_EQ(thrown_message([&] { agg.validate(); }),
            "AggregateLoadTrace: loads must be finite and in [0, 1]");
  agg.loads = {0.5, 0.7};
  EXPECT_EQ(thrown_message([&] { agg.validate(); }),
            "AggregateLoadTrace: needs matching, non-empty times and loads");

  PipelineLoadTrace pipe;
  pipe.times = {0.0_s, 1.0_s};
  pipe.pipeline_loads = {{0.1, 0.2}, {0.3, 0.4}};
  pipe.end = 1.0_s;
  EXPECT_EQ(thrown_message([&] { pipe.validate(2); }),
            "PipelineLoadTrace: end must be finite and after the last segment");
  pipe.end = 2.0_s;
  EXPECT_EQ(thrown_message([&] { pipe.validate(3); }),
            "PipelineLoadTrace: segment arity != pipeline count");
  EXPECT_NO_THROW(pipe.validate(2));
}

TEST(LoadTrace, LoadAtAndAggregateAt) {
  const LoadTrace trace = make_trace();
  EXPECT_DOUBLE_EQ(trace.load_at(0.0_s, 0), 0.2);
  EXPECT_DOUBLE_EQ(trace.load_at(0.5_s, 1), 0.4);
  // Segment boundaries belong to the later segment.
  EXPECT_DOUBLE_EQ(trace.load_at(1.0_s, 0), 0.8);
  EXPECT_DOUBLE_EQ(trace.load_at(3.5_s, 1), 0.3);
  // Past-the-end queries clamp to the final segment.
  EXPECT_DOUBLE_EQ(trace.load_at(99.0_s, 0), 0.1);

  EXPECT_DOUBLE_EQ(trace.aggregate_at(0.0_s), (0.2 + 0.4) / 2.0);
  EXPECT_DOUBLE_EQ(trace.aggregate_at(2.0_s), (0.8 + 0.6) / 2.0);
}

TEST(LoadTrace, ResampledHitsFixedBoundaries) {
  const LoadTrace trace = make_trace();
  const LoadTrace fine = trace.resampled(0.5_s);
  ASSERT_EQ(fine.num_segments(), 8u);
  EXPECT_DOUBLE_EQ(fine.times.front().value(), 0.0);
  EXPECT_DOUBLE_EQ(fine.times.back().value(), 3.5);
  EXPECT_DOUBLE_EQ(fine.end.value(), 4.0);
  // Each resampled segment carries the load active at its start.
  EXPECT_DOUBLE_EQ(fine.loads[1][0], 0.2);  // [0.5, 1.0) still segment 0
  EXPECT_DOUBLE_EQ(fine.loads[2][0], 0.8);  // [1.0, 1.5) is segment 1
  EXPECT_DOUBLE_EQ(fine.loads[7][1], 0.3);  // [3.5, 4.0) is segment 2
  EXPECT_NO_THROW(fine.validate());
}

TEST(LoadTrace, ResampledKeepsPartialFinalSegment) {
  LoadTrace trace = make_trace();
  trace.end = 3.75_s;
  const LoadTrace fine = trace.resampled(1.5_s);
  // Boundaries at 0, 1.5, 3.0 — the [3.0, 3.75) remainder is explicit, not
  // silently truncated.
  ASSERT_EQ(fine.num_segments(), 3u);
  EXPECT_DOUBLE_EQ(fine.times.back().value(), 3.0);
  EXPECT_DOUBLE_EQ(fine.end.value(), 3.75);
  EXPECT_DOUBLE_EQ(fine.loads.back()[0], 0.1);
}

TEST(LoadTrace, ResampledRejectsBadStep) {
  const LoadTrace trace = make_trace();
  EXPECT_THROW((void)trace.resampled(0.0_s), std::invalid_argument);
  EXPECT_THROW((void)trace.resampled(Seconds{-1.0}), std::invalid_argument);
  EXPECT_THROW(
      (void)trace.resampled(Seconds{std::numeric_limits<double>::infinity()}),
      std::invalid_argument);
}

TEST(LoadTrace, AggregateRoundTrip) {
  AggregateLoadTrace agg;
  agg.times = {0.0_s, 2.0_s};
  agg.loads = {0.25, 0.75};
  agg.end = 5.0_s;

  const LoadTrace unified = agg.to_load_trace();
  EXPECT_EQ(unified.channels(), 1);
  EXPECT_DOUBLE_EQ(unified.loads[1][0], 0.75);

  const AggregateLoadTrace back = AggregateLoadTrace::from_load_trace(unified);
  EXPECT_EQ(back.times, agg.times);
  EXPECT_EQ(back.loads, agg.loads);
  EXPECT_DOUBLE_EQ(back.end.value(), agg.end.value());
}

TEST(LoadTrace, AggregateFromMultiChannelAverages) {
  const AggregateLoadTrace agg =
      AggregateLoadTrace::from_load_trace(make_trace());
  ASSERT_EQ(agg.loads.size(), 3u);
  EXPECT_DOUBLE_EQ(agg.loads[0], (0.2 + 0.4) / 2.0);
  EXPECT_DOUBLE_EQ(agg.loads[1], (0.8 + 0.6) / 2.0);
}

TEST(LoadTrace, PipelineRoundTrip) {
  const LoadTrace unified = make_trace();
  const PipelineLoadTrace pipe = PipelineLoadTrace::from_load_trace(unified);
  EXPECT_NO_THROW(pipe.validate(2));
  EXPECT_DOUBLE_EQ(pipe.duration().value(), 4.0);

  const LoadTrace back = pipe.to_load_trace();
  EXPECT_EQ(back.times, unified.times);
  EXPECT_EQ(back.loads, unified.loads);
  EXPECT_DOUBLE_EQ(back.end.value(), unified.end.value());
}

TEST(LoadTrace, FromLoadTraceValidatesItsInput) {
  LoadTrace bad = make_trace();
  bad.loads[0][0] = 2.0;
  EXPECT_THROW((void)AggregateLoadTrace::from_load_trace(bad),
               std::invalid_argument);
  EXPECT_THROW((void)PipelineLoadTrace::from_load_trace(bad),
               std::invalid_argument);
}

}  // namespace
}  // namespace netpp
