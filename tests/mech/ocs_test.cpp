#include "netpp/mech/ocs.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace netpp {
namespace {

using namespace netpp::literals;

TEST(OcsTailoring, LightRingTrafficTurnsOffCoreSwitches) {
  // k=4 fat tree, a light ring workload among 4 hosts of pod 0/1: most of
  // the fabric is unnecessary.
  const auto topo = build_fat_tree(4, 100_Gbps);
  std::vector<TrafficDemand> demands;
  for (int i = 0; i < 4; ++i) {
    demands.push_back(
        TrafficDemand{topo.hosts[i], topo.hosts[(i + 1) % 4], 10_Gbps});
  }
  const auto result = tailor_topology(topo, demands);
  EXPECT_TRUE(result.feasible);
  EXPECT_GT(result.powered_off.size(), 0u);
  EXPECT_GT(result.switches_off_fraction, 0.3);
  // Demands must still be satisfiable on the tailored topology.
  Router router{topo.graph};
  for (NodeId sw : result.powered_off) router.set_node_enabled(sw, false);
  EXPECT_TRUE(demands_satisfiable(router, demands, TailorConfig{}));
}

TEST(OcsTailoring, HeavyAllToAllKeepsMoreSwitches) {
  const auto topo = build_fat_tree(4, 100_Gbps);
  // Cross-pod heavy demands close to line rate: needs real fabric capacity.
  std::vector<TrafficDemand> heavy, light;
  const auto n = topo.hosts.size();
  for (std::size_t i = 0; i < n; ++i) {
    heavy.push_back(
        TrafficDemand{topo.hosts[i], topo.hosts[(i + 5) % n], 80_Gbps});
    light.push_back(
        TrafficDemand{topo.hosts[i], topo.hosts[(i + 5) % n], 2_Gbps});
  }
  const auto heavy_result = tailor_topology(topo, heavy);
  const auto light_result = tailor_topology(topo, light);
  ASSERT_TRUE(light_result.feasible);
  if (heavy_result.feasible) {
    EXPECT_LE(heavy_result.powered_off.size(),
              light_result.powered_off.size());
  }
}

TEST(OcsTailoring, ToRSwitchesAreProtected) {
  const auto topo = build_fat_tree(4, 100_Gbps);
  std::vector<TrafficDemand> demands = {
      TrafficDemand{topo.hosts[0], topo.hosts[1], 1_Gbps}};
  const auto result = tailor_topology(topo, demands);
  // Every host's sole attachment (its edge switch) must stay powered if any
  // of its hosts... (only attachment rule protects all edge switches here).
  for (NodeId off : result.powered_off) {
    EXPECT_NE(topo.graph.node(off).tier, 1)
        << "edge switch " << topo.graph.node(off).name << " was powered off";
  }
}

TEST(OcsTailoring, PinnedSwitchesStayOn) {
  const auto topo = build_fat_tree(4, 100_Gbps);
  std::vector<TrafficDemand> demands = {
      TrafficDemand{topo.hosts[0], topo.hosts[1], 1_Gbps}};
  TailorConfig cfg;
  cfg.pinned = topo.graph.nodes_at_tier(3);  // pin all cores
  const auto result = tailor_topology(topo, demands, cfg);
  for (NodeId core : cfg.pinned) {
    EXPECT_EQ(std::count(result.powered_off.begin(), result.powered_off.end(),
                         core),
              0);
  }
}

TEST(OcsTailoring, InfeasibleDemandsReportedAsSuch) {
  const auto topo = build_leaf_spine(2, 1, 2, 100_Gbps, 100_Gbps);
  // Two hosts on one leaf both demanding full line rate to hosts on the
  // other leaf: the single 100 G uplink cannot carry 200 G.
  std::vector<TrafficDemand> demands = {
      TrafficDemand{topo.hosts[0], topo.hosts[2], 100_Gbps},
      TrafficDemand{topo.hosts[1], topo.hosts[3], 100_Gbps}};
  const auto result = tailor_topology(topo, demands);
  EXPECT_FALSE(result.feasible);
  EXPECT_TRUE(result.powered_off.empty());
}

TEST(OcsTailoring, ZeroDemandThrows) {
  const auto topo = build_fat_tree(4, 100_Gbps);
  std::vector<TrafficDemand> demands = {
      TrafficDemand{topo.hosts[0], topo.hosts[1], Gbps{0.0}}};
  EXPECT_THROW(tailor_topology(topo, demands), std::invalid_argument);
}

TEST(OcsTailoring, EmptyDemandsParkEverythingButProtected) {
  const auto topo = build_fat_tree(4, 100_Gbps);
  const auto result = tailor_topology(topo, {});
  EXPECT_TRUE(result.feasible);
  // All aggs and cores can go; the 8 edge switches are protected.
  EXPECT_EQ(result.powered_on.size(), 8u);
}

TEST(OcsOverhead, ReconfigurationIsNegligibleForLongJobs) {
  // The paper: tens-of-ms OCS reconfiguration vs jobs lasting days.
  OcsOverheadModel model;
  const double overhead = model.time_overhead(Seconds::from_hours(24.0));
  EXPECT_LT(overhead, 1e-6);
}

TEST(OcsOverhead, ShortJobsPayMore) {
  OcsOverheadModel model;
  EXPECT_GT(model.time_overhead(Seconds{1.0}),
            model.time_overhead(Seconds{1000.0}));
}

TEST(OcsOverhead, NetSavingsSubtractOcsPower) {
  OcsOverheadModel model;
  const Watts net = model.net_power_savings(Watts{1000.0}, 4);
  EXPECT_DOUBLE_EQ(net.value(), 1000.0 - 4 * 50.0);
}

TEST(OcsOverhead, InvalidInputsThrow) {
  OcsOverheadModel model;
  EXPECT_THROW((void)model.time_overhead(Seconds{0.0}), std::invalid_argument);
  EXPECT_THROW((void)model.net_power_savings(Watts{10.0}, -1),
               std::invalid_argument);
}

}  // namespace
}  // namespace netpp
