#include "netpp/mech/scheduler.h"

#include <gtest/gtest.h>

namespace netpp {
namespace {

using namespace netpp::literals;

SchedulerConfig small_cluster() {
  SchedulerConfig cfg;
  cfg.racks = 4;
  cfg.gpus_per_rack = 8;
  cfg.tor_envelope =
      PowerEnvelope::from_proportionality(Watts{100.0}, 0.10);
  cfg.switch_wake_time = Seconds{0.0};
  return cfg;
}

std::vector<Job> one_job(int gpus, double arrival = 0.0,
                         double duration = 10.0) {
  return {Job{0, gpus, Seconds{arrival}, Seconds{duration}}};
}

TEST(Scheduler, SingleSmallJobOccupiesOneRack) {
  for (auto policy : {PlacementPolicy::kSpread, PlacementPolicy::kConcentrate}) {
    const auto result =
        simulate_schedule(small_cluster(), one_job(4), policy);
    EXPECT_EQ(result.placed_jobs, 1u);
    EXPECT_EQ(result.rejected_jobs, 0u);
    EXPECT_NEAR(result.mean_occupied_racks, 1.0, 1e-9);
  }
}

TEST(Scheduler, ConcentratePacksSpreadBalances) {
  // Four 4-GPU jobs on 4 racks of 8: spread uses 4 racks, concentrate 2.
  std::vector<Job> jobs;
  for (int i = 0; i < 4; ++i) {
    jobs.push_back(Job{static_cast<std::uint64_t>(i), 4,
                       Seconds{0.001 * i}, Seconds{10.0}});
  }
  const auto spread =
      simulate_schedule(small_cluster(), jobs, PlacementPolicy::kSpread);
  const auto packed =
      simulate_schedule(small_cluster(), jobs, PlacementPolicy::kConcentrate);
  EXPECT_NEAR(spread.mean_occupied_racks, 4.0, 0.01);
  EXPECT_NEAR(packed.mean_occupied_racks, 2.0, 0.01);
  EXPECT_LT(packed.tor_energy.value(), spread.tor_energy.value());
  EXPECT_GT(packed.tor_energy_savings, spread.tor_energy_savings);
}

TEST(Scheduler, EnergyAccountingForOneJob) {
  // 1 job, 4 GPUs, 10 s; 4 racks; switch-off allowed; wake time 0.
  // Occupied rack: duty power = 90 + 10*0.1 = 91 W for 10 s.
  // Other racks off: 0 W. Always-on: 3 empty racks at 90 W for 10 s more.
  const auto cfg = small_cluster();
  const auto result =
      simulate_schedule(cfg, one_job(4), PlacementPolicy::kConcentrate);
  EXPECT_NEAR(result.tor_energy.value(), 91.0 * 10.0, 1e-6);
  EXPECT_NEAR(result.always_on_tor_energy.value(),
              91.0 * 10.0 + 3.0 * 90.0 * 10.0, 1e-6);
  EXPECT_NEAR(result.tor_energy_savings,
              1.0 - 910.0 / (910.0 + 2700.0), 1e-9);
}

TEST(Scheduler, NoSwitchOffMeansNoSavings) {
  auto cfg = small_cluster();
  cfg.allow_switch_off = false;
  const auto result =
      simulate_schedule(cfg, one_job(4), PlacementPolicy::kConcentrate);
  EXPECT_NEAR(result.tor_energy_savings, 0.0, 1e-12);
  EXPECT_EQ(result.tor_wakeups, 0u);
}

TEST(Scheduler, BigJobSpansRacks) {
  const auto result = simulate_schedule(small_cluster(), one_job(20),
                                        PlacementPolicy::kConcentrate);
  EXPECT_EQ(result.placed_jobs, 1u);
  // 20 GPUs over racks of 8: 3 racks.
  EXPECT_NEAR(result.mean_occupied_racks, 3.0, 1e-9);
}

TEST(Scheduler, OversizedJobIsRejected) {
  const auto result = simulate_schedule(small_cluster(), one_job(33),
                                        PlacementPolicy::kSpread);
  EXPECT_EQ(result.rejected_jobs, 1u);
  EXPECT_EQ(result.placed_jobs, 0u);
}

TEST(Scheduler, CapacityFreesOverTime) {
  // Two 32-GPU jobs back to back: the second arrives after the first ends.
  std::vector<Job> jobs = {Job{0, 32, Seconds{0.0}, Seconds{5.0}},
                           Job{1, 32, Seconds{6.0}, Seconds{5.0}}};
  const auto result = simulate_schedule(small_cluster(), jobs,
                                        PlacementPolicy::kConcentrate);
  EXPECT_EQ(result.placed_jobs, 2u);
  EXPECT_EQ(result.rejected_jobs, 0u);
}

TEST(Scheduler, OverlappingFullClusterJobsReject) {
  std::vector<Job> jobs = {Job{0, 32, Seconds{0.0}, Seconds{10.0}},
                           Job{1, 1, Seconds{5.0}, Seconds{1.0}}};
  const auto result =
      simulate_schedule(small_cluster(), jobs, PlacementPolicy::kSpread);
  EXPECT_EQ(result.rejected_jobs, 1u);
}

TEST(Scheduler, WakeDelayIsCharged) {
  auto cfg = small_cluster();
  cfg.switch_wake_time = Seconds{2.0};
  const auto result = simulate_schedule(cfg, one_job(4, 0.0, 10.0),
                                        PlacementPolicy::kConcentrate);
  EXPECT_NEAR(result.total_wake_delay.value(), 2.0, 1e-12);
  EXPECT_EQ(result.tor_wakeups, 1u);
  // The rack stays occupied for delay + duration.
  EXPECT_NEAR(result.tor_energy.value(), 91.0 * 12.0, 1e-6);
}

TEST(Scheduler, ConcentrateReusesWarmRacks) {
  // Job A occupies rack; job B (fits in the same rack) must not wake a
  // second rack under concentration.
  std::vector<Job> jobs = {Job{0, 4, Seconds{0.0}, Seconds{10.0}},
                           Job{1, 4, Seconds{1.0}, Seconds{5.0}}};
  const auto result = simulate_schedule(small_cluster(), jobs,
                                        PlacementPolicy::kConcentrate);
  EXPECT_EQ(result.tor_wakeups, 1u);
}

TEST(Scheduler, InvalidInputsThrow) {
  auto cfg = small_cluster();
  cfg.racks = 0;
  EXPECT_THROW((void)
      simulate_schedule(cfg, one_job(1), PlacementPolicy::kSpread),
      std::invalid_argument);
  std::vector<Job> unsorted = {Job{0, 1, Seconds{5.0}, Seconds{1.0}},
                               Job{1, 1, Seconds{1.0}, Seconds{1.0}}};
  EXPECT_THROW((void)simulate_schedule(small_cluster(), unsorted,
                                 PlacementPolicy::kSpread),
               std::invalid_argument);
  EXPECT_THROW((void)simulate_schedule(small_cluster(),
                                 {Job{0, 0, Seconds{0.0}, Seconds{1.0}}},
                                 PlacementPolicy::kSpread),
               std::invalid_argument);
}

TEST(Scheduler, JobTraceIsDeterministicAndSorted) {
  const auto a = make_job_trace(100, Seconds{1.0}, Seconds{5.0}, 16, 7);
  const auto b = make_job_trace(100, Seconds{1.0}, Seconds{5.0}, 16, 7);
  ASSERT_EQ(a.size(), 100u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].gpus, b[i].gpus);
    EXPECT_DOUBLE_EQ(a[i].arrival.value(), b[i].arrival.value());
    if (i > 0) {
      EXPECT_GE(a[i].arrival.value(), a[i - 1].arrival.value());
    }
    EXPECT_GE(a[i].gpus, 1);
    EXPECT_LE(a[i].gpus, 16);
  }
  EXPECT_THROW(make_job_trace(-1, Seconds{1.0}, Seconds{1.0}, 4),
               std::invalid_argument);
}

TEST(Scheduler, RealisticTraceConcentrationWins) {
  // Moderate load: concentration should occupy clearly fewer racks and save
  // ToR energy without rejecting more jobs than spread.
  SchedulerConfig cfg;
  cfg.racks = 16;
  cfg.gpus_per_rack = 8;
  cfg.switch_wake_time = Seconds{0.0};
  const auto jobs = make_job_trace(200, Seconds{1.0}, Seconds{8.0}, 8, 42);
  const auto spread =
      simulate_schedule(cfg, jobs, PlacementPolicy::kSpread);
  const auto packed =
      simulate_schedule(cfg, jobs, PlacementPolicy::kConcentrate);
  EXPECT_EQ(spread.rejected_jobs, packed.rejected_jobs);
  EXPECT_LT(packed.mean_occupied_racks, spread.mean_occupied_racks);
  EXPECT_GT(packed.tor_energy_savings, spread.tor_energy_savings);
}

}  // namespace
}  // namespace netpp
