#include "netpp/analysis/resilience.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace netpp {
namespace {

TEST(SampleQuantile, InterpolatesAndHandlesEdges) {
  EXPECT_DOUBLE_EQ(sample_quantile({}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(sample_quantile({7.0}, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(sample_quantile({7.0}, 1.0), 7.0);
  EXPECT_DOUBLE_EQ(sample_quantile({3.0, 1.0, 2.0}, 0.5), 2.0);
  EXPECT_DOUBLE_EQ(sample_quantile({1.0, 2.0}, 0.5), 1.5);
  EXPECT_DOUBLE_EQ(sample_quantile({10.0, 0.0}, 0.25), 2.5);
  EXPECT_THROW((void)sample_quantile({1.0}, -0.1), std::invalid_argument);
  EXPECT_THROW((void)sample_quantile({1.0}, 1.1), std::invalid_argument);
}

TEST(ResilienceReport, NoFaultInputIsPerfect) {
  ResilienceInput input;
  input.flows_submitted = 10;
  input.flows_completed = 10;
  input.flow_seconds = 25.0;
  input.powered_switch_seconds = 40.0;
  input.all_on_switch_seconds = 80.0;
  input.switch_power = Watts{100.0};
  input.duration = Seconds{10.0};
  const auto report = build_resilience_report(input);
  EXPECT_DOUBLE_EQ(report.availability, 1.0);
  EXPECT_DOUBLE_EQ(report.completion_rate, 1.0);
  EXPECT_DOUBLE_EQ(report.stranded_demand_gbit_seconds, 0.0);
  EXPECT_DOUBLE_EQ(report.mean_recovery.value(), 0.0);
  EXPECT_DOUBLE_EQ(report.p99_recovery.value(), 0.0);
  EXPECT_DOUBLE_EQ(report.energy.value(), 4000.0);
  EXPECT_DOUBLE_EQ(report.all_on_energy.value(), 8000.0);
  EXPECT_DOUBLE_EQ(report.energy_delta, -0.5);
}

TEST(ResilienceReport, StrandingReducesAvailability) {
  ResilienceInput input;
  input.flows_submitted = 4;
  input.flows_completed = 3;
  input.flows_stranded_at_end = 1;
  input.flow_seconds = 10.0;
  input.strand_durations = {1.0, 1.5};  // 2.5 s stranded of 10 s lifetime
  input.stranded_bit_seconds = 5e9;
  const auto report = build_resilience_report(input);
  EXPECT_DOUBLE_EQ(report.availability, 0.75);
  EXPECT_DOUBLE_EQ(report.completion_rate, 0.75);
  EXPECT_DOUBLE_EQ(report.stranded_demand_gbit_seconds, 5.0);
  EXPECT_DOUBLE_EQ(report.mean_recovery.value(), 1.25);
  EXPECT_NEAR(report.p99_recovery.value(), 1.495, 1e-9);
}

TEST(ResilienceReport, AvailabilityClampedToZero) {
  ResilienceInput input;
  input.flow_seconds = 1.0;
  input.strand_durations = {5.0};
  const auto report = build_resilience_report(input);
  EXPECT_DOUBLE_EQ(report.availability, 0.0);
}

}  // namespace
}  // namespace netpp
