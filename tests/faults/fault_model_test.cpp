#include "netpp/faults/fault_model.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "netpp/topo/builders.h"

namespace netpp {
namespace {

using namespace netpp::literals;

FaultGeneratorConfig base_config() {
  FaultGeneratorConfig config;
  config.switches = DeviceReliability{Seconds{20.0}, Seconds{1.0}};
  config.links = DeviceReliability{Seconds{40.0}, Seconds{0.5}};
  config.horizon = Seconds{100.0};
  config.seed = 123;
  return config;
}

TEST(FaultGenerator, DeterministicForSameSeed) {
  const auto topo = build_leaf_spine(2, 2, 2, 100_Gbps, 100_Gbps);
  const FaultGenerator gen{base_config()};
  const auto a = gen.generate(topo.graph);
  const auto b = gen.generate(topo.graph);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.faults[i].kind, b.faults[i].kind);
    EXPECT_EQ(a.faults[i].node, b.faults[i].node);
    EXPECT_EQ(a.faults[i].link, b.faults[i].link);
    EXPECT_DOUBLE_EQ(a.faults[i].at.value(), b.faults[i].at.value());
    EXPECT_DOUBLE_EQ(a.faults[i].recover_at.value(),
                     b.faults[i].recover_at.value());
  }
}

TEST(FaultGenerator, SeedChangesSchedule) {
  const auto topo = build_leaf_spine(2, 2, 2, 100_Gbps, 100_Gbps);
  auto config = base_config();
  const auto a = FaultGenerator{config}.generate(topo.graph);
  config.seed = 124;
  const auto b = FaultGenerator{config}.generate(topo.graph);
  ASSERT_FALSE(a.empty());
  bool differs = a.size() != b.size();
  for (std::size_t i = 0; !differs && i < a.size(); ++i) {
    differs = a.faults[i].at.value() != b.faults[i].at.value();
  }
  EXPECT_TRUE(differs);
}

TEST(FaultGenerator, ScheduleIsSortedAndValid) {
  const auto topo = build_leaf_spine(3, 3, 2, 100_Gbps, 100_Gbps);
  auto config = base_config();
  config.degraded_fraction = 0.5;
  const auto schedule = FaultGenerator{config}.generate(topo.graph);
  ASSERT_FALSE(schedule.empty());
  EXPECT_NO_THROW(schedule.validate(topo.graph));
  for (std::size_t i = 1; i < schedule.size(); ++i) {
    EXPECT_LE(schedule.faults[i - 1].at.value(), schedule.faults[i].at.value());
  }
  for (const auto& f : schedule.faults) {
    EXPECT_LT(f.at.value(), 100.0);
    EXPECT_GT(f.recover_at.value(), f.at.value());
  }
}

TEST(FaultGenerator, HostsNeverFail) {
  const auto topo = build_leaf_spine(2, 2, 4, 100_Gbps, 100_Gbps);
  const auto schedule = FaultGenerator{base_config()}.generate(topo.graph);
  for (const auto& f : schedule.faults) {
    if (f.kind == FaultKind::kSwitchDown) {
      EXPECT_NE(topo.graph.node(f.node).kind, NodeKind::kHost);
    }
  }
}

TEST(FaultGenerator, ZeroMtbfDisablesClass) {
  const auto topo = build_leaf_spine(2, 2, 2, 100_Gbps, 100_Gbps);
  auto config = base_config();
  config.switches.mtbf = Seconds{0.0};
  config.links.mtbf = Seconds{0.0};
  EXPECT_TRUE(FaultGenerator{config}.generate(topo.graph).empty());
}

TEST(FaultGenerator, DeviceStreamsAreIndependent) {
  // A device's fault times must not depend on how many other devices exist:
  // the same link id draws the same renewal times on both topologies.
  auto config = base_config();
  config.switches.mtbf = Seconds{0.0};
  const auto small = build_leaf_spine(2, 2, 2, 100_Gbps, 100_Gbps);
  const auto large = build_leaf_spine(2, 3, 2, 100_Gbps, 100_Gbps);
  const auto a = FaultGenerator{config}.generate(small.graph);
  const auto b = FaultGenerator{config}.generate(large.graph);
  for (const auto& fa : a.faults) {
    const bool found = std::any_of(
        b.faults.begin(), b.faults.end(), [&](const FaultSpec& fb) {
          return fb.link == fa.link && fb.at.value() == fa.at.value() &&
                 fb.recover_at.value() == fa.recover_at.value();
        });
    EXPECT_TRUE(found) << "link " << fa.link << " at " << fa.at.value();
  }
}

TEST(FaultGenerator, RejectsBadConfig) {
  auto config = base_config();
  config.switches.mttr = Seconds{0.0};
  EXPECT_THROW(FaultGenerator{config}, std::invalid_argument);
  config = base_config();
  config.degraded_fraction = 1.5;
  EXPECT_THROW(FaultGenerator{config}, std::invalid_argument);
  config = base_config();
  config.degraded_capacity_factor = 0.0;
  EXPECT_THROW(FaultGenerator{config}, std::invalid_argument);
  config = base_config();
  config.horizon = Seconds{-1.0};
  EXPECT_THROW(FaultGenerator{config}, std::invalid_argument);
}

TEST(FaultSchedule, ValidateRejectsBadSpecs) {
  const auto topo = build_leaf_spine(2, 2, 2, 100_Gbps, 100_Gbps);
  const NodeId sw = topo.switches.front();

  FaultSchedule unsorted;
  unsorted.faults.push_back(FaultSpec{FaultKind::kSwitchDown, sw,
                                      kInvalidLink, Seconds{5.0}, Seconds{6.0},
                                      1.0});
  unsorted.faults.push_back(FaultSpec{FaultKind::kSwitchDown, sw,
                                      kInvalidLink, Seconds{1.0}, Seconds{2.0},
                                      1.0});
  EXPECT_THROW(unsorted.validate(topo.graph), std::invalid_argument);

  FaultSchedule host_down;
  host_down.faults.push_back(FaultSpec{FaultKind::kSwitchDown,
                                       topo.hosts.front(), kInvalidLink,
                                       Seconds{1.0}, Seconds{2.0}, 1.0});
  EXPECT_THROW(host_down.validate(topo.graph), std::invalid_argument);

  FaultSchedule no_repair;
  no_repair.faults.push_back(FaultSpec{FaultKind::kSwitchDown, sw,
                                       kInvalidLink, Seconds{2.0},
                                       Seconds{2.0}, 1.0});
  EXPECT_THROW(no_repair.validate(topo.graph), std::invalid_argument);

  FaultSchedule bad_factor;
  bad_factor.faults.push_back(FaultSpec{FaultKind::kLinkDegraded,
                                        kInvalidNode, LinkId{0}, Seconds{1.0},
                                        Seconds{2.0}, 1.5});
  EXPECT_THROW(bad_factor.validate(topo.graph), std::invalid_argument);

  FaultSchedule bad_link;
  bad_link.faults.push_back(FaultSpec{FaultKind::kLinkDown, kInvalidNode,
                                      LinkId{100000}, Seconds{1.0},
                                      Seconds{2.0}, 1.0});
  EXPECT_THROW(bad_link.validate(topo.graph), std::out_of_range);
}

}  // namespace
}  // namespace netpp
