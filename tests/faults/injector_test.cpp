#include "netpp/faults/injector.h"

#include <gtest/gtest.h>

#include <memory>

#include "netpp/topo/builders.h"

namespace netpp {
namespace {

using namespace netpp::literals;

/// Two leaves, two spines, one host per leaf: cross-leaf traffic has exactly
/// two ECMP paths (one per spine).
struct TwoSpine {
  BuiltTopology topo = build_leaf_spine(2, 2, 1, 100_Gbps, 100_Gbps);
  FlowSimulator::Config config = [] {
    FlowSimulator::Config c;
    c.strand_unroutable = true;
    return c;
  }();
  std::unique_ptr<SimulatorBackend> backend =
      make_backend(topo.graph, BackendConfig{}, config);
  SimulatorBackend& sim = *backend;

  /// Select switches by tier (leaves are tier 1, spines tier 2) rather than
  /// by position in `switches`, whose order is a builder detail.
  [[nodiscard]] NodeId spine(std::size_t i) const {
    return topo.graph.nodes_at_tier(2).at(i);
  }
  [[nodiscard]] NodeId leaf(std::size_t i) const {
    return topo.graph.nodes_at_tier(1).at(i);
  }
};

FaultSpec switch_down(NodeId node, double at, double recover_at) {
  FaultSpec f;
  f.kind = FaultKind::kSwitchDown;
  f.node = node;
  f.at = Seconds{at};
  f.recover_at = Seconds{recover_at};
  return f;
}

TEST(FaultInjector, SpineFailureReroutesAndFlowCompletes) {
  TwoSpine t;
  // 100 Gbit cross-leaf; both spines up -> one of the two paths is used.
  t.sim.submit(FlowSpec{t.topo.hosts[0], t.topo.hosts[1],
                        Bits::from_gigabits(100.0), 0.0_s, 0});

  // Fail both spines one after the other; at least one failure hits the
  // flow's current path and must reroute it.
  FaultSchedule schedule;
  schedule.faults.push_back(switch_down(t.spine(0), 0.2, 5.0));
  FaultInjector injector{t.sim, schedule};
  injector.arm();
  t.sim.run();

  ASSERT_EQ(t.sim.completed().size(), 1u);
  EXPECT_EQ(t.sim.stranded_flows(), 0u);
  EXPECT_EQ(injector.faults_applied(), 1u);
  // The flow either rode the surviving spine all along (reroutes == 0) or
  // was moved; in both cases it never stranded.
  EXPECT_EQ(t.sim.realloc_stats().stranded, 0u);
}

TEST(FaultInjector, AllSpinesDownStrandsThenResumes) {
  TwoSpine t;
  t.sim.submit(FlowSpec{t.topo.hosts[0], t.topo.hosts[1],
                        Bits::from_gigabits(100.0), 0.0_s, 0});
  FaultSchedule schedule;
  schedule.faults.push_back(switch_down(t.spine(0), 0.2, 1.0));
  schedule.faults.push_back(switch_down(t.spine(1), 0.2, 1.5));
  FaultInjector injector{t.sim, schedule};
  injector.arm();
  t.sim.run();

  // Stranded at 0.2 with 80 Gbit left; spine 0 repairs at 1.0 -> resumes and
  // finishes 0.8 s later.
  ASSERT_EQ(t.sim.completed().size(), 1u);
  EXPECT_NEAR(t.sim.completed()[0].finished.value(), 1.8, 1e-6);
  EXPECT_EQ(t.sim.realloc_stats().stranded, 1u);
  EXPECT_EQ(t.sim.realloc_stats().resumed, 1u);
  ASSERT_EQ(t.sim.strand_durations().size(), 1u);
  EXPECT_NEAR(t.sim.strand_durations()[0], 0.8, 1e-9);
  // 80 Gbit stranded for 0.8 s.
  EXPECT_NEAR(t.sim.stranded_bit_seconds(t.sim.now()), 80e9 * 0.8, 1e3);
}

TEST(FaultInjector, RepairRestoresPreFaultParkedState) {
  TwoSpine t;
  // Park spine 1 (a power mechanism turned it off) before the fault hits it.
  t.sim.set_node_enabled(t.spine(1), false);
  FaultSchedule schedule;
  schedule.faults.push_back(switch_down(t.spine(1), 0.1, 0.5));
  FaultInjector injector{t.sim, schedule};
  injector.arm();
  t.sim.run();
  // The repair must NOT silently power on a switch a policy parked.
  EXPECT_FALSE(t.sim.node_enabled(t.spine(1)));
}

TEST(FaultInjector, DegradedLinkSlowsAndRecovers) {
  TwoSpine t;
  // Find the host0 -> leaf0 access link: every path crosses it.
  const auto& g = t.topo.graph;
  LinkId access = kInvalidLink;
  for (const Link& link : g.links()) {
    if (link.a == t.topo.hosts[0] || link.b == t.topo.hosts[0]) {
      access = link.id;
    }
  }
  ASSERT_NE(access, kInvalidLink);

  FaultSpec degrade;
  degrade.kind = FaultKind::kLinkDegraded;
  degrade.link = access;
  degrade.at = Seconds{0.0};
  degrade.recover_at = Seconds{1.0};
  degrade.capacity_factor = 0.5;
  FaultSchedule schedule;
  schedule.faults.push_back(degrade);

  t.sim.submit(FlowSpec{t.topo.hosts[0], t.topo.hosts[1],
                        Bits::from_gigabits(100.0), 0.0_s, 0});
  FaultInjector injector{t.sim, schedule};
  injector.arm();
  t.sim.run();

  // 1 s at 50 G (50 Gbit done), then 0.5 s at full rate: finishes at 1.5 s.
  ASSERT_EQ(t.sim.completed().size(), 1u);
  EXPECT_NEAR(t.sim.completed()[0].finished.value(), 1.5, 1e-6);
  EXPECT_DOUBLE_EQ(t.sim.link_capacity_factor(access), 1.0);
}

TEST(FaultInjector, ListenerSeesFailureAndRecovery) {
  TwoSpine t;
  FaultSchedule schedule;
  schedule.faults.push_back(switch_down(t.spine(0), 0.1, 0.4));
  FaultInjector injector{t.sim, schedule};
  std::vector<bool> recoveries;
  injector.set_listener([&](const FaultSpec& f, bool recovery) {
    EXPECT_EQ(f.node, t.spine(0));
    recoveries.push_back(recovery);
  });
  injector.arm();
  t.sim.run();
  ASSERT_EQ(recoveries.size(), 2u);
  EXPECT_FALSE(recoveries[0]);
  EXPECT_TRUE(recoveries[1]);
}

TEST(FaultInjector, RejectsDoubleArmAndBadSchedule) {
  TwoSpine t;
  FaultSchedule schedule;
  schedule.faults.push_back(switch_down(t.spine(0), 0.1, 0.4));
  FaultInjector injector{t.sim, schedule};
  injector.arm();
  EXPECT_THROW(injector.arm(), std::logic_error);

  FaultSchedule host_fault;
  host_fault.faults.push_back(switch_down(t.topo.hosts[0], 0.1, 0.4));
  EXPECT_THROW((FaultInjector{t.sim, host_fault}), std::invalid_argument);
}

}  // namespace
}  // namespace netpp
