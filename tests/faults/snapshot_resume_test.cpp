// The snapshot/restore acceptance bar: a fault experiment resumed from a
// mid-run snapshot is indistinguishable — to the last bit — from the
// uninterrupted run. Sixteen seeded scenarios sweep topology sizes, Poisson
// workloads, fault storms (switch kills, link cuts, degradations),
// degraded-mode policies, tailoring, and telemetry attachment; each is cut
// at a seed-dependent time, serialized, restored into a fresh
// process-equivalent world, and run to completion. Final flow rates, energy
// integrals, metric snapshots, and the full end-of-run snapshot bytes must
// be bitwise equal. Also covers the mid-fault restore contract (parked
// switches stay parked through a post-restore repair) and typed rejection
// of corrupted/mismatched snapshots.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "netpp/faults/experiment.h"
#include "netpp/state/auditor.h"
#include "netpp/state/snapshot.h"
#include "netpp/telemetry/export.h"
#include "netpp/telemetry/telemetry.h"
#include "netpp/topo/builders.h"
#include "netpp/traffic/generators.h"

namespace netpp {
namespace {

using namespace netpp::literals;

void expect_bits(double a, double b, const char* what) {
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a), std::bit_cast<std::uint64_t>(b))
      << what << ": " << a << " vs " << b;
}

std::vector<TrafficDemand> ring_demands(const BuiltTopology& topo, Gbps rate) {
  std::vector<TrafficDemand> demands;
  for (std::size_t i = 0; i < topo.hosts.size(); ++i) {
    demands.push_back(TrafficDemand{
        topo.hosts[i], topo.hosts[(i + 1) % topo.hosts.size()], rate});
  }
  return demands;
}

struct Scenario {
  BuiltTopology topo;
  std::vector<FlowSpec> workload;
  FaultSchedule schedule;
  FaultExperimentConfig config;  // telemetry wired per-run by the caller
  Seconds cut{};
  bool telemetry = false;
  bool sampler = false;
};

Scenario make_scenario(unsigned seed) {
  Scenario s;
  const std::size_t leaves = 2 + seed % 3;
  s.topo = build_leaf_spine(leaves, 2, 2, 100_Gbps, 100_Gbps);

  PoissonTrafficConfig traffic;
  traffic.arrivals_per_second = 50.0 + 10.0 * static_cast<double>(seed % 4);
  traffic.max_size = Bits::from_gigabits(2.0);
  traffic.duration = Seconds{1.0};
  traffic.seed = 1000 + seed;
  s.workload = make_poisson_traffic(s.topo.hosts, traffic);

  const auto& switches = s.topo.switches;
  FaultSpec down;
  down.kind = FaultKind::kSwitchDown;
  down.node = switches[seed % switches.size()];
  down.at = Seconds{0.3};
  down.recover_at = Seconds{0.8};
  s.schedule.faults.push_back(down);
  if (seed % 2 == 1) {
    FaultSpec cut_link;
    cut_link.kind = FaultKind::kLinkDown;
    cut_link.link = static_cast<LinkId>((seed * 7) % s.topo.graph.num_links());
    cut_link.at = Seconds{0.45};
    cut_link.recover_at = Seconds{0.9};
    s.schedule.faults.push_back(cut_link);
  }
  if (seed % 4 == 2) {
    FaultSpec degrade;
    degrade.kind = FaultKind::kLinkDegraded;
    degrade.link =
        static_cast<LinkId>((seed * 13) % s.topo.graph.num_links());
    degrade.capacity_factor = 0.5;
    degrade.at = Seconds{0.35};
    degrade.recover_at = Seconds{0.75};
    s.schedule.faults.push_back(degrade);
  }

  s.config.tailor = seed % 2 == 0;
  switch (seed % 3) {
    case 0:
      s.config.degraded.policy = DegradedPolicy::kNone;
      break;
    case 1:
      s.config.degraded.policy = DegradedPolicy::kEmergencyWakeAll;
      break;
    default:
      s.config.degraded.policy = DegradedPolicy::kRetailor;
      break;
  }
  s.config.degraded.wake_latency = Seconds::from_milliseconds(30.0);
  s.config.degraded.min_headroom = seed % 2 == 0 ? 0.0 : 0.1;
  s.config.demands = ring_demands(s.topo, 15_Gbps);
  s.cut = Seconds{0.2 + 0.05 * static_cast<double>(seed % 10)};
  s.telemetry = seed % 2 == 0;
  s.sampler = seed % 4 == 0;
  return s;
}

telemetry::TelemetryConfig tel_config(const Scenario& s) {
  telemetry::TelemetryConfig config;
  config.sample_period = s.sampler ? Seconds{0.05} : Seconds{0.0};
  return config;
}

/// Runs `seed`'s scenario straight through and via save/restore-at-cut,
/// returning (straight-line final snapshot, mid-run snapshot) so callers
/// can reuse the bytes. All observable outputs are compared bitwise.
void run_scenario(unsigned seed) {
  const Scenario s = make_scenario(seed);

  // Straight line.
  telemetry::Telemetry tel_a{tel_config(s)};
  FaultExperimentConfig cfg_a = s.config;
  if (s.telemetry) cfg_a.telemetry = &tel_a;
  FaultExperimentRun a{s.topo, s.workload, s.schedule, cfg_a};
  a.run();
  FaultExperimentResult ra = a.finish();
  state::SnapshotWriter end_a;
  a.save_state(end_a);

  // Interrupted at the cut: audit, snapshot, abandon.
  telemetry::Telemetry tel_b{tel_config(s)};
  FaultExperimentConfig cfg_b = s.config;
  if (s.telemetry) cfg_b.telemetry = &tel_b;
  FaultExperimentRun b{s.topo, s.workload, s.schedule, cfg_b};
  b.run_until(s.cut);
  b.check_invariants();
  state::SnapshotWriter mid;
  b.save_state(mid);

  // Restored into a fresh process-equivalent world; run to completion.
  telemetry::Telemetry tel_c{tel_config(s)};
  FaultExperimentConfig cfg_c = s.config;
  if (s.telemetry) cfg_c.telemetry = &tel_c;
  state::SnapshotReader r{mid.buffer()};
  FaultExperimentRun c{s.topo, s.workload, s.schedule, cfg_c, r};
  EXPECT_TRUE(r.at_end()) << "restore must consume the whole snapshot";
  c.run();
  FaultExperimentResult rc = c.finish();
  state::SnapshotWriter end_c;
  c.save_state(end_c);

  // Observable outputs, bitwise.
  EXPECT_EQ(ra.fct.count(), rc.fct.count());
  expect_bits(ra.fct.mean(), rc.fct.mean(), "fct mean");
  expect_bits(ra.fct.m2(), rc.fct.m2(), "fct m2");
  expect_bits(ra.fct.sum(), rc.fct.sum(), "fct sum");
  expect_bits(ra.fct.max(), rc.fct.max(), "fct max");
  expect_bits(ra.report.energy.value(), rc.report.energy.value(), "energy");
  expect_bits(ra.report.availability, rc.report.availability, "availability");
  expect_bits(ra.report.stranded_demand_gbit_seconds,
              rc.report.stranded_demand_gbit_seconds, "stranded demand");
  EXPECT_EQ(ra.realloc.reroutes, rc.realloc.reroutes);
  EXPECT_EQ(ra.realloc.stranded, rc.realloc.stranded);
  EXPECT_EQ(ra.emergency_wakes, rc.emergency_wakes);
  EXPECT_EQ(ra.retailor_passes, rc.retailor_passes);
  EXPECT_EQ(ra.powered_at_end, rc.powered_at_end);
  expect_bits(ra.end.value(), rc.end.value(), "end time");
  ASSERT_EQ(a.sim().completed().size(), c.sim().completed().size());
  for (std::size_t i = 0; i < a.sim().completed().size(); ++i) {
    EXPECT_EQ(a.sim().completed()[i].id, c.sim().completed()[i].id);
    expect_bits(a.sim().completed()[i].finished.value(),
                c.sim().completed()[i].finished.value(), "completion time");
  }
  const std::vector<double> sa = a.sim().strand_durations();
  const std::vector<double> sc = c.sim().strand_durations();
  ASSERT_EQ(sa.size(), sc.size());
  for (std::size_t i = 0; i < sa.size(); ++i) {
    expect_bits(sa[i], sc[i], "strand duration");
  }
  if (s.telemetry) {
    EXPECT_EQ(telemetry::to_metrics_json(tel_a.metrics()),
              telemetry::to_metrics_json(tel_c.metrics()));
  }

  // The total-state check: the end-of-run snapshots must be byte-identical.
  EXPECT_EQ(end_a.buffer(), end_c.buffer())
      << "resumed end state diverged from the straight-line end state";
}

TEST(SnapshotResume, BitIdenticalAcrossSixteenSeededScenarios) {
  for (unsigned seed = 0; seed < 16; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    run_scenario(seed);
  }
}

TEST(SnapshotResume, ForkedRestoresAgreeWithEachOther) {
  // A snapshot is a value: two restores from the same bytes must evolve
  // identically (the chaos harness's fork primitive).
  const Scenario s = make_scenario(3);
  FaultExperimentRun b{s.topo, s.workload, s.schedule, s.config};
  b.run_until(s.cut);
  state::SnapshotWriter mid;
  b.save_state(mid);

  state::SnapshotReader r1{mid.buffer()};
  FaultExperimentRun fork1{s.topo, s.workload, s.schedule, s.config, r1};
  fork1.run();
  state::SnapshotWriter end1;
  fork1.save_state(end1);

  state::SnapshotReader r2{mid.buffer()};
  FaultExperimentRun fork2{s.topo, s.workload, s.schedule, s.config, r2};
  fork2.run();
  state::SnapshotWriter end2;
  fork2.save_state(end2);

  EXPECT_EQ(end1.buffer(), end2.buffer());
}

TEST(SnapshotResume, ParkedSwitchStaysParkedThroughPostRestoreRepair) {
  // The mid-fault contract: a fault applied before the snapshot must repair
  // correctly after the restore — in particular, a switch that was parked
  // (tailored off) when it failed must return to *parked*, not powered,
  // because the injector's pre-fault enablement map traveled through the
  // snapshot.
  const auto topo = build_leaf_spine(2, 2, 2, 100_Gbps, 100_Gbps);
  FaultExperimentConfig config;
  config.tailor = true;
  config.degraded.policy = DegradedPolicy::kNone;
  config.demands = ring_demands(topo, 20_Gbps);

  // Probe run: construction tailors immediately, exposing the parked set.
  FaultExperimentRun probe{topo, {}, FaultSchedule{}, config};
  ASSERT_TRUE(probe.tailoring().feasible);
  ASSERT_FALSE(probe.tailoring().powered_off.empty());
  const NodeId victim = probe.tailoring().powered_off.front();

  FaultSchedule schedule;
  FaultSpec fault;
  fault.kind = FaultKind::kSwitchDown;
  fault.node = victim;
  fault.at = Seconds{0.3};
  fault.recover_at = Seconds{0.8};
  schedule.faults.push_back(fault);

  MlTrafficConfig traffic;
  traffic.compute_time = Seconds{0.2};
  traffic.comm_allowance = Seconds{0.3};
  traffic.volume_per_host = Bits::from_gigabits(4.0);
  traffic.iterations = 3;
  const auto workload = make_ml_training_traffic(topo.hosts, traffic).flows;

  // Straight line for reference.
  FaultExperimentRun a{topo, workload, schedule, config};
  a.run();
  state::SnapshotWriter end_a;
  a.save_state(end_a);
  ASSERT_FALSE(a.sim().router().node_enabled(victim))
      << "straight line: the parked victim must stay parked after repair";

  // Cut strictly inside the fault window (applied, not yet repaired).
  FaultExperimentRun b{topo, workload, schedule, config};
  b.run_until(Seconds{0.5});
  EXPECT_EQ(b.injector().faults_applied(), 1u);
  state::SnapshotWriter mid;
  b.save_state(mid);

  state::SnapshotReader r{mid.buffer()};
  FaultExperimentRun c{topo, workload, schedule, config, r};
  EXPECT_FALSE(c.sim().router().node_enabled(victim))
      << "restored mid-fault: the victim must still be down";
  c.run();
  EXPECT_FALSE(c.sim().router().node_enabled(victim))
      << "the repair after restore must re-apply the pre-fault (parked) "
         "enablement";
  state::SnapshotWriter end_c;
  c.save_state(end_c);
  EXPECT_EQ(end_a.buffer(), end_c.buffer());
}

TEST(SnapshotResume, AuditorWatchesTheWholeExperiment) {
  const Scenario s = make_scenario(5);
  FaultExperimentRun run{s.topo, s.workload, s.schedule, s.config};
  state::InvariantAuditor auditor;
  auditor.watch(run);
  auditor.watch(run.sim());
  auditor.watch(run.controller());
  // Audit at several event boundaries, including mid-fault.
  for (double t : {0.1, 0.35, 0.6, 2.0}) {
    run.run_until(Seconds{t});
    auditor.audit();
  }
  run.run();
  auditor.audit();
  EXPECT_EQ(auditor.audits_passed(), 5u);
}

TEST(SnapshotResume, MismatchedRestoreConfigsRejected) {
  const Scenario s = make_scenario(1);
  FaultExperimentRun b{s.topo, s.workload, s.schedule, s.config};
  b.run_until(s.cut);
  state::SnapshotWriter mid;
  b.save_state(mid);

  {
    // Different workload size.
    auto short_workload = s.workload;
    short_workload.pop_back();
    state::SnapshotReader r{mid.buffer()};
    EXPECT_THROW(
        (FaultExperimentRun{s.topo, short_workload, s.schedule, s.config, r}),
        std::invalid_argument);
  }
  {
    // Different tailoring mode.
    FaultExperimentConfig other = s.config;
    other.tailor = !other.tailor;
    state::SnapshotReader r{mid.buffer()};
    EXPECT_THROW(
        (FaultExperimentRun{s.topo, s.workload, s.schedule, other, r}),
        std::invalid_argument);
  }
  {
    // Telemetry attached now but not at save time.
    telemetry::Telemetry tel;
    FaultExperimentConfig other = s.config;
    other.telemetry = &tel;
    state::SnapshotReader r{mid.buffer()};
    EXPECT_THROW(
        (FaultExperimentRun{s.topo, s.workload, s.schedule, other, r}),
        std::invalid_argument);
  }
  {
    // Different fault schedule length.
    FaultSchedule other = s.schedule;
    other.faults.push_back(other.faults.front());
    state::SnapshotReader r{mid.buffer()};
    EXPECT_THROW(
        (FaultExperimentRun{s.topo, s.workload, other, s.config, r}),
        std::invalid_argument);
  }
}

TEST(SnapshotResume, CorruptedExperimentSnapshotsRejectedNotUB) {
  const Scenario s = make_scenario(2);
  FaultExperimentRun b{s.topo, s.workload, s.schedule, s.config};
  b.run_until(s.cut);
  state::SnapshotWriter mid;
  b.save_state(mid);
  const std::vector<std::uint8_t>& bytes = mid.buffer();

  // Flip one byte at a stride of positions across the whole buffer; every
  // attempt must surface as a typed error, never UB or a silent accept of
  // altered state.
  std::size_t rejected = 0;
  std::size_t attempts = 0;
  for (std::size_t pos = 12; pos < bytes.size(); pos += 211) {
    ++attempts;
    auto corrupt = bytes;
    corrupt[pos] ^= 0x20;
    try {
      state::SnapshotReader r{std::move(corrupt)};
      FaultExperimentRun c{s.topo, s.workload, s.schedule, s.config, r};
    } catch (const std::invalid_argument&) {
      ++rejected;
    }
  }
  EXPECT_EQ(rejected, attempts);

  // Truncations at section granularity and mid-payload.
  for (std::size_t keep : {std::size_t{0}, std::size_t{7}, std::size_t{12},
                           bytes.size() / 3, bytes.size() - 1}) {
    auto cut = std::vector<std::uint8_t>(
        bytes.begin(), bytes.begin() + static_cast<std::ptrdiff_t>(keep));
    const auto restore_truncated = [&] {
      state::SnapshotReader r{std::move(cut)};
      FaultExperimentRun c{s.topo, s.workload, s.schedule, s.config, r};
    };
    EXPECT_THROW(restore_truncated(), std::invalid_argument)
        << "kept " << keep << " bytes";
  }
}

}  // namespace
}  // namespace netpp
