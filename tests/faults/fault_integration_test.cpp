// End-to-end: fault injection meets power proportionality. Kills switches
// mid-simulation while tailored capacity is parked and checks that the
// degraded-mode policies recall capacity, that every flow completes, and
// that the no-fault configuration is bit-identical to a plain simulation.
#include <gtest/gtest.h>

#include "netpp/faults/degraded_mode.h"
#include "netpp/faults/experiment.h"
#include "netpp/faults/injector.h"
#include "netpp/topo/builders.h"
#include "netpp/traffic/generators.h"

namespace netpp {
namespace {

using namespace netpp::literals;

std::vector<FlowSpec> ring_workload(const BuiltTopology& topo) {
  MlTrafficConfig traffic;
  traffic.compute_time = Seconds{0.2};
  traffic.comm_allowance = Seconds{0.3};
  traffic.volume_per_host = Bits::from_gigabits(8.0);
  traffic.iterations = 4;
  return make_ml_training_traffic(topo.hosts, traffic).flows;
}

std::vector<TrafficDemand> ring_demands(const BuiltTopology& topo, Gbps rate) {
  std::vector<TrafficDemand> demands;
  for (std::size_t i = 0; i < topo.hosts.size(); ++i) {
    demands.push_back(TrafficDemand{
        topo.hosts[i], topo.hosts[(i + 1) % topo.hosts.size()], rate});
  }
  return demands;
}

TEST(FaultExperiment, ZeroFaultRunBitIdenticalToPlainSimulation) {
  // The acceptance bar for the whole fault layer: with an empty schedule,
  // the armed injector + controller machinery must not perturb the
  // simulation at all — completion times identical to the last bit.
  const auto topo = build_leaf_spine(4, 4, 4, 100_Gbps, 100_Gbps);
  const auto workload = ring_workload(topo);

  SimEngine plain_engine;
  Router plain_router{topo.graph};
  FlowSimulator plain{topo.graph, plain_router, plain_engine};
  for (const auto& spec : workload) plain.submit(spec);
  plain_engine.run();

  FaultExperimentConfig config;  // no tailoring, kNone policy
  config.degraded.policy = DegradedPolicy::kNone;
  const auto faulty =
      run_fault_experiment(topo, workload, FaultSchedule{}, config);

  ASSERT_EQ(faulty.fct.count(), plain.fct_stats().count());
  EXPECT_EQ(faulty.fct.mean(), plain.fct_stats().mean());
  EXPECT_EQ(faulty.fct.max(), plain.fct_stats().max());
  EXPECT_EQ(faulty.report.availability, 1.0);
  EXPECT_EQ(faulty.report.stranded_demand_gbit_seconds, 0.0);
  EXPECT_EQ(faulty.report.faults_injected, 0u);
}

TEST(FaultExperiment, ZeroFaultRowIdenticalAcrossRepeatedRuns) {
  // Same inputs -> bit-identical outputs (the sweep's determinism claim).
  const auto topo = build_leaf_spine(2, 2, 2, 100_Gbps, 100_Gbps);
  const auto workload = ring_workload(topo);
  FaultExperimentConfig config;
  config.tailor = true;
  config.demands = ring_demands(topo, 20_Gbps);
  const auto a = run_fault_experiment(topo, workload, FaultSchedule{}, config);
  const auto b = run_fault_experiment(topo, workload, FaultSchedule{}, config);
  EXPECT_EQ(a.fct.mean(), b.fct.mean());
  EXPECT_EQ(a.report.energy.value(), b.report.energy.value());
  EXPECT_EQ(a.tailoring.powered_off, b.tailoring.powered_off);
}

/// Kills the one spine the tailoring left powered, mid-communication.
class KillPoweredSpine : public ::testing::Test {
 protected:
  void SetUp() override {
    topo_ = build_leaf_spine(2, 2, 2, 100_Gbps, 100_Gbps);
    config_.strand_unroutable = true;
  }

  /// Runs the scenario under `policy` and returns the controller for
  /// inspection. All flows must complete.
  struct Run {
    std::size_t completed = 0;
    std::size_t submitted = 0;
    std::size_t stranded_at_end = 0;
    std::size_t parked_initially = 0;
    std::size_t emergency_wakes = 0;
    std::size_t retailor_passes = 0;
    std::vector<double> strand_durations;
    Seconds end{};
  };

  Run run_policy(DegradedPolicy policy, double min_headroom = 0.0) {
    const auto backend = make_backend(topo_.graph, BackendConfig{}, config_);

    DegradedModeConfig degraded;
    degraded.policy = policy;
    degraded.min_headroom = min_headroom;
    degraded.wake_latency = Seconds::from_milliseconds(50.0);
    DegradedModeController controller{*backend, topo_,
                                      ring_demands(topo_, 20_Gbps), degraded};
    const TailorResult tailored = controller.tailor_initial();
    EXPECT_TRUE(tailored.feasible);
    EXPECT_FALSE(tailored.powered_off.empty())
        << "tailoring must park at least one spine for this scenario";

    // Kill every spine that is still powered, mid-run: only the parked
    // (tailored-away) capacity can absorb the failure.
    FaultSchedule schedule;
    for (NodeId sw : tailored.powered_on) {
      if (topo_.graph.node(sw).tier == 2) {  // spine tier
        FaultSpec f;
        f.kind = FaultKind::kSwitchDown;
        f.node = sw;
        f.at = Seconds{0.25};
        f.recover_at = Seconds{30.0};  // repair far after the workload ends
        schedule.faults.push_back(f);
      }
    }
    EXPECT_FALSE(schedule.empty());
    FaultInjector injector{*backend, schedule};
    injector.set_listener(controller.listener());
    injector.arm();

    const auto workload = ring_workload(topo_);
    for (const auto& spec : workload) backend->submit(spec);
    backend->run();

    Run result;
    result.completed = backend->completed().size();
    result.submitted = workload.size();
    result.stranded_at_end = backend->stranded_flows();
    result.parked_initially = tailored.powered_off.size();
    result.emergency_wakes = controller.emergency_wakes();
    result.retailor_passes = controller.retailor_passes();
    result.strand_durations = backend->strand_durations();
    result.end = backend->now();
    return result;
  }

  BuiltTopology topo_;
  FlowSimulator::Config config_;
};

TEST_F(KillPoweredSpine, EmergencyWakeAllRecallsParkedCapacity) {
  const Run run = run_policy(DegradedPolicy::kEmergencyWakeAll);
  EXPECT_GE(run.emergency_wakes, 1u);
  // Every flow completes: cross-leaf traffic resumes over the woken spine.
  EXPECT_EQ(run.completed, run.submitted);
  EXPECT_EQ(run.stranded_at_end, 0u);
  // Any stranding lasted about the wake latency, not the 30 s repair time.
  for (double d : run.strand_durations) EXPECT_LT(d, 0.1);
}

TEST_F(KillPoweredSpine, RetailorRecallsParkedCapacity) {
  const Run run = run_policy(DegradedPolicy::kRetailor);
  EXPECT_GE(run.retailor_passes, 1u);
  EXPECT_GE(run.emergency_wakes, 1u);
  EXPECT_EQ(run.completed, run.submitted);
  EXPECT_EQ(run.stranded_at_end, 0u);
  for (double d : run.strand_durations) EXPECT_LT(d, 0.1);
}

TEST_F(KillPoweredSpine, NoPolicyStrandsUntilTheWorkloadCannotFinish) {
  // Baseline: without a recall policy the cross-leaf flows stay stranded
  // until the (late) repair — the failure mode the policies exist to fix.
  const Run run = run_policy(DegradedPolicy::kNone);
  EXPECT_EQ(run.emergency_wakes, 0u);
  EXPECT_EQ(run.retailor_passes, 0u);
  // The repair at t=30 eventually resumes them (no flow is lost forever).
  EXPECT_EQ(run.completed, run.submitted);
  EXPECT_GE(run.end.value(), 30.0);
}

TEST(DegradedMode, ExcessHeadroomKeepsWholeFabricPowered) {
  // The min_headroom guardrail: when the inflated demands exceed what the
  // tailored fabric could ever satisfy, tailoring declares infeasible and
  // parks nothing — headroom trades energy for resilience, never the
  // other way around.
  const auto topo = build_leaf_spine(2, 2, 2, 100_Gbps, 100_Gbps);
  FlowSimulator::Config sim_config;
  sim_config.strand_unroutable = true;
  const auto backend = make_backend(topo.graph, BackendConfig{}, sim_config);

  DegradedModeConfig degraded;
  degraded.min_headroom = 5.0;  // 20G ring inflated to 120G > any link
  DegradedModeController controller{*backend, topo, ring_demands(topo, 20_Gbps),
                                    degraded};
  const TailorResult tailored = controller.tailor_initial();
  EXPECT_FALSE(tailored.feasible);
  EXPECT_TRUE(tailored.powered_off.empty());
  EXPECT_EQ(controller.powered_switches(), topo.switches.size());
}

}  // namespace
}  // namespace netpp
