// Unit tests for the unified power-state timeline: transition semantics
// (wake latency, cancelable wakes, min-dwell, hysteresis) and the shared
// energy/residency/level integrator every §4 mechanism now runs on.
#include "netpp/power/state_timeline.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace netpp {
namespace {

TEST(StateTimeline, ConstructorValidates) {
  EXPECT_THROW(PowerStateTimeline(0, TransitionRules{}), std::invalid_argument);
  EXPECT_THROW(PowerStateTimeline(2, TransitionRules{Seconds{-1.0}}),
               std::invalid_argument);
  EXPECT_THROW(
      PowerStateTimeline(2, TransitionRules{Seconds{0.0}, Seconds{-1.0}}),
      std::invalid_argument);
  EXPECT_THROW(
      PowerStateTimeline(2, TransitionRules{Seconds{0.0}, Seconds{0.0}, -0.1}),
      std::invalid_argument);
}

TEST(StateTimeline, StartsFullyOnAtNominalLevel) {
  const PowerStateTimeline timeline{3, TransitionRules{}};
  EXPECT_EQ(timeline.count(PowerState::kOn), 3);
  EXPECT_EQ(timeline.provisioned(), 3);
  EXPECT_DOUBLE_EQ(timeline.track(0).level, 1.0);
  EXPECT_EQ(timeline.transitions(), 0u);
}

TEST(StateTimeline, WakePassesThroughWakingState) {
  PowerStateTimeline timeline{2, TransitionRules{Seconds{0.5}}};
  timeline.request_off(1);
  EXPECT_EQ(timeline.count(PowerState::kOff), 1);
  EXPECT_EQ(timeline.park_transitions(), 1u);

  timeline.advance_to(Seconds{1.0});
  timeline.request_on(1);
  EXPECT_EQ(timeline.track(1).state, PowerState::kWaking);
  EXPECT_EQ(timeline.provisioned(), 2);
  EXPECT_EQ(timeline.count(PowerState::kOn), 1);
  EXPECT_DOUBLE_EQ(timeline.next_event(), 1.5);

  timeline.advance_to(Seconds{1.5});
  EXPECT_EQ(timeline.track(1).state, PowerState::kOn);
  EXPECT_EQ(timeline.wake_transitions(), 1u);
}

TEST(StateTimeline, ZeroLatencyWakesImmediately) {
  PowerStateTimeline timeline{2, TransitionRules{}};
  timeline.request_off(0);
  timeline.request_on(0);
  EXPECT_EQ(timeline.track(0).state, PowerState::kOn);
  EXPECT_EQ(timeline.wake_transitions(), 1u);
}

TEST(StateTimeline, RequestOnIsIdempotentWhileOnOrWaking) {
  PowerStateTimeline timeline{1, TransitionRules{Seconds{0.5}}};
  timeline.request_on(0);  // already on
  EXPECT_EQ(timeline.wake_transitions(), 0u);
  timeline.request_off(0);
  timeline.request_on(0);
  timeline.request_on(0);  // already waking
  EXPECT_EQ(timeline.wake_transitions(), 1u);
}

TEST(StateTimeline, CancelLastWakeNeverHappened) {
  PowerStateTimeline timeline{3, TransitionRules{Seconds{0.5}}};
  timeline.request_off(1);
  timeline.request_off(2);
  timeline.request_on(1);
  timeline.request_on(2);
  EXPECT_EQ(timeline.wake_transitions(), 2u);

  // Cancels the most recent wake (component 2), restoring kOff.
  EXPECT_TRUE(timeline.cancel_last_wake());
  EXPECT_EQ(timeline.track(2).state, PowerState::kOff);
  EXPECT_EQ(timeline.track(1).state, PowerState::kWaking);
  EXPECT_EQ(timeline.wake_transitions(), 1u);

  EXPECT_TRUE(timeline.cancel_last_wake());
  EXPECT_FALSE(timeline.cancel_last_wake());
  EXPECT_EQ(timeline.wake_transitions(), 0u);
}

TEST(StateTimeline, ParkingAWakingComponentThrows) {
  PowerStateTimeline timeline{1, TransitionRules{Seconds{0.5}}};
  timeline.request_off(0);
  timeline.request_on(0);
  EXPECT_THROW(timeline.request_off(0), std::logic_error);
}

TEST(StateTimeline, WakeOneAndParkOnePickEnds) {
  PowerStateTimeline timeline{3, TransitionRules{}};
  // park_one parks the highest-index powered component...
  EXPECT_EQ(timeline.park_one(), 2);
  EXPECT_EQ(timeline.park_one(), 1);
  // ...and wake_one wakes the lowest-index parked one.
  EXPECT_EQ(timeline.wake_one(), 1);
  EXPECT_EQ(timeline.wake_one(), 2);
  EXPECT_EQ(timeline.wake_one(), -1);  // none parked
}

TEST(StateTimeline, UpwardLevelMovesAlwaysApply) {
  PowerStateTimeline timeline{1,
                              TransitionRules{Seconds{0.0}, Seconds{10.0}, 0.2}};
  timeline.set_level(0, 0.5);
  EXPECT_EQ(timeline.level_transitions(), 0u);  // set_level is not counted
  // Upward: applies despite dwell and hysteresis.
  EXPECT_TRUE(timeline.request_level(0, 0.6));
  EXPECT_EQ(timeline.level_transitions(), 1u);
}

TEST(StateTimeline, DownwardLevelMovesHonorHysteresis) {
  PowerStateTimeline timeline{1, TransitionRules{Seconds{0.0}, Seconds{0.0}, 0.1}};
  // Inside the band: ignored.
  EXPECT_FALSE(timeline.request_level(0, 0.95));
  EXPECT_DOUBLE_EQ(timeline.track(0).level, 1.0);
  // Beyond the band: applied.
  EXPECT_TRUE(timeline.request_level(0, 0.5));
  EXPECT_DOUBLE_EQ(timeline.track(0).level, 0.5);
}

TEST(StateTimeline, DownwardLevelMovesHonorDwell) {
  PowerStateTimeline timeline{1,
                              TransitionRules{Seconds{0.0}, Seconds{5.0}, 0.0}};
  // Anchor starts at t=0; the lower level has not been sufficient yet.
  EXPECT_FALSE(timeline.request_level(0, 0.5));
  timeline.advance_to(Seconds{4.0});
  EXPECT_FALSE(timeline.request_level(0, 0.5));
  timeline.advance_to(Seconds{5.0});
  EXPECT_TRUE(timeline.request_level(0, 0.5));

  // An equal request refreshes the anchor, restarting the dwell clock.
  timeline.advance_to(Seconds{8.0});
  EXPECT_FALSE(timeline.request_level(0, 0.25));
  timeline.advance_to(Seconds{9.0});
  EXPECT_FALSE(timeline.request_level(0, 0.5));  // equal -> refresh
  timeline.advance_to(Seconds{13.0});
  EXPECT_FALSE(timeline.request_level(0, 0.25));  // only 4 s since refresh
  timeline.advance_to(Seconds{14.0});
  EXPECT_TRUE(timeline.request_level(0, 0.25));
}

TEST(StateTimeline, IntegratesEnergyResidencyAndLevel) {
  PowerStateTimeline timeline{2, TransitionRules{}};
  timeline.set_power_model(
      [](std::span<const ComponentTrack> tracks) {
        double watts = 0.0;
        for (const auto& track : tracks) {
          watts += track.state == PowerState::kOn ? 10.0 : 0.0;
        }
        return Watts{watts};
      },
      [](std::span<const ComponentTrack> tracks) {
        return Watts{20.0 * static_cast<double>(tracks.size())};
      });

  timeline.advance_to(Seconds{1.0});  // both on: 20 W actual, 40 W baseline
  timeline.request_off(1);
  timeline.advance_to(Seconds{3.0});  // one on: 10 W actual

  EXPECT_DOUBLE_EQ(timeline.energy().value(), 20.0 + 2.0 * 10.0);
  EXPECT_DOUBLE_EQ(timeline.baseline_energy().value(), 3.0 * 40.0);
  EXPECT_DOUBLE_EQ(timeline.residency(PowerState::kOn).value(),
                   2.0 * 1.0 + 1.0 * 2.0);
  EXPECT_DOUBLE_EQ(timeline.residency(PowerState::kOff).value(), 2.0);
  // Levels stayed at 1.0 throughout: the mean-level integral is the elapsed
  // time.
  EXPECT_DOUBLE_EQ(timeline.mean_level_time(), 3.0);
  EXPECT_EQ(timeline.now().value(), 3.0);
}

TEST(StateTimeline, AdvanceBackwardsThrows) {
  PowerStateTimeline timeline{1, TransitionRules{}};
  timeline.advance_to(Seconds{2.0});
  EXPECT_THROW(timeline.advance_to(Seconds{1.0}), std::invalid_argument);
}

TEST(StateTimeline, StartsAtConfiguredTime) {
  PowerStateTimeline timeline{1, TransitionRules{Seconds{0.5}}, Seconds{10.0}};
  EXPECT_DOUBLE_EQ(timeline.now().value(), 10.0);
  timeline.request_off(0);
  timeline.request_on(0);
  EXPECT_DOUBLE_EQ(timeline.next_event(), 10.5);
}

}  // namespace
}  // namespace netpp
