// Snapshot format contract: exact round-tripping (doubles bitwise, arrays,
// strings), and typed "SnapshotReader: constraint" rejection of every
// malformed input — truncation, corruption, version skew, wrong section
// order, unconsumed payload — never UB. Plus the InvariantAuditor's
// check-registry semantics.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "netpp/state/auditor.h"
#include "netpp/state/snapshot.h"

namespace netpp::state {
namespace {

std::vector<std::uint8_t> one_section_snapshot() {
  SnapshotWriter w;
  w.begin_section("demo");
  w.put_u32(7);
  w.put_f64(3.25);
  w.put_string("hello");
  w.end_section();
  return w.buffer();
}

TEST(Snapshot, ScalarsRoundTripBitwise) {
  SnapshotWriter w;
  w.begin_section("scalars");
  w.put_u8(0xab);
  w.put_bool(true);
  w.put_bool(false);
  w.put_u32(0xdeadbeef);
  w.put_u64(0x0123456789abcdefULL);
  w.put_i64(-42);
  w.put_string("§unicode✓");
  w.end_section();

  SnapshotReader r{w.buffer()};
  r.open_section("scalars");
  EXPECT_EQ(r.get_u8(), 0xab);
  EXPECT_TRUE(r.get_bool());
  EXPECT_FALSE(r.get_bool());
  EXPECT_EQ(r.get_u32(), 0xdeadbeefu);
  EXPECT_EQ(r.get_u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.get_i64(), -42);
  EXPECT_EQ(r.get_string(), "§unicode✓");
  r.close_section();
  EXPECT_TRUE(r.at_end());
}

TEST(Snapshot, DoublesRoundTripEveryBitPattern) {
  // The bit-identity guarantee hinges on these: -0.0, infinities, NaN
  // payloads, subnormals, and values that decimal text would round.
  const double values[] = {
      0.0,
      -0.0,
      std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity(),
      std::numeric_limits<double>::quiet_NaN(),
      std::numeric_limits<double>::denorm_min(),
      -std::numeric_limits<double>::denorm_min(),
      std::numeric_limits<double>::max(),
      std::numeric_limits<double>::epsilon(),
      0.1 + 0.2,  // != 0.3: must survive exactly
      1.0 / 3.0,
  };
  SnapshotWriter w;
  w.begin_section("doubles");
  for (double v : values) w.put_f64(v);
  w.end_section();

  SnapshotReader r{w.buffer()};
  r.open_section("doubles");
  for (double v : values) {
    const double got = r.get_f64();
    EXPECT_EQ(std::bit_cast<std::uint64_t>(got),
              std::bit_cast<std::uint64_t>(v));
  }
  r.close_section();
}

TEST(Snapshot, VectorsAndArraysRoundTrip) {
  const std::vector<std::uint8_t> u8s{1, 2, 255};
  const std::vector<std::uint32_t> u32s{0, 42, 0xffffffffu};
  const std::vector<std::uint64_t> u64s{1ULL << 63, 7};
  const std::vector<double> f64s{-1.5, 2.5e300, -0.0};
  SnapshotWriter w;
  w.begin_section("vecs");
  w.put_u8_vec(u8s);
  w.put_u32_vec(u32s);
  w.put_u64_vec(u64s);
  w.put_f64_vec(f64s);
  w.put_u32_array(u32s.data(), u32s.size());
  w.put_u8_array(u8s.data(), u8s.size());
  w.put_u8_array(nullptr, 0);  // empty arrays are legal
  w.end_section();

  SnapshotReader r{w.buffer()};
  r.open_section("vecs");
  EXPECT_EQ(r.get_u8_vec(), u8s);
  EXPECT_EQ(r.get_u32_vec(), u32s);
  EXPECT_EQ(r.get_u64_vec(), u64s);
  EXPECT_EQ(r.get_f64_vec(), f64s);
  std::vector<std::uint32_t> u32_out(u32s.size());
  r.get_u32_array(u32_out.data(), u32_out.size());
  EXPECT_EQ(u32_out, u32s);
  std::vector<std::uint8_t> u8_out(u8s.size());
  r.get_u8_array(u8_out.data(), u8_out.size());
  EXPECT_EQ(u8_out, u8s);
  r.get_u8_array(nullptr, 0);
  r.close_section();
}

TEST(Snapshot, ArrayCountMismatchIsTyped) {
  SnapshotWriter w;
  w.begin_section("s");
  const std::uint32_t three[] = {1, 2, 3};
  w.put_u32_array(three, 3);
  w.end_section();
  SnapshotReader r{w.buffer()};
  r.open_section("s");
  std::uint32_t out[2];
  EXPECT_THROW(r.get_u32_array(out, 2), std::invalid_argument);
}

TEST(Snapshot, MultipleSectionsReadInOrder) {
  SnapshotWriter w;
  w.begin_section("first");
  w.put_u32(1);
  w.end_section();
  w.begin_section("second");
  w.put_u32(2);
  w.end_section();

  SnapshotReader r{w.buffer()};
  r.open_section("first");
  EXPECT_EQ(r.get_u32(), 1u);
  r.close_section();
  r.open_section("second");
  EXPECT_EQ(r.get_u32(), 2u);
  r.close_section();
  EXPECT_TRUE(r.at_end());
}

TEST(Snapshot, WrongSectionNameRejected) {
  SnapshotReader r{one_section_snapshot()};
  EXPECT_THROW(r.open_section("other"), std::invalid_argument);
}

TEST(Snapshot, BadMagicRejected) {
  auto bytes = one_section_snapshot();
  bytes[0] ^= 0xff;
  EXPECT_THROW(SnapshotReader{bytes}, std::invalid_argument);
}

TEST(Snapshot, WrongVersionRejected) {
  auto bytes = one_section_snapshot();
  bytes[8] ^= 0xff;  // version u32 follows the 8-byte magic
  EXPECT_THROW(SnapshotReader{bytes}, std::invalid_argument);
}

TEST(Snapshot, EveryTruncationRejectedNotUB) {
  const auto bytes = one_section_snapshot();
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    std::vector<std::uint8_t> cut(bytes.begin(),
                                  bytes.begin() + static_cast<long>(len));
    EXPECT_THROW(
        {
          SnapshotReader r{std::move(cut)};
          r.open_section("demo");
          (void)r.get_u32();
          (void)r.get_f64();
          (void)r.get_string();
          r.close_section();
        },
        std::invalid_argument)
        << "truncated to " << len << " bytes";
  }
}

TEST(Snapshot, EverySingleByteCorruptionRejected) {
  // Any flipped payload/frame byte must surface as a typed error — either a
  // CRC mismatch, a frame validation failure, or a value-level constraint.
  const auto bytes = one_section_snapshot();
  for (std::size_t i = 12; i < bytes.size(); ++i) {  // past magic+version
    auto corrupt = bytes;
    corrupt[i] ^= 0x01;
    try {
      SnapshotReader r{std::move(corrupt)};
      r.open_section("demo");
      (void)r.get_u32();
      (void)r.get_f64();
      (void)r.get_string();
      r.close_section();
      // A flip inside the f64 payload changes the value but stays a valid
      // frame only if the CRC also matched — impossible for 1-bit flips.
      FAIL() << "corruption at byte " << i << " was not detected";
    } catch (const std::invalid_argument&) {
      // expected
    }
  }
}

TEST(Snapshot, TrailingGarbageRejected) {
  auto bytes = one_section_snapshot();
  bytes.push_back(0x00);
  SnapshotReader r{std::move(bytes)};
  r.open_section("demo");
  (void)r.get_u32();
  (void)r.get_f64();
  (void)r.get_string();
  r.close_section();
  EXPECT_FALSE(r.at_end());
  EXPECT_THROW(r.open_section("next"), std::invalid_argument);
}

TEST(Snapshot, UnconsumedPayloadRejectedOnClose) {
  SnapshotReader r{one_section_snapshot()};
  r.open_section("demo");
  (void)r.get_u32();
  EXPECT_THROW(r.close_section(), std::invalid_argument);
}

TEST(Snapshot, ReadingPastSectionEndRejected) {
  SnapshotReader r{one_section_snapshot()};
  r.open_section("demo");
  (void)r.get_u32();
  (void)r.get_f64();
  (void)r.get_string();
  EXPECT_THROW((void)r.get_u64(), std::invalid_argument);
}

TEST(Snapshot, WriterMisuseIsLogicError) {
  SnapshotWriter w;
  EXPECT_THROW(w.put_u32(1), std::logic_error);  // no section open
  w.begin_section("s");
  EXPECT_THROW(w.begin_section("t"), std::logic_error);  // nested
  EXPECT_THROW((void)w.buffer(), std::logic_error);      // still open
  w.end_section();
  EXPECT_THROW(w.end_section(), std::logic_error);  // nothing open
}

TEST(Snapshot, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/snapshot_test.nppsnap";
  SnapshotWriter w;
  w.begin_section("file");
  w.put_f64(-0.0);
  w.put_u64(99);
  w.end_section();
  w.write_file(path);

  SnapshotReader r = SnapshotReader::from_file(path);
  r.open_section("file");
  EXPECT_EQ(std::bit_cast<std::uint64_t>(r.get_f64()),
            std::bit_cast<std::uint64_t>(-0.0));
  EXPECT_EQ(r.get_u64(), 99u);
  r.close_section();
  std::remove(path.c_str());
}

TEST(Snapshot, MissingFileRejected) {
  EXPECT_THROW(SnapshotReader::from_file("/nonexistent/path.nppsnap"),
               std::invalid_argument);
}

TEST(Snapshot, Crc32MatchesKnownVector) {
  // The IEEE 802.3 check value for "123456789".
  const char* s = "123456789";
  EXPECT_EQ(crc32(s, 9), 0xcbf43926u);
  // Chained computation equals one-shot.
  EXPECT_EQ(crc32(s + 4, 5, crc32(s, 4)), crc32(s, 9));
}

TEST(InvariantAuditor, RunsChecksInOrderAndCounts) {
  InvariantAuditor auditor;
  std::vector<int> order;
  auditor.add("a", [&order] { order.push_back(1); });
  auditor.add("b", [&order] { order.push_back(2); });
  EXPECT_EQ(auditor.num_checks(), 2u);
  EXPECT_EQ(auditor.check_names(), (std::vector<std::string>{"a", "b"}));
  auditor.audit();
  auditor.audit();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 1, 2}));
  EXPECT_EQ(auditor.audits_passed(), 2u);
}

TEST(InvariantAuditor, FailurePropagatesAndDoesNotCountAsPassed) {
  InvariantAuditor auditor;
  auditor.add("ok", [] {});
  auditor.add("bad", [] {
    throw std::invalid_argument("Component: books must balance");
  });
  EXPECT_THROW(auditor.audit(), std::invalid_argument);
  EXPECT_EQ(auditor.audits_passed(), 0u);
}

TEST(InvariantAuditor, RejectsUncallableCheck) {
  InvariantAuditor auditor;
  EXPECT_THROW(auditor.add("null", std::function<void()>{}),
               std::invalid_argument);
}

}  // namespace
}  // namespace netpp::state
