// Cross-cutting invariants: conservation, determinism, and stress behaviour
// of the simulation substrate under randomized (but seeded) inputs.
#include <gtest/gtest.h>

#include "netpp/netsim/fairshare.h"
#include "netpp/netsim/flowsim.h"
#include "netpp/sim/random.h"
#include "netpp/topo/builders.h"

namespace netpp {
namespace {

using namespace netpp::literals;

// --- Flow simulator -------------------------------------------------------

std::vector<FlowSpec> random_flows(const BuiltTopology& topo, int count,
                                   std::uint64_t seed) {
  Rng rng{seed};
  std::vector<FlowSpec> flows;
  for (int i = 0; i < count; ++i) {
    FlowSpec f;
    const auto a = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(topo.hosts.size()) - 1));
    auto b = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(topo.hosts.size()) - 2));
    if (b >= a) ++b;
    f.src = topo.hosts[a];
    f.dst = topo.hosts[b];
    f.size = Bits::from_gigabits(rng.uniform(0.1, 5.0));
    f.start = Seconds{rng.uniform(0.0, 2.0)};
    f.tag = static_cast<std::uint64_t>(i);
    flows.push_back(f);
  }
  return flows;
}

class FlowSimInvariants : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FlowSimInvariants, AllBitsAreConserved) {
  const auto topo = build_fat_tree(4, 100_Gbps);
  SimEngine engine;
  Router router{topo.graph};
  FlowSimulator sim{topo.graph, router, engine};
  const auto flows = random_flows(topo, 80, GetParam());
  double injected_bits = 0.0;
  for (const auto& f : flows) {
    sim.submit(f);
    injected_bits += f.size.value();
  }
  engine.run();
  ASSERT_EQ(sim.completed().size(), flows.size());
  double completed_bits = 0.0;
  for (const auto& r : sim.completed()) completed_bits += r.spec.size.value();
  EXPECT_NEAR(completed_bits, injected_bits, injected_bits * 1e-12);
  EXPECT_EQ(sim.active_flows(), 0u);
}

TEST_P(FlowSimInvariants, CompletionsAreCausal) {
  const auto topo = build_fat_tree(4, 100_Gbps);
  SimEngine engine;
  Router router{topo.graph};
  FlowSimulator sim{topo.graph, router, engine};
  for (const auto& f : random_flows(topo, 60, GetParam())) sim.submit(f);
  engine.run();
  for (const auto& r : sim.completed()) {
    // A flow cannot finish before its start plus its line-rate service time
    // (access links are 100 G).
    const double min_fct = r.spec.size.value() / 100e9;
    EXPECT_GE(r.fct().value(), min_fct - 1e-9);
  }
  // Completion list is ordered by finish time.
  for (std::size_t i = 1; i < sim.completed().size(); ++i) {
    EXPECT_GE(sim.completed()[i].finished.value(),
              sim.completed()[i - 1].finished.value());
  }
}

TEST_P(FlowSimInvariants, RunsAreDeterministic) {
  const auto run_once = [&](std::uint64_t seed) {
    const auto topo = build_fat_tree(4, 100_Gbps);
    SimEngine engine;
    Router router{topo.graph};
    FlowSimulator sim{topo.graph, router, engine};
    for (const auto& f : random_flows(topo, 50, seed)) sim.submit(f);
    engine.run();
    std::vector<std::pair<std::uint64_t, double>> out;
    for (const auto& r : sim.completed()) {
      out.emplace_back(r.spec.tag, r.finished.value());
    }
    return out;
  };
  const auto a = run_once(GetParam());
  const auto b = run_once(GetParam());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].first, b[i].first);
    EXPECT_DOUBLE_EQ(a[i].second, b[i].second);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlowSimInvariants,
                         ::testing::Values(1u, 7u, 42u, 1337u));

// --- Fair share ------------------------------------------------------------

class FairShareInvariants : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FairShareInvariants, FeasibleAndMaximal) {
  Rng rng{GetParam()};
  const std::size_t num_res = 12;
  std::vector<double> caps(num_res);
  for (auto& c : caps) c = rng.uniform(10.0, 100.0);

  std::vector<FairShareFlow> flows;
  for (int f = 0; f < 30; ++f) {
    FairShareFlow flow;
    const int hops = static_cast<int>(rng.uniform_int(1, 4));
    for (int h = 0; h < hops; ++h) {
      const auto r = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(num_res) - 1));
      if (std::find(flow.resources.begin(), flow.resources.end(), r) ==
          flow.resources.end()) {
        flow.resources.push_back(r);
      }
    }
    if (rng.bernoulli(0.3)) flow.cap = rng.uniform(1.0, 20.0);
    flows.push_back(std::move(flow));
  }

  const auto rates = max_min_fair_rates(flows, caps);

  // Feasibility.
  std::vector<double> used(num_res, 0.0);
  for (std::size_t f = 0; f < flows.size(); ++f) {
    EXPECT_GE(rates[f], 0.0);
    if (flows[f].cap > 0.0) {
      EXPECT_LE(rates[f], flows[f].cap + 1e-9);
    }
    for (auto r : flows[f].resources) used[r] += rates[f];
  }
  for (std::size_t r = 0; r < num_res; ++r) {
    EXPECT_LE(used[r], caps[r] + 1e-9) << "resource " << r;
  }

  // Maximality: every flow is pinned by its cap or by a saturated resource.
  for (std::size_t f = 0; f < flows.size(); ++f) {
    if (flows[f].cap > 0.0 && rates[f] >= flows[f].cap - 1e-9) continue;
    bool pinned = false;
    for (auto r : flows[f].resources) {
      if (used[r] >= caps[r] - 1e-6) pinned = true;
    }
    EXPECT_TRUE(pinned) << "flow " << f << " could still grow";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FairShareInvariants,
                         ::testing::Values(3u, 11u, 99u, 12345u, 777u));

// --- Engine stress ----------------------------------------------------------

TEST(EngineStress, TenThousandRandomEventsExecuteInOrder) {
  SimEngine engine;
  Rng rng{2024};
  double last = -1.0;
  int executed = 0;
  for (int i = 0; i < 10000; ++i) {
    engine.schedule_at(Seconds{rng.uniform(0.0, 100.0)}, [&, i] {
      const double now = engine.now().value();
      EXPECT_GE(now, last);
      last = now;
      ++executed;
      // Occasionally spawn follow-up work.
      if (i % 97 == 0) {
        engine.schedule_after(Seconds{0.5}, [&] { ++executed; });
      }
    });
  }
  engine.run();
  EXPECT_GE(executed, 10000);
  EXPECT_TRUE(engine.empty());
}

TEST(EngineStress, MassCancellation) {
  SimEngine engine;
  std::vector<SimEngine::EventId> ids;
  int executed = 0;
  for (int i = 0; i < 5000; ++i) {
    ids.push_back(engine.schedule_at(Seconds{static_cast<double>(i)},
                                     [&] { ++executed; }));
  }
  // Cancel every other event.
  for (std::size_t i = 0; i < ids.size(); i += 2) {
    EXPECT_TRUE(engine.cancel(ids[i]));
  }
  EXPECT_EQ(engine.run(), 2500u);
  EXPECT_EQ(executed, 2500);
}

}  // namespace
}  // namespace netpp
