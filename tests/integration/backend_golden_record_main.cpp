// Re-prints the expectations for backend_equivalence_test.cpp as
// ready-to-paste C++ (hexfloat doubles, exact integers). Recorded once
// against the pre-backend-seam drivers; run again only after a deliberate
// behavior change — the suite's whole point is that the backend refactor
// does NOT change these values. Not registered with CMake; compile by hand
// against the tree under test.
#include <cstdio>

#include "backend_golden_inputs.h"

namespace {

using namespace netpp;

void field(const char* name, double v) {
  std::printf("  %s = %a;  // %.17g\n", name, v, v);
}
void field(const char* name, std::size_t v) {
  std::printf("  %s = %zu;\n", name, v);
}

void print_composite(const char* tag, const CompositeReport& r) {
  std::printf("{  // %s\n", tag);
  field("e.horizon_s", r.horizon.value());
  field("e.baseline_j", r.baseline_energy.value());
  field("e.energy_j", r.energy.value());
  field("e.combined_savings", r.combined_savings);
  field("e.best_single_savings", r.best_single_savings);
  field("e.singles", r.singles.size());
  for (const auto& single : r.singles) {
    std::printf("  // single %s\n", single.name.c_str());
    field("  energy_j", single.energy.value());
    field("  savings", single.savings);
  }
  field("e.tailored_off", r.tailoring.powered_off.size());
  field("e.wakes", r.wake_transitions);
  field("e.parks", r.park_transitions);
  field("e.levels", r.level_transitions);
  field("e.dropped_bits", r.dropped.value());
  field("e.average_power_w", r.average_power.value());
  field("e.baseline_power_w", r.baseline_average_power.value());
  std::printf("}\n");
}

void print_fault(const char* tag, const FaultExperimentResult& r) {
  std::printf("{  // %s\n", tag);
  field("e.availability", r.report.availability);
  field("e.completion_rate", r.report.completion_rate);
  field("e.stranded_gbit_s", r.report.stranded_demand_gbit_seconds);
  field("e.mean_recovery_s", r.report.mean_recovery.value());
  field("e.p99_recovery_s", r.report.p99_recovery.value());
  field("e.energy_delta", r.report.energy_delta);
  field("e.faults_injected", r.report.faults_injected);
  field("e.flows_rerouted", static_cast<std::size_t>(r.report.flows_rerouted));
  field("e.strand_events", static_cast<std::size_t>(r.report.strand_events));
  field("e.emergency_wakes", r.emergency_wakes);
  field("e.retailor_passes", r.retailor_passes);
  field("e.powered_at_end", r.powered_at_end);
  field("e.end_s", r.end.value());
  field("e.fct_count", r.fct.count());
  field("e.fct_mean_s", r.fct.mean());
  field("e.fct_max_s", r.fct.max());
  field("e.tailored_off", r.tailoring.powered_off.size());
  std::printf("}\n");
}

}  // namespace

int main() {
  using namespace netpp;
  {
    const BuiltTopology topo = golden::composite_topology();
    const golden::CompositeScenario s = golden::composite_scenario(topo);
    print_composite("composite full stack",
                    run_composite(topo, s.workload, s.demands, s.horizon,
                                  s.config));
  }
  {
    const BuiltTopology topo = golden::fault_topology();
    const golden::FaultScenario s =
        golden::fault_scenario(topo, DegradedPolicy::kRetailor);
    print_fault("faults re-tailor",
                run_fault_experiment(topo, s.workload, s.schedule, s.config));
  }
  {
    const BuiltTopology topo = golden::fault_topology();
    const golden::FaultScenario s =
        golden::fault_scenario(topo, DegradedPolicy::kEmergencyWakeAll);
    print_fault("faults wake-all",
                run_fault_experiment(topo, s.workload, s.schedule, s.config));
  }
  return 0;
}
