// End-to-end integration: ML training traffic over a simulated fat tree,
// load traces recorded per switch, and the §4 mechanisms evaluated on those
// traces. Verifies the cross-module story the paper tells:
//   - the network idles most of the time under phase-structured ML traffic;
//   - every mechanism saves energy on that workload;
//   - pipeline parking (off = leakage gone) beats rate adaptation
//     (clock scaling only) at deep idle, matching §4.4's motivation;
//   - OCS tailoring can power off a large share of an over-provisioned
//     fabric for a placement-friendly workload.
#include <gtest/gtest.h>

#include "netpp/mech/ocs.h"
#include "netpp/mech/parking.h"
#include "netpp/mech/rateadapt.h"
#include "netpp/mech/trace_recorder.h"
#include "netpp/topo/builders.h"
#include "netpp/traffic/generators.h"

namespace netpp {
namespace {

using namespace netpp::literals;

class MlClusterIntegration : public ::testing::Test {
 protected:
  void SetUp() override {
    topo_ = build_fat_tree(4, 100_Gbps);
    router_ = std::make_unique<Router>(topo_->graph);
    sim_ = std::make_unique<FlowSimulator>(topo_->graph, *router_, engine_);

    MlTrafficConfig cfg;
    cfg.compute_time = 0.9_s;
    cfg.comm_allowance = 0.1_s;
    cfg.iterations = 4;
    cfg.volume_per_host = Bits::from_gigabits(2.0);
    traffic_ = make_ml_training_traffic(topo_->hosts, cfg);

    recorder_ =
        std::make_unique<NodeLoadRecorder>(*sim_, topo_->switches);
    sim_->set_load_listener(recorder_->listener());
    recorder_->sample(0.0_s);
    for (const auto& flow : traffic_.flows) sim_->submit(flow);
    engine_.run();
    horizon_ = Seconds{4.0};
    engine_.run_until(horizon_);
  }

  std::optional<BuiltTopology> topo_;
  SimEngine engine_;
  std::unique_ptr<Router> router_;
  std::unique_ptr<FlowSimulator> sim_;
  std::unique_ptr<NodeLoadRecorder> recorder_;
  MlTraffic traffic_;
  Seconds horizon_{};
};

TEST_F(MlClusterIntegration, AllFlowsComplete) {
  EXPECT_EQ(sim_->completed().size(), traffic_.flows.size());
  EXPECT_EQ(sim_->unroutable_flows(), 0u);
  EXPECT_EQ(sim_->active_flows(), 0u);
}

TEST_F(MlClusterIntegration, NetworkIdlesMostOfTheTime) {
  // The paper's premise: with a 10%-ish communication ratio the network is
  // idle ~90% of the time.
  const NodeId edge = topo_->graph.nodes_at_tier(1).front();
  const auto trace = recorder_->aggregate_trace(edge, horizon_);
  double busy = 0.0;
  for (std::size_t i = 0; i < trace.times.size(); ++i) {
    const double seg_end = (i + 1 < trace.times.size())
                               ? trace.times[i + 1].value()
                               : trace.end.value();
    if (trace.loads[i] > 0.0) busy += seg_end - trace.times[i].value();
  }
  EXPECT_LT(busy / horizon_.value(), 0.35);
  EXPECT_GT(busy, 0.0);
}

TEST_F(MlClusterIntegration, EveryMechanismSavesEnergyOnMlTraffic) {
  const NodeId edge = topo_->graph.nodes_at_tier(1).front();
  const SwitchPowerModel model;

  const auto pipe_trace =
      recorder_->pipeline_trace(edge, model.config().num_pipelines, horizon_);
  RateAdaptConfig ra_cfg;
  ra_cfg.model = model;
  const auto global =
      simulate_rate_adaptation(pipe_trace, ra_cfg, RateAdaptMode::kGlobalAsic);
  const auto per_pipe = simulate_rate_adaptation(pipe_trace, ra_cfg,
                                                 RateAdaptMode::kPerPipeline);
  EXPECT_GT(global.savings_vs_none, 0.0);
  EXPECT_GT(per_pipe.savings_vs_none, 0.0);
  EXPECT_GE(per_pipe.savings_vs_none, global.savings_vs_none - 1e-9);

  const auto agg_trace = recorder_->aggregate_trace(edge, horizon_);
  ParkingConfig park_cfg;
  park_cfg.model = model;
  park_cfg.switch_capacity = Gbps{4 * 100.0};  // 4 ports at 100 G
  const auto parked = simulate_parking_reactive(agg_trace, park_cfg);
  EXPECT_GT(parked.savings_vs_all_on, 0.0);
}

TEST_F(MlClusterIntegration, ParkingBeatsRateAdaptationAtDeepIdle) {
  // §4.4: "Rate adaptation keeps most components powered on. To get larger
  // savings, we must turn entire pipelines off."
  const NodeId edge = topo_->graph.nodes_at_tier(1).front();
  const SwitchPowerModel model;
  RateAdaptConfig ra_cfg;
  ra_cfg.model = model;
  const auto adapted = simulate_rate_adaptation(
      recorder_->pipeline_trace(edge, model.config().num_pipelines, horizon_),
      ra_cfg, RateAdaptMode::kPerPipeline);

  ParkingConfig park_cfg;
  park_cfg.model = model;
  park_cfg.switch_capacity = Gbps{4 * 100.0};
  const auto parked = simulate_parking_reactive(
      recorder_->aggregate_trace(edge, horizon_), park_cfg);

  EXPECT_GT(parked.savings_vs_all_on, adapted.savings_vs_none);
}

TEST_F(MlClusterIntegration, PredictiveParkingUsesTheSchedule) {
  const NodeId edge = topo_->graph.nodes_at_tier(1).front();
  const SwitchPowerModel model;
  ParkingConfig cfg;
  cfg.model = model;
  cfg.switch_capacity = Gbps{4 * 100.0};
  cfg.wake_latency = Seconds::from_milliseconds(20.0);

  const auto agg = recorder_->aggregate_trace(edge, horizon_);
  // Forecast straight from the generator's schedule: comm bursts need full
  // capacity, compute phases need none.
  std::vector<LoadForecast> forecast;
  for (const auto& w : traffic_.schedule) {
    forecast.push_back(LoadForecast{w.compute_begin, 0.0});
    forecast.push_back(LoadForecast{w.comm_begin, 1.0});
  }
  const auto predictive = simulate_parking_predictive(agg, forecast, cfg);
  const auto reactive = simulate_parking_reactive(agg, cfg);

  EXPECT_GT(predictive.savings_vs_all_on, 0.0);
  // Pre-waking from the schedule avoids (or at least never worsens) loss.
  EXPECT_LE(predictive.dropped.value(), reactive.dropped.value() + 1e-9);
}

TEST_F(MlClusterIntegration, OcsTailoringParksFabricForRingTraffic) {
  // Ring all-reduce between adjacent hosts mostly stays below the cores.
  std::vector<TrafficDemand> demands;
  const auto& hosts = topo_->hosts;
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    demands.push_back(
        TrafficDemand{hosts[i], hosts[(i + 1) % hosts.size()], 5_Gbps});
  }
  const auto result = tailor_topology(*topo_, demands);
  ASSERT_TRUE(result.feasible);
  EXPECT_GT(result.switches_off_fraction, 0.2);

  // Energy framing: powered-off switches save their idle draw.
  const SwitchPowerModel model;
  const Watts saved =
      model.idle_power() * static_cast<double>(result.powered_off.size());
  const OcsOverheadModel ocs;
  EXPECT_GT(ocs.net_power_savings(saved, 4).value(), 0.0);
}

}  // namespace
}  // namespace netpp
