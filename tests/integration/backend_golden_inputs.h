// Fixed experiment-driver scenarios for the backend golden-equivalence
// suite (backend_equivalence_test.cpp). The expectations pinned there were
// recorded by backend_golden_record_main.cpp against the pre-backend-seam
// drivers (run_composite / run_fault_experiment wired directly to
// FlowSimulator), so the single-simulator backend — and the sharded backend
// at shard=1 — must reproduce them bit-identically. Everything here is a
// pure function of its inputs: fixed topologies, seeded fault schedules,
// deterministic traffic.
#pragma once

#include <vector>

#include "netpp/faults/experiment.h"
#include "netpp/faults/fault_model.h"
#include "netpp/mech/composite.h"
#include "netpp/topo/builders.h"
#include "netpp/traffic/generators.h"

namespace netpp::golden {

/// k=4 fat tree at 100G: the `netpp_cli mech` fabric. 4 pods of 4 switches
/// plus 4 core switches — partitionable, so the sharded backend can run the
/// identical scenario at shard counts 1, 2, and 4.
inline BuiltTopology composite_topology() {
  return build_fat_tree(4, Gbps{100.0});
}

struct CompositeScenario {
  std::vector<FlowSpec> workload;
  std::vector<TrafficDemand> demands;
  Seconds horizon{4.0};
  CompositeConfig config;
};

/// Phase-structured ML training over the fat tree with a ring demand matrix
/// — the full tailor+park+rate stack, as `netpp_cli mech --iters 2` runs it.
inline CompositeScenario composite_scenario(const BuiltTopology& topo) {
  CompositeScenario s;
  MlTrafficConfig traffic;
  traffic.compute_time = Seconds{0.9};
  traffic.comm_allowance = Seconds{0.1};
  traffic.iterations = 2;
  traffic.volume_per_host = Bits::from_gigabits(2.0);
  s.workload = make_ml_training_traffic(topo.hosts, traffic).flows;
  for (std::size_t i = 0; i < topo.hosts.size(); ++i) {
    s.demands.push_back(TrafficDemand{
        topo.hosts[i], topo.hosts[(i + 1) % topo.hosts.size()], Gbps{5.0}});
  }
  s.config.parking.switch_capacity = Gbps{4 * 100.0};
  s.config.num_ocs_devices = 4;
  return s;
}

/// Same fat tree for the fault study (leaf-spine has no tier-3 core, so a
/// sharded run could never split it).
inline BuiltTopology fault_topology() { return composite_topology(); }

struct FaultScenario {
  std::vector<FlowSpec> workload;
  FaultSchedule schedule;
  FaultExperimentConfig config;
};

/// Seeded fault storm over tailored ML traffic: switches at MTBF 10 s /
/// MTTR 0.5 s, links at double the MTBF, a quarter of link faults degraded.
inline FaultScenario fault_scenario(const BuiltTopology& topo,
                                    DegradedPolicy policy) {
  FaultScenario s;
  MlTrafficConfig traffic;
  traffic.compute_time = Seconds{0.3};
  traffic.comm_allowance = Seconds{0.5};
  traffic.volume_per_host = Bits::from_gigabits(12.0);
  traffic.iterations = 6;
  s.workload = make_ml_training_traffic(topo.hosts, traffic).flows;

  s.config.tailor = true;
  s.config.degraded.policy = policy;
  for (std::size_t i = 0; i < topo.hosts.size(); ++i) {
    s.config.demands.push_back(TrafficDemand{
        topo.hosts[i], topo.hosts[(i + 1) % topo.hosts.size()], Gbps{30.0}});
  }

  FaultGeneratorConfig faults;
  faults.switches = DeviceReliability{Seconds{10.0}, Seconds{0.5}};
  faults.links = DeviceReliability{Seconds{20.0}, Seconds{0.5}};
  faults.degraded_fraction = 0.25;
  faults.horizon = Seconds{5.0};
  faults.seed = 7;
  s.schedule = FaultGenerator{faults}.generate(topo.graph);
  return s;
}

}  // namespace netpp::golden
