// Backend golden-equivalence suite — the hard guarantee of the simulator
// seam (netpp/netsim/backend.h):
//
//   1. The default single backend reproduces the pre-seam experiment
//      drivers bit-identically. The expectations below are hexfloat
//      constants recorded by backend_golden_record_main.cpp against the
//      drivers BEFORE the backend refactor; every double must match to
//      the last bit, not to a tolerance.
//   2. The sharded backend at num_shards=1 keeps its core tier intact and
//      reproduces the same goldens bit-identically (the FlowSimulator and
//      the one-shard ShardedFlowSimulator are bitwise-equivalent, and the
//      control plane allocates identical (time, seq) pairs).
//   3. For a fixed shard count > 1, composite and fault-storm results are
//      bit-identical across worker-thread counts 1/2/4 — determinism does
//      not depend on the parallelism the host happens to grant.
//
// Scenarios live in backend_golden_inputs.h so the recorder and the suite
// can never drift apart.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "backend_golden_inputs.h"
#include "netpp/sim/thread_budget.h"

namespace netpp {
namespace {

// --- Recorded goldens (hexfloat: bitwise expectations) -------------------

struct SingleGolden {
  std::string name;
  double energy_j = 0.0;
  double savings = 0.0;
};

struct CompositeGolden {
  double horizon_s = 0.0;
  double baseline_j = 0.0;
  double energy_j = 0.0;
  double combined_savings = 0.0;
  double best_single_savings = 0.0;
  std::vector<SingleGolden> singles;
  std::size_t tailored_off = 0;
  std::size_t wakes = 0;
  std::size_t parks = 0;
  std::size_t levels = 0;
  double dropped_bits = 0.0;
  double average_power_w = 0.0;
  double baseline_power_w = 0.0;
};

CompositeGolden composite_golden() {
  CompositeGolden e;
  e.horizon_s = 0x1p+2;                        // 4
  e.baseline_j = 0x1.a6508p+15;                // 54056.25
  e.energy_j = 0x1.ab9078624dd2dp+14;          // 27364.117562499992
  e.combined_savings = 0x1.f9a29d7b11af8p-2;   // 0.4937843901029022
  e.best_single_savings = 0x1.56df5a3f29f1p-2; // 0.33483639727136083
  e.singles = {
      {"tailoring", 0x1.18e88p+15, 0x1.56df5a3f29f1p-2},
      {"parking", 0x1.4aa859999999ap+15, 0x1.bc7c9ef22e21cp-3},
      {"rate-adaptation", 0x1.7585c4p+15, 0x1.d93aceddff828p-4},
  };
  e.tailored_off = 7;
  e.wakes = 78;
  e.parks = 117;
  e.levels = 125;
  e.dropped_bits = 0x0p+0;
  e.average_power_w = 0x1.ab9078624dd2dp+12;   // 6841.0293906249981
  e.baseline_power_w = 0x1.a6508p+13;          // 13514.0625
  return e;
}

struct FaultGolden {
  double availability = 0.0;
  double completion_rate = 0.0;
  double stranded_gbit_s = 0.0;
  double mean_recovery_s = 0.0;
  double p99_recovery_s = 0.0;
  double energy_delta = 0.0;
  std::size_t faults_injected = 0;
  std::size_t flows_rerouted = 0;
  std::size_t strand_events = 0;
  std::size_t emergency_wakes = 0;
  std::size_t retailor_passes = 0;
  std::size_t powered_at_end = 0;
  double end_s = 0.0;
  std::size_t fct_count = 0;
  double fct_mean_s = 0.0;
  double fct_max_s = 0.0;
  std::size_t tailored_off = 0;
};

FaultGolden retailor_golden() {
  FaultGolden e;
  e.availability = 0x1.875584452ef72p-1;    // 0.76432431549572599
  e.completion_rate = 0x1p+0;               // 1
  e.stranded_gbit_s = 0x1.3f7a19a001346p+7; // 159.7384767533751
  e.mean_recovery_s = 0x1.3770ad95d3a4cp-2; // 0.30414077021570018
  e.p99_recovery_s = 0x1.5075e01c7e3d4p+0;  // 1.3142986363948141
  e.energy_delta = -0x1.407b854a77d74p-3;   // -0.15648559697636311
  e.faults_injected = 21;
  e.flows_rerouted = 11;
  e.strand_events = 26;
  e.emergency_wakes = 33;
  e.retailor_passes = 42;
  e.powered_at_end = 13;
  e.end_s = 0x1.75b711a0b928ep+2;           // 5.8392986363948136
  e.fct_count = 96;
  e.fct_mean_s = 0x1.65e67339bfd33p-2;      // 0.34951190986608366
  e.fct_max_s = 0x1.8a0f79b617d6cp+0;       // 1.5392986363948138
  e.tailored_off = 7;
  return e;
}

FaultGolden wake_all_golden() {
  FaultGolden e;
  e.availability = 0x1.87e31faede05bp-1;    // 0.76540469178781778
  e.completion_rate = 0x1p+0;               // 1
  e.stranded_gbit_s = 0x1.3df157f643123p+7; // 158.97137422150362
  e.mean_recovery_s = 0x1.41f5369f838a1p-2; // 0.31441197727770925
  e.p99_recovery_s = 0x1.5075e01c7e3d4p+0;  // 1.3142986363948141
  e.energy_delta = -0x1.2260072bdd80cp-3;   // -0.14178472139946086
  e.faults_injected = 21;
  e.flows_rerouted = 13;
  e.strand_events = 25;
  e.emergency_wakes = 41;
  e.retailor_passes = 21;
  e.powered_at_end = 13;
  e.end_s = 0x1.75b711a0b928ep+2;           // 5.8392986363948136
  e.fct_count = 96;
  e.fct_mean_s = 0x1.65651fc560c28p-2;      // 0.34901857034873496
  e.fct_max_s = 0x1.8a0f79b617d6cp+0;       // 1.5392986363948138
  e.tailored_off = 7;
  return e;
}

// EXPECT_EQ on doubles is deliberate throughout: the contract is bitwise
// identity, not closeness.
void expect_matches(const CompositeReport& r, const CompositeGolden& e) {
  EXPECT_EQ(r.horizon.value(), e.horizon_s);
  EXPECT_EQ(r.baseline_energy.value(), e.baseline_j);
  EXPECT_EQ(r.energy.value(), e.energy_j);
  EXPECT_EQ(r.combined_savings, e.combined_savings);
  EXPECT_EQ(r.best_single_savings, e.best_single_savings);
  ASSERT_EQ(r.singles.size(), e.singles.size());
  for (std::size_t i = 0; i < e.singles.size(); ++i) {
    EXPECT_EQ(r.singles[i].name, e.singles[i].name);
    EXPECT_EQ(r.singles[i].energy.value(), e.singles[i].energy_j);
    EXPECT_EQ(r.singles[i].savings, e.singles[i].savings);
  }
  EXPECT_EQ(r.tailoring.powered_off.size(), e.tailored_off);
  EXPECT_EQ(r.wake_transitions, e.wakes);
  EXPECT_EQ(r.park_transitions, e.parks);
  EXPECT_EQ(r.level_transitions, e.levels);
  EXPECT_EQ(r.dropped.value(), e.dropped_bits);
  EXPECT_EQ(r.average_power.value(), e.average_power_w);
  EXPECT_EQ(r.baseline_average_power.value(), e.baseline_power_w);
}

void expect_matches(const FaultExperimentResult& r, const FaultGolden& e) {
  EXPECT_EQ(r.report.availability, e.availability);
  EXPECT_EQ(r.report.completion_rate, e.completion_rate);
  EXPECT_EQ(r.report.stranded_demand_gbit_seconds, e.stranded_gbit_s);
  EXPECT_EQ(r.report.mean_recovery.value(), e.mean_recovery_s);
  EXPECT_EQ(r.report.p99_recovery.value(), e.p99_recovery_s);
  EXPECT_EQ(r.report.energy_delta, e.energy_delta);
  EXPECT_EQ(r.report.faults_injected, e.faults_injected);
  EXPECT_EQ(static_cast<std::size_t>(r.report.flows_rerouted),
            e.flows_rerouted);
  EXPECT_EQ(static_cast<std::size_t>(r.report.strand_events),
            e.strand_events);
  EXPECT_EQ(r.emergency_wakes, e.emergency_wakes);
  EXPECT_EQ(r.retailor_passes, e.retailor_passes);
  EXPECT_EQ(r.powered_at_end, e.powered_at_end);
  EXPECT_EQ(r.end.value(), e.end_s);
  EXPECT_EQ(r.fct.count(), e.fct_count);
  EXPECT_EQ(r.fct.mean(), e.fct_mean_s);
  EXPECT_EQ(r.fct.max(), e.fct_max_s);
  EXPECT_EQ(r.tailoring.powered_off.size(), e.tailored_off);
}

// Bitwise equality between two live runs (the cross-worker contract).
void expect_identical(const CompositeReport& a, const CompositeReport& b) {
  EXPECT_EQ(a.horizon.value(), b.horizon.value());
  EXPECT_EQ(a.baseline_energy.value(), b.baseline_energy.value());
  EXPECT_EQ(a.energy.value(), b.energy.value());
  EXPECT_EQ(a.combined_savings, b.combined_savings);
  EXPECT_EQ(a.best_single_savings, b.best_single_savings);
  ASSERT_EQ(a.singles.size(), b.singles.size());
  for (std::size_t i = 0; i < a.singles.size(); ++i) {
    EXPECT_EQ(a.singles[i].name, b.singles[i].name);
    EXPECT_EQ(a.singles[i].energy.value(), b.singles[i].energy.value());
    EXPECT_EQ(a.singles[i].savings, b.singles[i].savings);
  }
  EXPECT_EQ(a.tailoring.powered_off, b.tailoring.powered_off);
  EXPECT_EQ(a.wake_transitions, b.wake_transitions);
  EXPECT_EQ(a.park_transitions, b.park_transitions);
  EXPECT_EQ(a.level_transitions, b.level_transitions);
  EXPECT_EQ(a.dropped.value(), b.dropped.value());
  EXPECT_EQ(a.average_power.value(), b.average_power.value());
  EXPECT_EQ(a.baseline_average_power.value(), b.baseline_average_power.value());
  ASSERT_EQ(a.domains.size(), b.domains.size());
  for (std::size_t i = 0; i < a.domains.size(); ++i) {
    EXPECT_EQ(a.domains[i].name, b.domains[i].name);
    EXPECT_EQ(a.domains[i].switches, b.domains[i].switches);
    EXPECT_EQ(a.domains[i].energy.value(), b.domains[i].energy.value());
    EXPECT_EQ(a.domains[i].baseline_energy.value(),
              b.domains[i].baseline_energy.value());
    EXPECT_EQ(a.domains[i].savings, b.domains[i].savings);
    EXPECT_EQ(a.domains[i].average_power.value(),
              b.domains[i].average_power.value());
  }
}

void expect_identical(const FaultExperimentResult& a,
                      const FaultExperimentResult& b) {
  EXPECT_EQ(a.report.availability, b.report.availability);
  EXPECT_EQ(a.report.completion_rate, b.report.completion_rate);
  EXPECT_EQ(a.report.stranded_demand_gbit_seconds,
            b.report.stranded_demand_gbit_seconds);
  EXPECT_EQ(a.report.mean_recovery.value(), b.report.mean_recovery.value());
  EXPECT_EQ(a.report.p99_recovery.value(), b.report.p99_recovery.value());
  EXPECT_EQ(a.report.energy_delta, b.report.energy_delta);
  EXPECT_EQ(a.report.faults_injected, b.report.faults_injected);
  EXPECT_EQ(a.report.flows_rerouted, b.report.flows_rerouted);
  EXPECT_EQ(a.report.strand_events, b.report.strand_events);
  EXPECT_EQ(a.emergency_wakes, b.emergency_wakes);
  EXPECT_EQ(a.retailor_passes, b.retailor_passes);
  EXPECT_EQ(a.powered_at_end, b.powered_at_end);
  EXPECT_EQ(a.end.value(), b.end.value());
  EXPECT_EQ(a.fct.count(), b.fct.count());
  EXPECT_EQ(a.fct.mean(), b.fct.mean());
  EXPECT_EQ(a.fct.max(), b.fct.max());
  EXPECT_EQ(a.tailoring.powered_off, b.tailoring.powered_off);
}

CompositeReport run_composite_on(BackendConfig backend) {
  const BuiltTopology topo = golden::composite_topology();
  golden::CompositeScenario s = golden::composite_scenario(topo);
  s.config.backend = backend;
  return run_composite(topo, s.workload, s.demands, s.horizon, s.config);
}

FaultExperimentResult run_faults_on(DegradedPolicy policy,
                                    BackendConfig backend) {
  const BuiltTopology topo = golden::fault_topology();
  golden::FaultScenario s = golden::fault_scenario(topo, policy);
  s.config.backend = backend;
  return run_fault_experiment(topo, s.workload, s.schedule, s.config);
}

BackendConfig sharded(std::size_t shards, std::size_t threads) {
  BackendConfig b;
  b.kind = BackendKind::kSharded;
  b.num_shards = shards;
  b.num_threads = threads;
  return b;
}

// --- Contract 1: the single backend reproduces the pre-seam drivers -----

TEST(BackendGolden, SingleBackendCompositeBitIdentical) {
  expect_matches(run_composite_on(BackendConfig{}), composite_golden());
}

TEST(BackendGolden, SingleBackendFaultRetailorBitIdentical) {
  expect_matches(run_faults_on(DegradedPolicy::kRetailor, BackendConfig{}),
                 retailor_golden());
}

TEST(BackendGolden, SingleBackendFaultWakeAllBitIdentical) {
  expect_matches(
      run_faults_on(DegradedPolicy::kEmergencyWakeAll, BackendConfig{}),
      wake_all_golden());
}

// --- Contract 2: the sharded backend at one shard matches the goldens ---

TEST(BackendGolden, ShardedOneShardCompositeBitIdentical) {
  expect_matches(run_composite_on(sharded(1, 1)), composite_golden());
}

TEST(BackendGolden, ShardedOneShardFaultRetailorBitIdentical) {
  expect_matches(run_faults_on(DegradedPolicy::kRetailor, sharded(1, 1)),
                 retailor_golden());
}

TEST(BackendGolden, ShardedOneShardFaultWakeAllBitIdentical) {
  expect_matches(
      run_faults_on(DegradedPolicy::kEmergencyWakeAll, sharded(1, 1)),
      wake_all_golden());
}

// --- Contract 3: fixed shards, bit-identical across worker counts ------

TEST(BackendGolden, CompositeBitIdenticalAcrossWorkerCounts) {
  thread_budget::set_pool_size(4);
  for (const std::size_t shards : {std::size_t{2}, std::size_t{4}}) {
    const CompositeReport one = run_composite_on(sharded(shards, 1));
    for (const std::size_t threads : {std::size_t{2}, std::size_t{4}}) {
      SCOPED_TRACE(testing::Message()
                   << "shards=" << shards << " threads=" << threads);
      expect_identical(run_composite_on(sharded(shards, threads)), one);
    }
  }
}

TEST(BackendGolden, FaultStormBitIdenticalAcrossWorkerCounts) {
  thread_budget::set_pool_size(4);
  const FaultExperimentResult one =
      run_faults_on(DegradedPolicy::kRetailor, sharded(2, 1));
  for (const std::size_t threads : {std::size_t{2}, std::size_t{4}}) {
    SCOPED_TRACE(testing::Message() << "threads=" << threads);
    expect_identical(run_faults_on(DegradedPolicy::kRetailor,
                                   sharded(2, threads)),
                     one);
  }
}

}  // namespace
}  // namespace netpp
