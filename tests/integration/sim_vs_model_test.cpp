// Cross-validation test: on a topology both can describe exactly (k=4 fat
// tree, 16 hosts), the flow-level simulator's measured network power must
// match the closed-form §2 cluster model at the paper's baseline operating
// point, and never exceed it (the model charges the whole fabric at max
// during communication; the simulator only the devices on flow paths).
#include <gtest/gtest.h>

#include "netpp/cluster/cluster.h"
#include "netpp/netsim/energy_tracker.h"
#include "netpp/topo/builders.h"
#include "netpp/traffic/generators.h"

namespace netpp {
namespace {

using namespace netpp::literals;

constexpr double kSwitchMaxW = 180.0;
constexpr double kNicMaxW = 8.6;
constexpr double kTransceiverMaxW = 4.0;

DeviceCatalog small_catalog() {
  DeviceCatalog::Config cfg;
  cfg.switch_max = Watts{kSwitchMaxW};
  cfg.switch_capacity = Gbps{400.0};
  cfg.nic_watts = {{100.0, kNicMaxW}};
  cfg.transceiver_watts = {{100.0, kTransceiverMaxW}};
  return DeviceCatalog{cfg};
}

Watts simulate_average_network_power(double proportionality,
                                     double* efficiency = nullptr) {
  const auto topo = build_fat_tree(4, 100_Gbps);
  SimEngine engine;
  Router router{topo.graph};
  FlowSimulator sim{topo.graph, router, engine};

  FabricEnergyTracker::Config tcfg;
  tcfg.network_proportionality = proportionality;
  tcfg.switch_max = Watts{kSwitchMaxW};
  tcfg.nic_max = Watts{kNicMaxW};
  tcfg.transceiver_max = Watts{kTransceiverMaxW};
  FabricEnergyTracker tracker{sim, tcfg};
  sim.set_load_listener(tracker.listener());
  tracker.on_load_change(0.0_s);

  MlTrafficConfig mcfg;
  mcfg.compute_time = 0.9_s;
  mcfg.comm_allowance = 0.1_s;
  mcfg.iterations = 10;
  mcfg.volume_per_host = Bits::from_gigabits(10.0 * 16.0 / 30.0);
  const auto traffic = make_ml_training_traffic(topo.hosts, mcfg);
  for (const auto& flow : traffic.flows) sim.submit(flow);
  engine.run();
  const Seconds horizon{10.0};
  engine.run_until(horizon);
  tracker.on_load_change(horizon);
  if (efficiency) *efficiency = tracker.network_energy_efficiency(horizon);
  return tracker.average_network_power(horizon);
}

TEST(SimVsModel, InventoriesAgreeExactly) {
  const DeviceCatalog catalog = small_catalog();
  ClusterConfig cfg;
  cfg.num_gpus = 16.0;
  cfg.bandwidth_per_gpu = 100_Gbps;
  cfg.catalog = &catalog;
  const ClusterModel cluster{cfg};
  const auto topo = build_fat_tree(4, 100_Gbps);

  EXPECT_DOUBLE_EQ(cluster.network().tree.switches,
                   static_cast<double>(topo.switches.size()));
  std::size_t optical = 0;
  for (const auto& link : topo.graph.links()) {
    if (link.optical) ++optical;
  }
  EXPECT_DOUBLE_EQ(cluster.network().transceivers,
                   static_cast<double>(2 * optical));
}

TEST(SimVsModel, BaselinePowerMatchesWithinOnePercent) {
  const DeviceCatalog catalog = small_catalog();
  ClusterConfig cfg;
  cfg.num_gpus = 16.0;
  cfg.bandwidth_per_gpu = 100_Gbps;
  cfg.communication_ratio = 0.10;
  cfg.network_proportionality = 0.10;
  cfg.catalog = &catalog;
  const ClusterModel cluster{cfg};
  const Watts model = cluster.network_envelope().duty_cycle_average(0.10);

  double efficiency = 0.0;
  const Watts simulated = simulate_average_network_power(0.10, &efficiency);
  EXPECT_NEAR(simulated / model, 1.0, 0.01);
  // Efficiency in the same ballpark as the paper's 11%.
  EXPECT_NEAR(efficiency, cluster.network_energy_efficiency(), 0.03);
}

TEST(SimVsModel, SimulatorNeverExceedsTheModel) {
  const DeviceCatalog catalog = small_catalog();
  for (double p : {0.10, 0.50, 1.00}) {
    ClusterConfig cfg;
    cfg.num_gpus = 16.0;
    cfg.bandwidth_per_gpu = 100_Gbps;
    cfg.communication_ratio = 0.10;
    cfg.network_proportionality = p;
    cfg.catalog = &catalog;
    const ClusterModel cluster{cfg};
    const Watts model = cluster.network_envelope().duty_cycle_average(0.10);
    const Watts simulated = simulate_average_network_power(p);
    EXPECT_LE(simulated.value(), model.value() * (1.0 + 1e-6)) << "p=" << p;
  }
}

TEST(SimVsModel, GapGrowsWithProportionality) {
  // At high proportionality, idle power vanishes and the model's
  // whole-fabric-at-max assumption dominates the comparison.
  const DeviceCatalog catalog = small_catalog();
  double prev_gap = -1.0;
  for (double p : {0.10, 0.50, 1.00}) {
    ClusterConfig cfg;
    cfg.num_gpus = 16.0;
    cfg.bandwidth_per_gpu = 100_Gbps;
    cfg.communication_ratio = 0.10;
    cfg.network_proportionality = p;
    cfg.catalog = &catalog;
    const ClusterModel cluster{cfg};
    const Watts model = cluster.network_envelope().duty_cycle_average(0.10);
    const Watts simulated = simulate_average_network_power(p);
    const double gap = 1.0 - simulated / model;
    EXPECT_GT(gap, prev_gap) << "p=" << p;
    prev_gap = gap;
  }
}

}  // namespace
}  // namespace netpp
