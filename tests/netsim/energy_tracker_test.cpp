#include "netpp/netsim/energy_tracker.h"

#include <gtest/gtest.h>

#include "netpp/topo/builders.h"

namespace netpp {
namespace {

using namespace netpp::literals;

struct Rig {
  BuiltTopology topo = build_leaf_spine(2, 1, 1, 100_Gbps, 100_Gbps);
  SimEngine engine;
  Router router{topo.graph};
  FlowSimulator sim{topo.graph, router, engine};
};

FabricEnergyTracker::Config small_config() {
  FabricEnergyTracker::Config cfg;
  cfg.switch_max = 100.0_W;
  cfg.nic_max = 10.0_W;
  cfg.transceiver_max = 4.0_W;
  cfg.network_proportionality = 0.10;
  return cfg;
}

TEST(FabricEnergyTracker, DeviceInventory) {
  Rig rig;
  FabricEnergyTracker tracker{rig.sim, small_config()};
  // 2 leaves + 1 spine = 3 switches; 2 hosts = 2 NICs; 2 optical leaf-spine
  // links = 4 transceivers. Max power = 3*100 + 2*10 + 4*4 = 336 W.
  EXPECT_NEAR(tracker.max_network_power().value(), 336.0, 1e-9);
}

TEST(FabricEnergyTracker, IdleFabricDrawsIdlePower) {
  Rig rig;
  FabricEnergyTracker tracker{rig.sim, small_config()};
  tracker.on_load_change(0.0_s);
  rig.engine.run_until(10.0_s);
  // 10% proportionality: idle = 0.9 * max.
  EXPECT_NEAR(tracker.average_network_power(10.0_s).value(), 0.9 * 336.0,
              1e-6);
  EXPECT_NEAR(tracker.network_energy(10.0_s).value(), 9.0 * 336.0, 1e-6);
}

TEST(FabricEnergyTracker, ActiveDevicesChargeMaxPower) {
  Rig rig;
  FabricEnergyTracker tracker{rig.sim, small_config()};
  rig.sim.set_load_listener(tracker.listener());
  tracker.on_load_change(0.0_s);
  // Host0 (leaf0) -> host1 (leaf1): crosses both leaves, the spine, both
  // optical links; 100 Gbit at 100 G = 1 s active out of 10 s.
  rig.sim.submit(FlowSpec{rig.topo.hosts[0], rig.topo.hosts[1],
                          Bits::from_gigabits(100.0), 0.0_s, 0});
  rig.engine.run();
  rig.engine.run_until(10.0_s);
  tracker.on_load_change(10.0_s);

  // Energy = idle everywhere for 10 s + (max - idle) of every device for
  // the 1 busy second (all devices are on the path here).
  const double idle = 0.9 * 336.0;
  const double expected = idle * 10.0 + (336.0 - idle) * 1.0;
  EXPECT_NEAR(tracker.network_energy(10.0_s).value(), expected, 1e-6);
}

TEST(FabricEnergyTracker, BreakdownSumsToTotal) {
  Rig rig;
  FabricEnergyTracker tracker{rig.sim, small_config()};
  rig.sim.set_load_listener(tracker.listener());
  tracker.on_load_change(0.0_s);
  rig.sim.submit(FlowSpec{rig.topo.hosts[0], rig.topo.hosts[1],
                          Bits::from_gigabits(50.0), 1.0_s, 0});
  rig.engine.run();
  rig.engine.run_until(5.0_s);
  const double total = tracker.network_energy(5.0_s).value();
  const double parts = tracker.switch_energy(5.0_s).value() +
                       tracker.nic_energy(5.0_s).value() +
                       tracker.transceiver_energy(5.0_s).value();
  EXPECT_NEAR(total, parts, 1e-9);
  EXPECT_GT(tracker.switch_energy(5.0_s).value(),
            tracker.nic_energy(5.0_s).value());
}

TEST(FabricEnergyTracker, EfficiencyMatchesPaperMetric) {
  // Active 10% of the time at full load with 10% proportionality -> ~11%.
  Rig rig;
  FabricEnergyTracker tracker{rig.sim, small_config()};
  rig.sim.set_load_listener(tracker.listener());
  tracker.on_load_change(0.0_s);
  rig.sim.submit(FlowSpec{rig.topo.hosts[0], rig.topo.hosts[1],
                          Bits::from_gigabits(100.0), 0.0_s, 0});
  rig.engine.run();
  rig.engine.run_until(10.0_s);
  tracker.on_load_change(10.0_s);
  EXPECT_NEAR(tracker.network_energy_efficiency(10.0_s), 0.11, 0.01);
}

TEST(FabricEnergyTracker, FullProportionalityIsFullyEfficient) {
  Rig rig;
  auto cfg = small_config();
  cfg.network_proportionality = 1.0;
  FabricEnergyTracker tracker{rig.sim, cfg};
  rig.sim.set_load_listener(tracker.listener());
  tracker.on_load_change(0.0_s);
  rig.sim.submit(FlowSpec{rig.topo.hosts[0], rig.topo.hosts[1],
                          Bits::from_gigabits(100.0), 0.0_s, 0});
  rig.engine.run();
  rig.engine.run_until(10.0_s);
  tracker.on_load_change(10.0_s);
  EXPECT_NEAR(tracker.network_energy_efficiency(10.0_s), 1.0, 0.05);
}

TEST(FabricEnergyTracker, ComponentModeUsesSwitchModel) {
  Rig rig;
  auto cfg = small_config();
  cfg.mode = DevicePowerMode::kComponent;
  cfg.component_model = SwitchPowerModel{};  // 750 W, 10% proportional
  FabricEnergyTracker tracker{rig.sim, cfg};
  tracker.on_load_change(0.0_s);
  rig.engine.run_until(4.0_s);
  // 3 switches at component idle (675 W) + NICs/transceivers two-state idle.
  const double expected =
      3.0 * 675.0 + 0.9 * (2.0 * 10.0 + 4.0 * 4.0);
  EXPECT_NEAR(tracker.average_network_power(4.0_s).value(), expected, 1e-6);
}

TEST(FabricEnergyTracker, InvalidHorizonThrows) {
  Rig rig;
  FabricEnergyTracker tracker{rig.sim, small_config()};
  EXPECT_THROW((void)tracker.average_network_power(Seconds{0.0}),
               std::invalid_argument);
}


TEST(FabricEnergyTracker, ReportUsesMaxPowerBaseline) {
  Rig rig;
  FabricEnergyTracker tracker{rig.sim, small_config()};
  tracker.on_load_change(0.0_s);
  rig.engine.run_until(5.0_s);

  const MechanismReport report = tracker.report(5.0_s);
  EXPECT_EQ(report.mechanism, "fabric");
  EXPECT_DOUBLE_EQ(report.duration.value(), 5.0);
  EXPECT_DOUBLE_EQ(report.energy.value(), tracker.network_energy(5.0_s).value());
  EXPECT_DOUBLE_EQ(report.baseline_energy.value(),
                   tracker.max_network_power().value() * 5.0);
  // An idle fabric saves exactly the idle/max gap.
  EXPECT_GT(report.savings, 0.0);
  EXPECT_DOUBLE_EQ(report.average_power.value(),
                   tracker.average_network_power(5.0_s).value());
  EXPECT_THROW((void)tracker.report(Seconds{0.0}), std::invalid_argument);
}

}  // namespace
}  // namespace netpp
