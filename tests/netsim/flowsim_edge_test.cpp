// Edge cases and input hardening for the flow simulator and its solver:
// degenerate inputs must fail loudly (descriptive exceptions), not corrupt
// the simulation.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "netpp/mech/ocs.h"
#include "netpp/netsim/fairshare.h"
#include "netpp/netsim/flowsim.h"
#include "netpp/topo/builders.h"

namespace netpp {
namespace {

using namespace netpp::literals;

struct Fixture {
  BuiltTopology topo = build_leaf_spine(2, 2, 2, 100_Gbps, 100_Gbps);
  SimEngine engine;
  Router router{topo.graph};
  FlowSimulator sim{topo.graph, router, engine};
};

TEST(FlowSimEdge, RejectsInvalidFlowSpecs) {
  Fixture f;
  const NodeId h0 = f.topo.hosts[0];
  const NodeId h1 = f.topo.hosts[1];
  const Bits size = Bits::from_gigabits(1.0);

  // Endpoints outside the graph.
  EXPECT_THROW(f.sim.submit(FlowSpec{NodeId{100000}, h1, size, 0.0_s, 0}),
               std::out_of_range);
  EXPECT_THROW(f.sim.submit(FlowSpec{h0, NodeId{100000}, size, 0.0_s, 0}),
               std::out_of_range);
  // src == dst is meaningless for a network flow.
  EXPECT_THROW(f.sim.submit(FlowSpec{h0, h0, size, 0.0_s, 0}),
               std::invalid_argument);
  // NaN / non-positive sizes.
  EXPECT_THROW(
      f.sim.submit(FlowSpec{
          h0, h1, Bits{std::numeric_limits<double>::quiet_NaN()}, 0.0_s, 0}),
      std::invalid_argument);
  EXPECT_THROW(f.sim.submit(FlowSpec{h0, h1, Bits{-1.0}, 0.0_s, 0}),
               std::invalid_argument);
  EXPECT_THROW(f.sim.submit(FlowSpec{h0, h1, Bits{0.0}, 0.0_s, 0}),
               std::invalid_argument);
  // Non-finite start time.
  EXPECT_THROW(
      f.sim.submit(FlowSpec{
          h0, h1, size, Seconds{std::numeric_limits<double>::infinity()}, 0}),
      std::invalid_argument);
  // Nothing leaked into the simulation.
  EXPECT_EQ(f.sim.active_flows(), 0u);
  f.engine.run();
  EXPECT_EQ(f.sim.completed().size(), 0u);
}

TEST(FlowSimEdge, ZeroCapacityResourceYieldsZeroRate) {
  // Graph::add_link rejects non-positive capacities, so a dead link reaches
  // the solver as a zero-capacity resource: the solver must pin flows
  // crossing it to zero instead of dividing by it.
  std::vector<FairShareFlow> flows(2);
  flows[0].resources = {0};
  flows[1].resources = {0, 1};
  const std::vector<double> capacities = {100.0, 0.0};
  const auto rates = max_min_fair_rates(flows, capacities);
  ASSERT_EQ(rates.size(), 2u);
  EXPECT_DOUBLE_EQ(rates[1], 0.0);
  EXPECT_NEAR(rates[0], 100.0, 1e-9);
}

TEST(FlowSimEdge, EmptyDemandMatrixIsTriviallySatisfiable) {
  Fixture f;
  EXPECT_TRUE(demands_satisfiable(f.router, {}, TailorConfig{}));
  // Tailoring an empty matrix parks everything parkable without crashing.
  const auto result = tailor_topology(f.topo, {}, TailorConfig{});
  EXPECT_TRUE(result.feasible);
}

TEST(FlowSimEdge, AllLinksSaturatedStillConservesCapacity) {
  Fixture f;
  // Saturate every access link with bidirectional all-pairs-ish traffic.
  const auto& hosts = f.topo.hosts;
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    for (std::size_t j = 0; j < hosts.size(); ++j) {
      if (i == j) continue;
      f.sim.submit(FlowSpec{hosts[i], hosts[j], Bits::from_gigabits(50.0),
                            0.0_s, 0});
    }
  }
  std::size_t events = f.engine.run();
  EXPECT_GT(events, 0u);
  EXPECT_EQ(f.sim.completed().size(), hosts.size() * (hosts.size() - 1));
  EXPECT_EQ(f.sim.active_flows(), 0u);
  // With every flow bottlenecked at its 100 G access link shared by 3 peers
  // in each direction, no flow can beat the line rate.
  for (const auto& record : f.sim.completed()) {
    EXPECT_GE(record.fct().value(), 50.0 / 100.0 - 1e-9);
  }
}

TEST(FlowSimEdge, IncrementalMatchesFullAcrossTopologyChange) {
  // Regression for the incremental fast paths: a mid-simulation topology
  // change (spine failure + repair) must leave the incremental solver's
  // dynamics identical to the always-full-solve configuration.
  const auto run = [](bool incremental) {
    BuiltTopology topo = build_leaf_spine(2, 2, 2, 100_Gbps, 100_Gbps);
    SimEngine engine;
    Router router{topo.graph};
    FlowSimulator::Config config;
    config.incremental_reallocation = incremental;
    config.strand_unroutable = true;
    FlowSimulator sim{topo.graph, router, engine, config};
    const auto& hosts = topo.hosts;
    for (std::size_t i = 0; i < hosts.size(); ++i) {
      sim.submit(FlowSpec{hosts[i], hosts[(i + 1) % hosts.size()],
                          Bits::from_gigabits(60.0), Seconds{0.05 * i}, i});
    }
    const NodeId spine = topo.graph.nodes_at_tier(2).back();
    engine.schedule_at(Seconds{0.2},
                       [&sim, spine] { sim.set_node_enabled(spine, false); });
    engine.schedule_at(Seconds{0.5},
                       [&sim, spine] { sim.set_node_enabled(spine, true); });
    engine.run();
    std::vector<double> finished;
    for (const auto& record : sim.completed()) {
      finished.push_back(record.finished.value());
    }
    return finished;
  };

  const auto fast = run(true);
  const auto full = run(false);
  ASSERT_EQ(fast.size(), full.size());
  ASSERT_FALSE(fast.empty());
  for (std::size_t i = 0; i < fast.size(); ++i) {
    EXPECT_NEAR(fast[i], full[i], 1e-9) << "flow " << i;
  }
}

TEST(FlowSimEdge, TopologyChangeValidation) {
  Fixture f;
  EXPECT_THROW(f.sim.set_node_enabled(NodeId{100000}, false),
               std::out_of_range);
  EXPECT_THROW(f.sim.set_link_enabled(LinkId{100000}, false),
               std::out_of_range);
  EXPECT_THROW(f.sim.set_link_capacity_factor(LinkId{0}, 0.0),
               std::invalid_argument);
  EXPECT_THROW(f.sim.set_link_capacity_factor(LinkId{0}, 1.5),
               std::invalid_argument);
  EXPECT_THROW(
      f.sim.set_link_capacity_factor(
          LinkId{0}, std::numeric_limits<double>::quiet_NaN()),
      std::invalid_argument);
}

}  // namespace
}  // namespace netpp
