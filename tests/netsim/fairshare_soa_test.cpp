// SoA/SIMD bit-identity sweep: every compiled dispatch path of the soa.h
// kernels (scalar, and with NETPP_SIMD also SSE2/AVX2 when the CPU has
// them) must produce bit-identical results — both at the kernel level
// (settle, completion_scan, div_shares, fill_unfrozen compared lane by lane
// against the forced-scalar path) and end to end (the solver against the
// verbatim pre-optimization reference, and the sparse solve_on/solve_arena
// entry points against the dense solve()). force_simd_level() exists for
// exactly this sweep; the suite runs under ASan/UBSan and TSan in CI.
//
// Comparisons use the raw double bits (std::bit_cast), not ==: the contract
// is "same IEEE operations in the same order", which also pins signed
// zeros and infinities.
#include "netpp/netsim/soa.h"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "fairshare_reference.h"
#include "netpp/netsim/fairshare.h"
#include "netpp/sim/random.h"

namespace netpp {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

/// Forces a dispatch level for one scope; restores full dispatch on exit.
class ForcedLevel {
 public:
  explicit ForcedLevel(soa::SimdLevel level)
      : applied_(soa::force_simd_level(level)) {}
  ~ForcedLevel() { soa::force_simd_level(soa::detected_simd_level()); }
  ForcedLevel(const ForcedLevel&) = delete;
  ForcedLevel& operator=(const ForcedLevel&) = delete;
  [[nodiscard]] soa::SimdLevel applied() const { return applied_; }

 private:
  soa::SimdLevel applied_;
};

/// Every level this binary + CPU can actually run.
std::vector<soa::SimdLevel> compiled_levels() {
  std::vector<soa::SimdLevel> levels{soa::SimdLevel::kScalar};
  const int best = static_cast<int>(soa::detected_simd_level());
  if (best >= static_cast<int>(soa::SimdLevel::kSse2)) {
    levels.push_back(soa::SimdLevel::kSse2);
  }
  if (best >= static_cast<int>(soa::SimdLevel::kAvx2)) {
    levels.push_back(soa::SimdLevel::kAvx2);
  }
  return levels;
}

// ---------------------------------------------------------------------------
// Random problem generation: zero-capacity links, single-flow links,
// duplicate resources, capped/uncapped mixes.
// ---------------------------------------------------------------------------
struct Problem {
  std::vector<FairShareFlow> flows;
  std::vector<double> caps;
};

Problem random_problem(Rng& rng, bool uniform_cap) {
  Problem p;
  const auto num_res = static_cast<std::size_t>(rng.uniform_int(1, 12));
  const auto num_flows = static_cast<std::size_t>(rng.uniform_int(0, 40));
  p.caps.resize(num_res);
  for (auto& c : p.caps) {
    // ~15% zero-capacity links: flows crossing one pin to rate 0.
    c = rng.uniform() < 0.15 ? 0.0 : rng.uniform(0.5, 100.0);
  }
  p.flows.reserve(num_flows);
  for (std::size_t f = 0; f < num_flows; ++f) {
    FairShareFlow flow;
    const auto path_len = static_cast<std::size_t>(rng.uniform_int(0, 4));
    for (std::size_t h = 0; h < path_len; ++h) {
      // Duplicates allowed on purpose.
      flow.resources.push_back(static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(num_res) - 1)));
    }
    if (uniform_cap) {
      flow.cap = 25.0;
    } else {
      const double roll = rng.uniform();
      if (roll < 0.3) {
        flow.cap = rng.uniform(0.1, 5.0);  // often binding
      } else if (roll < 0.5) {
        flow.cap = rng.uniform(50.0, 500.0);  // mostly inert
      }
    }
    p.flows.push_back(std::move(flow));
  }
  // Half the trials get a guaranteed single-flow link: a fresh resource
  // crossed only by flow 0 (the uncontended-freeze corner).
  if (!p.flows.empty() && rng.uniform() < 0.5) {
    p.caps.push_back(rng.uniform() < 0.3 ? 0.0 : rng.uniform(0.5, 100.0));
    p.flows[0].resources.push_back(p.caps.size() - 1);
  }
  return p;
}

void expect_matches_reference(const Problem& p, const std::string& what) {
  const auto expected = testing::max_min_fair_rates_reference(p.flows, p.caps);
  const auto actual = max_min_fair_rates(p.flows, p.caps);
  ASSERT_EQ(actual.size(), expected.size()) << what;
  for (std::size_t f = 0; f < expected.size(); ++f) {
    EXPECT_EQ(bits(actual[f]), bits(expected[f]))
        << what << ", flow " << f << ": " << actual[f] << " vs "
        << expected[f];
  }
}

TEST(FairShareSoa, SolverMatchesReferenceOnEveryDispatchPath) {
  for (const soa::SimdLevel level : compiled_levels()) {
    ForcedLevel forced{level};
    ASSERT_EQ(forced.applied(), level);
    const std::string what =
        std::string{"level "} + soa::to_string(level);
    Rng rng{0x50A0ull + static_cast<std::uint64_t>(level)};
    for (int trial = 0; trial < 120; ++trial) {
      expect_matches_reference(random_problem(rng, false),
                               what + ", mixed-cap trial");
      if (HasFatalFailure()) return;
    }
    for (int trial = 0; trial < 80; ++trial) {
      expect_matches_reference(random_problem(rng, true),
                               what + ", uniform-cap trial");
      if (HasFatalFailure()) return;
    }
  }
}

// The sparse entry points the simulator rides on (solve_on over views,
// solve_arena over a pre-flattened CSR) must return exactly the doubles the
// dense solve() does — on every dispatch path.
TEST(FairShareSoa, SparseEntryPointsMatchDenseSolve) {
  constexpr double kUniformCap = 25.0;
  for (const soa::SimdLevel level : compiled_levels()) {
    ForcedLevel forced{level};
    Rng rng{0xA2E4Aull + static_cast<std::uint64_t>(level)};
    for (int trial = 0; trial < 60; ++trial) {
      Problem p = random_problem(rng, true);
      if (p.flows.empty()) continue;

      MaxMinSolver dense;
      std::vector<FairShareFlowView> views;
      views.reserve(p.flows.size());
      for (const auto& flow : p.flows) {
        views.push_back(
            {std::span<const std::size_t>(flow.resources), flow.cap});
      }
      const auto dense_span = dense.solve(views, p.caps);
      const std::vector<double> expected{dense_span.begin(),
                                         dense_span.end()};

      // Flatten to the 32-bit CSR layout and collect the touched set.
      std::vector<std::uint32_t> arena;
      std::vector<std::uint32_t> start{0};
      std::vector<std::uint32_t> touched;
      std::vector<std::uint8_t> seen(p.caps.size(), 0);
      std::vector<FairShareFlowView32> views32;
      std::vector<std::vector<std::uint32_t>> rows32(p.flows.size());
      for (std::size_t f = 0; f < p.flows.size(); ++f) {
        for (std::size_t r : p.flows[f].resources) {
          const auto r32 = static_cast<std::uint32_t>(r);
          arena.push_back(r32);
          rows32[f].push_back(r32);
          if (seen[r] == 0) {
            seen[r] = 1;
            touched.push_back(r32);
          }
        }
        start.push_back(static_cast<std::uint32_t>(arena.size()));
      }
      for (std::size_t f = 0; f < p.flows.size(); ++f) {
        views32.push_back(
            {std::span<const std::uint32_t>(rows32[f]), kUniformCap});
      }

      MaxMinSolver sparse;
      const auto on_span = sparse.solve_on(
          std::span<const FairShareFlowView32>(views32), p.caps,
          std::span<const std::uint32_t>(touched), kUniformCap);
      ASSERT_EQ(on_span.size(), expected.size());
      for (std::size_t f = 0; f < expected.size(); ++f) {
        EXPECT_EQ(bits(on_span[f]), bits(expected[f]))
            << "solve_on, level " << soa::to_string(level) << ", trial "
            << trial << ", flow " << f;
      }

      const auto arena_span = sparse.solve_arena(
          arena, start, p.caps, std::span<const std::uint32_t>(touched),
          kUniformCap);
      ASSERT_EQ(arena_span.size(), expected.size());
      for (std::size_t f = 0; f < expected.size(); ++f) {
        EXPECT_EQ(bits(arena_span[f]), bits(expected[f]))
            << "solve_arena, level " << soa::to_string(level) << ", trial "
            << trial << ", flow " << f;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Kernel-level sweeps: the vector paths against the forced-scalar path on
// the same inputs, lane by lane, across sizes that exercise every tail.
// ---------------------------------------------------------------------------

/// Random reallocation-shaped arrays: rates are 0 (closed lane), exactly
/// `cap` (NIC-capped lane), or a positive share; remaining is >= 0 with
/// some exact zeros.
struct Lanes {
  std::vector<double> remaining;
  std::vector<double> rate;
};

Lanes random_lanes(Rng& rng, std::size_t n, double cap) {
  Lanes lanes;
  lanes.remaining.resize(n);
  lanes.rate.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    lanes.remaining[i] = rng.uniform() < 0.1 ? 0.0 : rng.uniform(0.0, 50e9);
    const double roll = rng.uniform();
    if (roll < 0.15) {
      lanes.rate[i] = 0.0;
    } else if (roll < 0.45) {
      lanes.rate[i] = cap;
    } else {
      lanes.rate[i] = rng.uniform(1e3, 30e9);
    }
  }
  return lanes;
}

TEST(FairShareSoa, SettleKernelBitIdenticalAcrossPaths) {
  constexpr double kCap = 25e9;
  const auto levels = compiled_levels();
  Rng rng{0x5E77ull};
  for (int trial = 0; trial < 40; ++trial) {
    // Sizes 0..66 sweep every SSE2/AVX2 main-loop + tail combination.
    const auto n = static_cast<std::size_t>(rng.uniform_int(0, 66));
    const Lanes lanes = random_lanes(rng, n, kCap);
    const double dt = rng.uniform() < 0.1 ? 0.0 : rng.uniform(0.0, 2.0);

    std::vector<double> expected = lanes.remaining;
    {
      ForcedLevel forced{soa::SimdLevel::kScalar};
      soa::settle(expected.data(), lanes.rate.data(), dt, n);
    }
    for (const soa::SimdLevel level : levels) {
      ForcedLevel forced{level};
      std::vector<double> got = lanes.remaining;
      soa::settle(got.data(), lanes.rate.data(), dt, n);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(bits(got[i]), bits(expected[i]))
            << "settle, level " << soa::to_string(level) << ", trial "
            << trial << ", lane " << i;
      }
    }
  }
}

TEST(FairShareSoa, CompletionScanBitIdenticalAcrossPaths) {
  constexpr double kCap = 25e9;
  const auto levels = compiled_levels();
  Rng rng{0xC03Full};
  for (int trial = 0; trial < 40; ++trial) {
    const auto n = static_cast<std::size_t>(rng.uniform_int(0, 66));
    const Lanes lanes = random_lanes(rng, n, kCap);

    // Pin the semantics against the documented straight-line scan.
    double want_quotient = kInf;
    double want_capped = kInf;
    for (std::size_t i = 0; i < n; ++i) {
      if (lanes.rate[i] <= 0.0) continue;
      if (lanes.rate[i] == kCap) {
        if (lanes.remaining[i] < want_capped) want_capped = lanes.remaining[i];
      } else {
        const double q = lanes.remaining[i] / lanes.rate[i];
        if (q < want_quotient) want_quotient = q;
      }
    }

    for (const soa::SimdLevel level : levels) {
      ForcedLevel forced{level};
      double min_quotient = 0.0;
      double min_capped = 0.0;
      soa::completion_scan(lanes.remaining.data(), lanes.rate.data(), kCap, n,
                           &min_quotient, &min_capped);
      EXPECT_EQ(bits(min_quotient), bits(want_quotient))
          << "completion_scan quotient, level " << soa::to_string(level)
          << ", trial " << trial;
      EXPECT_EQ(bits(min_capped), bits(want_capped))
          << "completion_scan capped, level " << soa::to_string(level)
          << ", trial " << trial;
    }
  }
}

TEST(FairShareSoa, DivSharesAndFillUnfrozenBitIdenticalAcrossPaths) {
  const auto levels = compiled_levels();
  Rng rng{0xD1Full};
  for (int trial = 0; trial < 40; ++trial) {
    const auto n = static_cast<std::size_t>(rng.uniform_int(0, 66));
    std::vector<double> residual(n);
    std::vector<std::uint32_t> active(n);
    for (std::size_t i = 0; i < n; ++i) {
      residual[i] = rng.uniform() < 0.1 ? 0.0 : rng.uniform(0.0, 100e9);
      // Zero-active lanes divide to +inf; callers skip them.
      active[i] = static_cast<std::uint32_t>(rng.uniform_int(0, 9));
    }
    for (const soa::SimdLevel level : levels) {
      ForcedLevel forced{level};
      std::vector<double> out(n, -1.0);
      soa::div_shares(residual.data(), active.data(), out.data(), n);
      for (std::size_t i = 0; i < n; ++i) {
        const double want = residual[i] / static_cast<double>(active[i]);
        ASSERT_EQ(bits(out[i]), bits(want))
            << "div_shares, level " << soa::to_string(level) << ", trial "
            << trial << ", lane " << i;
      }
    }

    std::vector<double> rate(n);
    std::vector<std::uint8_t> frozen(n);
    for (std::size_t i = 0; i < n; ++i) {
      rate[i] = rng.uniform(0.0, 10.0);
      frozen[i] = rng.uniform() < 0.5 ? 1 : 0;
    }
    const double value = rng.uniform(0.0, 30e9);
    for (const soa::SimdLevel level : levels) {
      ForcedLevel forced{level};
      std::vector<double> got_rate = rate;
      std::vector<std::uint8_t> got_frozen = frozen;
      soa::fill_unfrozen(got_rate.data(), got_frozen.data(), value, n);
      for (std::size_t i = 0; i < n; ++i) {
        const double want = frozen[i] != 0 ? rate[i] : value;
        ASSERT_EQ(bits(got_rate[i]), bits(want))
            << "fill_unfrozen, level " << soa::to_string(level) << ", trial "
            << trial << ", lane " << i;
        ASSERT_EQ(got_frozen[i], 1) << "frozen flag, lane " << i;
      }
    }
  }
}

}  // namespace
}  // namespace netpp
