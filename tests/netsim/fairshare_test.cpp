#include "netpp/netsim/fairshare.h"

#include <gtest/gtest.h>

#include <limits>

namespace netpp {
namespace {

TEST(FairShare, SingleFlowGetsFullLink) {
  const std::vector<FairShareFlow> flows = {{{0}, 0.0}};
  const auto rates = max_min_fair_rates(flows, {100.0});
  ASSERT_EQ(rates.size(), 1u);
  EXPECT_DOUBLE_EQ(rates[0], 100.0);
}

TEST(FairShare, EqualSplitOnSharedLink) {
  const std::vector<FairShareFlow> flows = {{{0}, 0.0}, {{0}, 0.0},
                                            {{0}, 0.0}, {{0}, 0.0}};
  const auto rates = max_min_fair_rates(flows, {100.0});
  for (double r : rates) EXPECT_DOUBLE_EQ(r, 25.0);
}

TEST(FairShare, ClassicTandemExample) {
  // Links: 0 (cap 1), 1 (cap 1). Flow A uses both; flow B uses link 0;
  // flow C uses link 1. Max-min: A=0.5, B=0.5, C=0.5.
  const std::vector<FairShareFlow> flows = {{{0, 1}, 0.0}, {{0}, 0.0},
                                            {{1}, 0.0}};
  const auto rates = max_min_fair_rates(flows, {1.0, 1.0});
  EXPECT_DOUBLE_EQ(rates[0], 0.5);
  EXPECT_DOUBLE_EQ(rates[1], 0.5);
  EXPECT_DOUBLE_EQ(rates[2], 0.5);
}

TEST(FairShare, BottleneckFreesCapacityElsewhere) {
  // Link 0 cap 1 shared by A,B; link 1 cap 10 used by B,C.
  // A,B bottlenecked at 0.5 on link 0; C then gets 9.5 on link 1.
  const std::vector<FairShareFlow> flows = {{{0}, 0.0}, {{0, 1}, 0.0},
                                            {{1}, 0.0}};
  const auto rates = max_min_fair_rates(flows, {1.0, 10.0});
  EXPECT_DOUBLE_EQ(rates[0], 0.5);
  EXPECT_DOUBLE_EQ(rates[1], 0.5);
  EXPECT_DOUBLE_EQ(rates[2], 9.5);
}

TEST(FairShare, PerFlowCapBindsBeforeLink) {
  // Two flows on a 100 link, one capped at 10: capped flow gets 10, the
  // other gets the remaining 90.
  const std::vector<FairShareFlow> flows = {{{0}, 10.0}, {{0}, 0.0}};
  const auto rates = max_min_fair_rates(flows, {100.0});
  EXPECT_DOUBLE_EQ(rates[0], 10.0);
  EXPECT_DOUBLE_EQ(rates[1], 90.0);
}

TEST(FairShare, CapAboveFairShareIsInert) {
  const std::vector<FairShareFlow> flows = {{{0}, 80.0}, {{0}, 0.0}};
  const auto rates = max_min_fair_rates(flows, {100.0});
  EXPECT_DOUBLE_EQ(rates[0], 50.0);
  EXPECT_DOUBLE_EQ(rates[1], 50.0);
}

TEST(FairShare, EmptyPathUncappedGetsZero) {
  const std::vector<FairShareFlow> flows = {{{}, 0.0}};
  const auto rates = max_min_fair_rates(flows, {100.0});
  EXPECT_DOUBLE_EQ(rates[0], 0.0);
}

TEST(FairShare, EmptyPathCappedGetsCap) {
  const std::vector<FairShareFlow> flows = {{{}, 42.0}};
  const auto rates = max_min_fair_rates(flows, {100.0});
  EXPECT_DOUBLE_EQ(rates[0], 42.0);
}

TEST(FairShare, NoFlowsIsFine) {
  const auto rates = max_min_fair_rates({}, {100.0});
  EXPECT_TRUE(rates.empty());
}

TEST(FairShare, InvalidInputsThrow) {
  EXPECT_THROW(max_min_fair_rates({{{0}, 0.0}}, {-1.0}),
               std::invalid_argument);
  EXPECT_THROW(max_min_fair_rates(
                   {{{0}, 0.0}},
                   {std::numeric_limits<double>::quiet_NaN()}),
               std::invalid_argument);
  EXPECT_THROW(max_min_fair_rates({{{5}, 0.0}}, {100.0}), std::out_of_range);
}

TEST(FairShare, ZeroCapacityPinsFlowsToZero) {
  // A dead (disabled or fully degraded) resource is a valid input: flows
  // crossing it get rate 0, everyone else shares normally.
  const auto rates = max_min_fair_rates({{{0}, 0.0}, {{1}, 0.0}},
                                        {0.0, 100.0});
  ASSERT_EQ(rates.size(), 2u);
  EXPECT_DOUBLE_EQ(rates[0], 0.0);
  EXPECT_DOUBLE_EQ(rates[1], 100.0);
}

TEST(FairShare, NoLinkExceedsCapacity) {
  // Random-ish deterministic mesh of flows; verify feasibility.
  std::vector<FairShareFlow> flows;
  const std::vector<double> caps = {10.0, 20.0, 5.0, 40.0};
  for (std::size_t f = 0; f < 12; ++f) {
    FairShareFlow flow;
    flow.resources = {f % caps.size(), (f * 7 + 1) % caps.size()};
    if (flow.resources[0] == flow.resources[1]) flow.resources.pop_back();
    flow.cap = (f % 3 == 0) ? 3.0 : 0.0;
    flows.push_back(flow);
  }
  const auto rates = max_min_fair_rates(flows, caps);
  std::vector<double> used(caps.size(), 0.0);
  for (std::size_t f = 0; f < flows.size(); ++f) {
    EXPECT_GE(rates[f], 0.0);
    for (auto r : flows[f].resources) used[r] += rates[f];
  }
  for (std::size_t r = 0; r < caps.size(); ++r) {
    EXPECT_LE(used[r], caps[r] + 1e-9) << "link " << r;
  }
}

// Max-min property: you cannot raise any flow's rate without lowering that
// of a flow with an equal-or-smaller rate. We verify a necessary condition:
// every flow is either at its cap or crosses a saturated link where it has
// a maximal rate among that link's flows.
TEST(FairShare, MaxMinPropertyHolds) {
  std::vector<FairShareFlow> flows = {
      {{0, 1}, 0.0}, {{1, 2}, 0.0}, {{0, 2}, 0.0}, {{1}, 7.0}, {{2}, 0.0}};
  const std::vector<double> caps = {30.0, 25.0, 60.0};
  const auto rates = max_min_fair_rates(flows, caps);

  std::vector<double> used(caps.size(), 0.0);
  for (std::size_t f = 0; f < flows.size(); ++f) {
    for (auto r : flows[f].resources) used[r] += rates[f];
  }
  for (std::size_t f = 0; f < flows.size(); ++f) {
    if (flows[f].cap > 0.0 && rates[f] >= flows[f].cap - 1e-9) continue;
    bool bottlenecked = false;
    for (auto r : flows[f].resources) {
      if (used[r] >= caps[r] - 1e-9) {
        double max_on_link = 0.0;
        for (std::size_t g = 0; g < flows.size(); ++g) {
          for (auto rr : flows[g].resources) {
            if (rr == r) max_on_link = std::max(max_on_link, rates[g]);
          }
        }
        if (rates[f] >= max_on_link - 1e-9) bottlenecked = true;
      }
    }
    EXPECT_TRUE(bottlenecked) << "flow " << f << " rate " << rates[f];
  }
}

}  // namespace
}  // namespace netpp
