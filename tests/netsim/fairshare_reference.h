// The pre-optimization max-min solver, kept verbatim as the semantic
// reference for the equivalence property tests (fairshare_property_test,
// fairshare_soa_test). O(rounds x (links + flows)) progressive filling with
// per-round linear scans; the optimized solver must be bit-identical to
// this on every SIMD dispatch path — both perform the same IEEE arithmetic
// in the same order, so the tests compare with EXPECT_EQ, not EXPECT_NEAR.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

#include "netpp/netsim/fairshare.h"

namespace netpp::testing {

inline std::vector<double> max_min_fair_rates_reference(
    const std::vector<FairShareFlow>& flows,
    const std::vector<double>& capacities) {
  const std::size_t num_flows = flows.size();
  const std::size_t num_res = capacities.size();

  std::vector<double> rate(num_flows, 0.0);
  std::vector<bool> frozen(num_flows, false);
  std::vector<double> residual = capacities;
  std::vector<std::size_t> active_on(num_res, 0);

  std::vector<std::vector<std::size_t>> flows_on(num_res);
  for (std::size_t f = 0; f < num_flows; ++f) {
    for (std::size_t r : flows[f].resources) {
      flows_on[r].push_back(f);
      ++active_on[r];
    }
  }

  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::size_t remaining = num_flows;
  while (remaining > 0) {
    double link_share = kInf;
    std::size_t tight_link = num_res;
    for (std::size_t r = 0; r < num_res; ++r) {
      if (active_on[r] == 0) continue;
      const double share = residual[r] / static_cast<double>(active_on[r]);
      if (share < link_share) {
        link_share = share;
        tight_link = r;
      }
    }
    double cap_level = kInf;
    std::size_t capped_flow = num_flows;
    for (std::size_t f = 0; f < num_flows; ++f) {
      if (frozen[f]) continue;
      if (flows[f].cap > 0.0 && flows[f].cap < cap_level) {
        cap_level = flows[f].cap;
        capped_flow = f;
      }
    }
    if (tight_link == num_res && capped_flow == num_flows) break;
    if (cap_level <= link_share) {
      frozen[capped_flow] = true;
      rate[capped_flow] = cap_level;
      --remaining;
      for (std::size_t r : flows[capped_flow].resources) {
        residual[r] -= cap_level;
        if (residual[r] < 0.0) residual[r] = 0.0;
        --active_on[r];
      }
      continue;
    }
    for (std::size_t f : flows_on[tight_link]) {
      if (frozen[f]) continue;
      frozen[f] = true;
      rate[f] = link_share;
      --remaining;
      for (std::size_t r : flows[f].resources) {
        residual[r] -= link_share;
        if (residual[r] < 0.0) residual[r] = 0.0;
        --active_on[r];
      }
    }
  }
  return rate;
}

}  // namespace netpp::testing
