// The incremental reallocation fast paths must not change what the
// simulator computes: a run with incremental_reallocation on and one with
// it off see the same completions, the same per-flow FCTs, and the same
// link-utilization histories. The fast paths skip the solver only when the
// skipped solve would reproduce the current allocation, so agreement is
// expected to near-machine precision (the only divergence source is
// carried-rate bookkeeping drift, bounded by the solver's slack margin).
#include <gtest/gtest.h>

#include <map>

#include "netpp/netsim/flowsim.h"
#include "netpp/topo/builders.h"
#include "netpp/traffic/generators.h"

namespace netpp {
namespace {

using namespace netpp::literals;

struct RunResult {
  std::map<FlowId, double> fct;
  double mean_util = 0.0;
  std::size_t completed = 0;
  FlowSimulator::ReallocStats stats;
};

RunResult run_workload(const BuiltTopology& topo,
                       const std::vector<FlowSpec>& flows, Gbps cap,
                       bool incremental) {
  SimEngine engine;
  Router router{topo.graph};
  FlowSimulator::Config cfg;
  cfg.flow_rate_cap = cap;
  cfg.incremental_reallocation = incremental;
  FlowSimulator sim{topo.graph, router, engine, cfg};
  for (const auto& f : flows) sim.submit(f);
  engine.run();

  RunResult result;
  result.completed = sim.completed().size();
  for (const auto& record : sim.completed()) {
    result.fct[record.id] = record.fct().value();
  }
  double util = 0.0;
  const auto num_links = topo.graph.num_links();
  for (LinkId l = 0; l < num_links; ++l) {
    for (int dir = 0; dir < 2; ++dir) {
      util += sim.average_link_utilization(DirectedLink{l, dir});
    }
  }
  result.mean_util = util / static_cast<double>(num_links * 2);
  result.stats = sim.realloc_stats();
  return result;
}

void expect_equivalent(const RunResult& fast, const RunResult& full) {
  ASSERT_EQ(fast.completed, full.completed);
  ASSERT_EQ(fast.fct.size(), full.fct.size());
  for (const auto& [id, fct] : full.fct) {
    const auto it = fast.fct.find(id);
    ASSERT_NE(it, fast.fct.end()) << "flow " << id;
    EXPECT_NEAR(it->second, fct, 1e-9 * (1.0 + fct)) << "flow " << id;
  }
  EXPECT_NEAR(fast.mean_util, full.mean_util,
              1e-9 * (1.0 + full.mean_util));
}

TEST(FlowSimIncremental, NicBoundPoissonMatchesFullResolve) {
  // Uncongested NIC-capped regime: this is where the fast paths fire.
  const auto topo = build_fat_tree(4, 100_Gbps);
  PoissonTrafficConfig tcfg;
  tcfg.arrivals_per_second = 200.0;
  tcfg.duration = Seconds{4.0};
  tcfg.min_size = Bits::from_gigabits(0.5);
  tcfg.max_size = Bits::from_gigabits(10.0);
  tcfg.seed = 99;
  const auto flows = make_poisson_traffic(topo.hosts, tcfg);

  const auto fast = run_workload(topo, flows, 25_Gbps, true);
  const auto full = run_workload(topo, flows, 25_Gbps, false);

  expect_equivalent(fast, full);
  // The fast paths must actually engage in this regime...
  EXPECT_GT(fast.stats.fast_arrivals, 0u);
  EXPECT_GT(fast.stats.fast_departures, 0u);
  EXPECT_LT(fast.stats.full_solves, full.stats.full_solves);
  // ...and the control run must not take them.
  EXPECT_EQ(full.stats.fast_arrivals, 0u);
  EXPECT_EQ(full.stats.fast_departures, 0u);
}

TEST(FlowSimIncremental, CongestedUncappedMatchesFullResolve) {
  // No NIC cap: every completion frees a saturated bottleneck, so the fast
  // departure path must decline and results stay identical by construction.
  const auto topo = build_fat_tree(4, 100_Gbps);
  PoissonTrafficConfig tcfg;
  tcfg.arrivals_per_second = 150.0;
  tcfg.duration = Seconds{3.0};
  tcfg.min_size = Bits::from_gigabits(1.0);
  tcfg.max_size = Bits::from_gigabits(20.0);
  tcfg.seed = 7;
  const auto flows = make_poisson_traffic(topo.hosts, tcfg);

  const auto fast = run_workload(topo, flows, Gbps{0.0}, true);
  const auto full = run_workload(topo, flows, Gbps{0.0}, false);

  expect_equivalent(fast, full);
  // Uncapped arrivals can never take the arrival fast path.
  EXPECT_EQ(fast.stats.fast_arrivals, 0u);
}

TEST(FlowSimIncremental, OverloadedNicCappedMatchesFullResolve) {
  // NIC-capped but congested: access links saturate, so both fast paths
  // engage only sometimes — the mixed regime exercises the handoff between
  // fast and full events.
  const auto topo = build_leaf_spine(2, 2, 4, 100_Gbps, 100_Gbps);
  PoissonTrafficConfig tcfg;
  tcfg.arrivals_per_second = 400.0;
  tcfg.duration = Seconds{3.0};
  tcfg.min_size = Bits::from_gigabits(1.0);
  tcfg.max_size = Bits::from_gigabits(15.0);
  tcfg.seed = 1;
  const auto flows = make_poisson_traffic(topo.hosts, tcfg);

  const auto fast = run_workload(topo, flows, 40_Gbps, true);
  const auto full = run_workload(topo, flows, 40_Gbps, false);

  expect_equivalent(fast, full);
  EXPECT_GT(fast.stats.full_solves, 0u);
}

TEST(FlowSimIncremental, StatsCountEveryEvent) {
  // Every admit and every completion batch lands in exactly one bucket.
  const auto topo = build_fat_tree(4, 100_Gbps);
  MlTrafficConfig mcfg;
  mcfg.iterations = 3;
  mcfg.volume_per_host = Bits::from_gigabits(1.0);
  const auto traffic = make_ml_training_traffic(topo.hosts, mcfg);

  SimEngine engine;
  Router router{topo.graph};
  FlowSimulator::Config cfg;
  cfg.flow_rate_cap = 25_Gbps;
  FlowSimulator sim{topo.graph, router, engine, cfg};
  for (const auto& f : traffic.flows) sim.submit(f);
  engine.run();

  const auto& stats = sim.realloc_stats();
  EXPECT_GT(stats.full_solves + stats.fast_arrivals + stats.fast_departures,
            0u);
  EXPECT_EQ(sim.active_flows(), 0u);
  EXPECT_EQ(sim.completed().size(), traffic.flows.size());
}

}  // namespace
}  // namespace netpp
