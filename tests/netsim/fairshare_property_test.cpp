// Equivalence property test: the CSR + lazy-heap solver must be
// bit-identical to the original scan-based progressive-filling solver on
// randomized topologies and flow sets, including the awkward corners
// (capped flows, links with no flows, stalled zero-rate flows, empty
// paths, duplicate resources). "Bit-identical" is deliberate — both solvers
// perform the same arithmetic in the same order, so EXPECT_EQ on doubles,
// not EXPECT_NEAR.
#include "netpp/netsim/fairshare.h"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "fairshare_reference.h"
#include "netpp/sim/random.h"

namespace netpp {
namespace {

using netpp::testing::max_min_fair_rates_reference;

void expect_bit_identical(const std::vector<FairShareFlow>& flows,
                          const std::vector<double>& caps,
                          const char* what) {
  const auto expected = max_min_fair_rates_reference(flows, caps);
  const auto actual = max_min_fair_rates(flows, caps);
  ASSERT_EQ(actual.size(), expected.size()) << what;
  for (std::size_t f = 0; f < expected.size(); ++f) {
    EXPECT_EQ(actual[f], expected[f]) << what << ", flow " << f;
  }
}

std::vector<FairShareFlow> random_problem(Rng& rng, std::size_t num_res,
                                          std::size_t num_flows) {
  std::vector<FairShareFlow> flows;
  flows.reserve(num_flows);
  for (std::size_t f = 0; f < num_flows; ++f) {
    FairShareFlow flow;
    const auto path_len = static_cast<std::size_t>(rng.uniform_int(0, 4));
    for (std::size_t h = 0; h < path_len; ++h) {
      // Duplicates allowed on purpose: the solver must treat a flow listed
      // twice on a link exactly like the reference does.
      flow.resources.push_back(static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(num_res) - 1)));
    }
    const double roll = rng.uniform();
    if (roll < 0.3) {
      flow.cap = rng.uniform(0.1, 5.0);  // often binding
    } else if (roll < 0.5) {
      flow.cap = rng.uniform(50.0, 500.0);  // mostly inert
    }
    flows.push_back(std::move(flow));
  }
  return flows;
}

TEST(FairShareProperty, RandomizedBitIdenticalToReference) {
  Rng rng{0x5eedUL};
  for (int trial = 0; trial < 500; ++trial) {
    const auto num_res = static_cast<std::size_t>(rng.uniform_int(1, 12));
    const auto num_flows = static_cast<std::size_t>(rng.uniform_int(0, 40));
    std::vector<double> caps(num_res);
    for (auto& c : caps) c = rng.uniform(0.5, 100.0);
    const auto flows = random_problem(rng, num_res, num_flows);
    expect_bit_identical(flows, caps, "randomized trial");
    if (HasFatalFailure()) return;
  }
}

TEST(FairShareProperty, UniformCapsLikeTheFlowSimulator) {
  // The simulator's regime: every flow carries the same NIC cap.
  Rng rng{0xCAFEUL};
  for (int trial = 0; trial < 200; ++trial) {
    const auto num_res = static_cast<std::size_t>(rng.uniform_int(2, 16));
    const auto num_flows = static_cast<std::size_t>(rng.uniform_int(1, 60));
    std::vector<double> caps(num_res, 100.0);
    auto flows = random_problem(rng, num_res, num_flows);
    for (auto& flow : flows) flow.cap = 25.0;
    expect_bit_identical(flows, caps, "uniform caps trial");
    if (HasFatalFailure()) return;
  }
}

TEST(FairShareProperty, ZeroActiveLinkIsIgnored) {
  // Resource 1 has no flows; it must not affect the result.
  const std::vector<FairShareFlow> flows = {{{0}, 0.0}, {{0, 2}, 0.0}};
  expect_bit_identical(flows, {10.0, 1.0, 50.0}, "zero-active link");
}

TEST(FairShareProperty, StalledFlowsGetZero) {
  // Uncapped flows that cross no capacitated resource take the solver's
  // terminal break path and stall at rate 0 — even when mixed with real
  // link-crossing and capped flows that keep the filling loop busy.
  std::vector<FairShareFlow> flows;
  for (int i = 0; i < 4; ++i) flows.push_back({{0}, 2.5});
  flows.push_back({{0}, 0.0});
  flows.push_back({{0, 1}, 0.0});
  flows.push_back({{}, 0.0});  // stalled: no resources, no cap
  flows.push_back({{}, 0.0});
  const std::vector<double> caps = {10.0, 7.0};
  expect_bit_identical(flows, caps, "stalled flows");
  const auto rates = max_min_fair_rates(flows, caps);
  EXPECT_EQ(rates[6], 0.0);
  EXPECT_EQ(rates[7], 0.0);
  // The contended link's flows all land on its equal share instead.
  EXPECT_GT(rates[4], 0.0);
}

TEST(FairShareProperty, CappedFlowBelowAndAboveShare) {
  const std::vector<FairShareFlow> flows = {
      {{0}, 10.0}, {{0}, 0.0}, {{0}, 80.0}, {{}, 42.0}, {{}, 0.0}};
  expect_bit_identical(flows, {100.0}, "cap edge cases");
}

TEST(FairShareProperty, SolverWorkspaceReuseIsClean) {
  // One MaxMinSolver instance solving many different problems must give the
  // same answers as a fresh solver each time (no state leaks across solves).
  Rng rng{0xBEEFUL};
  MaxMinSolver reused;
  for (int trial = 0; trial < 100; ++trial) {
    const auto num_res = static_cast<std::size_t>(rng.uniform_int(1, 10));
    const auto num_flows = static_cast<std::size_t>(rng.uniform_int(0, 30));
    std::vector<double> caps(num_res);
    for (auto& c : caps) c = rng.uniform(1.0, 50.0);
    const auto flows = random_problem(rng, num_res, num_flows);

    std::vector<FairShareFlowView> views;
    views.reserve(flows.size());
    for (const auto& flow : flows) {
      views.push_back(
          {std::span<const std::size_t>(flow.resources), flow.cap});
    }
    const auto& from_reused = reused.solve(views, caps);
    const auto fresh = max_min_fair_rates(flows, caps);
    ASSERT_EQ(from_reused.size(), fresh.size());
    for (std::size_t f = 0; f < fresh.size(); ++f) {
      EXPECT_EQ(from_reused[f], fresh[f]) << "trial " << trial;
    }
  }
}

TEST(FairShareProperty, ViewApiMatchesVectorApi) {
  const std::vector<FairShareFlow> flows = {
      {{0, 1}, 0.0}, {{1, 2}, 3.0}, {{0, 2}, 0.0}};
  const std::vector<double> caps = {30.0, 25.0, 60.0};
  const auto from_vectors = max_min_fair_rates(flows, caps);

  std::vector<FairShareFlowView> views;
  for (const auto& flow : flows) {
    views.push_back({std::span<const std::size_t>(flow.resources), flow.cap});
  }
  MaxMinSolver solver;
  const auto& from_views = solver.solve(views, caps);
  ASSERT_EQ(from_views.size(), from_vectors.size());
  for (std::size_t f = 0; f < from_vectors.size(); ++f) {
    EXPECT_EQ(from_views[f], from_vectors[f]);
  }
}

TEST(FairShareProperty, InvalidInputsThrowLikeReference) {
  MaxMinSolver solver;
  const std::vector<double> bad_cap = {-1.0};
  const std::vector<double> good_cap = {100.0};
  const std::vector<std::size_t> out_of_range = {5};
  std::vector<FairShareFlowView> views = {
      {std::span<const std::size_t>(out_of_range), 0.0}};
  EXPECT_THROW(solver.solve(views, good_cap), std::out_of_range);
  views[0].resources = {};
  EXPECT_THROW(solver.solve(views, bad_cap), std::invalid_argument);
}

}  // namespace
}  // namespace netpp
