// Sharded flow simulation equivalence suite.
//
// The contracts under test (see netpp/netsim/sharded.h):
//   1. One shard is bit-identical to a plain FlowSimulator over the same
//      submissions — same ids, same completion times, same stats.
//   2. For a fixed shard count, results are bit-identical regardless of the
//      worker-thread count (1, 2, and 4 workers here; the TSan job runs
//      this file to prove the window phase is race-free).
//   3. Cross-shard flows obey the min-progress coupling: the end-to-end
//      completion time tracks the bottleneck half.
//   4. Mid-run faults (core kill, pod-local agg kill, recovery) keep every
//      shard's invariants intact and strand/resume flows correctly.
//   5. A run resumed from save_state/restore_state is bit-identical to the
//      uninterrupted run.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "netpp/netsim/flowsim.h"
#include "netpp/netsim/sharded.h"
#include "netpp/telemetry/export.h"
#include "netpp/sim/thread_budget.h"
#include "netpp/state/snapshot.h"
#include "netpp/topo/builders.h"
#include "netpp/topo/pods.h"
#include "netpp/traffic/generators.h"

namespace netpp {
namespace {

using namespace netpp::literals;

std::vector<FlowSpec> poisson_workload(const BuiltTopology& topo,
                                       double rate, double duration,
                                       std::uint64_t seed) {
  PoissonTrafficConfig tcfg;
  tcfg.arrivals_per_second = rate;
  tcfg.duration = Seconds{duration};
  tcfg.min_size = Bits::from_gigabits(0.2);
  tcfg.max_size = Bits::from_gigabits(4.0);
  tcfg.seed = seed;
  return make_poisson_traffic(topo.hosts, tcfg);
}

/// Bitwise comparison of two completion sequences.
void expect_identical_results(const ShardedFlowSimulator& a,
                              const std::vector<FlowRecord>& b_completed,
                              const SummaryStat& b_fct) {
  ASSERT_EQ(a.completed().size(), b_completed.size());
  for (std::size_t i = 0; i < b_completed.size(); ++i) {
    const FlowRecord& ra = a.completed()[i];
    const FlowRecord& rb = b_completed[i];
    ASSERT_EQ(ra.id, rb.id) << "record " << i;
    EXPECT_EQ(ra.finished.value(), rb.finished.value()) << "record " << i;
    EXPECT_EQ(ra.spec.src, rb.spec.src);
    EXPECT_EQ(ra.spec.dst, rb.spec.dst);
    EXPECT_EQ(ra.spec.tag, rb.spec.tag);
  }
  EXPECT_EQ(a.fct_stats().count(), b_fct.count());
  EXPECT_EQ(a.fct_stats().mean(), b_fct.mean());
  EXPECT_EQ(a.fct_stats().m2(), b_fct.m2());
  EXPECT_EQ(a.fct_stats().sum(), b_fct.sum());
}

// --- Pod partition / shard topology unit checks ---

TEST(PodPartition, FatTreeStructure) {
  const auto topo = build_fat_tree(4, 100_Gbps);
  const PodPartition p = make_pod_partition(topo.graph);
  EXPECT_EQ(p.num_pods, 4u);
  // k=4: each pod holds 2 edge + 2 agg switches and 4 hosts.
  for (const auto& pod : p.pod_nodes) EXPECT_EQ(pod.size(), 8u);
  // Every agg has k/2 = 2 core uplinks; 8 aggs -> 16 boundary links.
  EXPECT_EQ(p.boundary_links.size(), 16u);
  std::size_t cores = 0;
  for (NodeId n = 0; n < topo.graph.num_nodes(); ++n) {
    if (p.is_core(n)) {
      ++cores;
      EXPECT_GE(topo.graph.node(n).tier, 3);
    }
  }
  EXPECT_EQ(cores, 4u);
}

TEST(PodPartition, ContiguousAssignment) {
  const auto assign = assign_pods_contiguous(8, 4);
  EXPECT_EQ(assign, (std::vector<int>{0, 0, 1, 1, 2, 2, 3, 3}));
  const auto uneven = assign_pods_contiguous(5, 2);
  EXPECT_EQ(uneven, (std::vector<int>{0, 0, 0, 1, 1}));
  EXPECT_THROW(assign_pods_contiguous(4, 0), std::invalid_argument);
  EXPECT_THROW(assign_pods_contiguous(4, 5), std::invalid_argument);
}

TEST(ShardTopology, GatewayCollapse) {
  const auto topo = build_fat_tree(4, 100_Gbps);
  const PodPartition p = make_pod_partition(topo.graph);
  const auto assign = assign_pods_contiguous(p.num_pods, 2);
  const ShardTopology st = build_shard_topology(topo.graph, p, assign, 0);
  ASSERT_FALSE(st.verbatim());
  // Two pods of 8 nodes plus the gateway.
  EXPECT_EQ(st.graph.num_nodes(), 17u);
  // Four aggs in the shard, one gateway link each, at 2 x 100G aggregate.
  ASSERT_EQ(st.gateway_links.size(), 4u);
  for (const auto& gl : st.gateway_links) {
    EXPECT_EQ(gl.global_links.size(), 2u);
    EXPECT_DOUBLE_EQ(gl.total_capacity_bps, 200e9);
    EXPECT_DOUBLE_EQ(st.graph.link(gl.local_link).capacity.bits_per_second(),
                     200e9);
  }
  // Mappings are mutually inverse over the shard's nodes.
  for (NodeId local = 0; local < st.graph.num_nodes(); ++local) {
    const NodeId global = st.global_of_local[local];
    if (global == kInvalidNode) {
      EXPECT_EQ(local, st.gateway);
      continue;
    }
    EXPECT_EQ(st.local_of_global[global], local);
  }
}

// --- Contract 1: one shard == plain FlowSimulator, bitwise ---

TEST(ShardedFlowSim, SingleShardBitIdenticalToFlowSimulator) {
  const auto topo = build_fat_tree(4, 100_Gbps);
  const auto flows = poisson_workload(topo, 300.0, 2.0, 42);
  const Seconds horizon{3.5};

  SimEngine engine;
  Router router{topo.graph};
  FlowSimulator::Config cfg;
  cfg.flow_rate_cap = 25_Gbps;
  FlowSimulator plain{topo.graph, router, engine, cfg};
  for (const auto& f : flows) plain.submit(f);
  engine.run_until(horizon);

  ShardedFlowSimulator::Config scfg;
  scfg.num_shards = 1;
  scfg.shard.flow_rate_cap = 25_Gbps;
  ShardedFlowSimulator sharded{topo.graph, scfg};
  for (const auto& f : flows) sharded.submit(f);
  sharded.run_until(horizon);

  expect_identical_results(sharded, plain.completed(), plain.fct_stats());
  EXPECT_EQ(sharded.active_flows(), plain.active_flows());
  sharded.check_invariants();
}

TEST(ShardedFlowSim, SingleShardBitIdenticalUnderFaults) {
  const auto topo = build_fat_tree(4, 100_Gbps);
  const auto flows = poisson_workload(topo, 250.0, 2.0, 7);

  SimEngine engine;
  Router router{topo.graph};
  FlowSimulator::Config cfg;
  cfg.flow_rate_cap = 25_Gbps;
  cfg.strand_unroutable = true;
  FlowSimulator plain{topo.graph, router, engine, cfg};
  for (const auto& f : flows) plain.submit(f);

  ShardedFlowSimulator::Config scfg;
  scfg.num_shards = 1;
  scfg.shard.flow_rate_cap = 25_Gbps;
  scfg.shard.strand_unroutable = true;
  ShardedFlowSimulator sharded{topo.graph, scfg};
  for (const auto& f : flows) sharded.submit(f);

  // Kill an aggregation switch and a core mid-run, then recover both.
  const NodeId agg = topo.graph.nodes_at_tier(2).front();
  const NodeId core = topo.graph.nodes_at_tier(3).front();
  engine.run_until(Seconds{0.5});
  sharded.run_until(Seconds{0.5});
  plain.set_node_enabled(agg, false);
  plain.set_node_enabled(core, false);
  sharded.set_node_enabled(agg, false);
  sharded.set_node_enabled(core, false);
  engine.run_until(Seconds{1.2});
  sharded.run_until(Seconds{1.2});
  plain.set_node_enabled(agg, true);
  plain.set_node_enabled(core, true);
  sharded.set_node_enabled(agg, true);
  sharded.set_node_enabled(core, true);
  engine.run_until(Seconds{3.5});
  sharded.run_until(Seconds{3.5});

  expect_identical_results(sharded, plain.completed(), plain.fct_stats());
  EXPECT_EQ(sharded.stranded_flows(), plain.stranded_flows());
  EXPECT_EQ(sharded.realloc_stats().reroutes, plain.realloc_stats().reroutes);
  sharded.check_invariants();
}

// --- Contract 2: fixed shards, bit-identical across worker counts ---

TEST(ShardedFlowSim, BitIdenticalAcrossWorkerThreadCounts) {
  // Raise the process thread budget so the requested worker counts are
  // actually granted (the suite also runs on single-core CI hosts).
  thread_budget::set_pool_size(4);
  const auto topo = build_fat_tree(4, 100_Gbps);
  const auto flows = poisson_workload(topo, 400.0, 2.0, 123);
  const Seconds horizon{3.0};

  std::vector<FlowRecord> reference;
  SummaryStat reference_fct;
  for (const std::size_t threads : {1u, 2u, 4u}) {
    ShardedFlowSimulator::Config scfg;
    scfg.num_shards = 2;
    scfg.num_threads = threads;
    scfg.shard.flow_rate_cap = 25_Gbps;
    ShardedFlowSimulator sim{topo.graph, scfg};
    for (const auto& f : flows) sim.submit(f);
    sim.run_until(horizon);
    sim.check_invariants();
    if (threads == 1) {
      reference = sim.completed();
      reference_fct = sim.fct_stats();
      EXPECT_GT(reference.size(), 0u);
      continue;
    }
    expect_identical_results(sim, reference, reference_fct);
  }
}

// --- Contract 3: min-progress coupling across the gateway ---

TEST(ShardedFlowSim, CrossShardFlowTracksBottleneckHalf) {
  const auto topo = build_fat_tree(4, 100_Gbps);
  const NodeId src = topo.hosts.front();  // pod 0 -> shard 0
  const NodeId dst = topo.hosts.back();   // pod 3 -> shard 1

  // Degrade the destination host's access link to 5%: the egress half is
  // the 5 Gbps bottleneck while the ingress half could run at line rate.
  LinkId access = kInvalidLink;
  for (const Link& l : topo.graph.links()) {
    if (l.a == dst || l.b == dst) access = l.id;
  }
  ASSERT_NE(access, kInvalidLink);

  ShardedFlowSimulator::Config scfg;
  scfg.num_shards = 2;
  ShardedFlowSimulator sim{topo.graph, scfg};
  sim.set_link_capacity_factor(access, 0.05);
  sim.submit({src, dst, Bits::from_gigabits(3.0), Seconds{0.0}, 99});
  sim.run_until(Seconds{1.0});

  // Plain-simulator ground truth: 3 Gb over a 5 Gbps bottleneck = 0.6 s.
  ASSERT_EQ(sim.completed().size(), 1u);
  EXPECT_NEAR(sim.completed().front().finished.value(), 0.6, 1e-9);
  EXPECT_EQ(sim.completed().front().spec.tag, 99u);
  EXPECT_EQ(sim.flows_in_flight(), 0u);
  sim.check_invariants();
}

TEST(ShardedFlowSim, CrossShardConservationManyShards) {
  const auto topo = build_fat_tree(4, 100_Gbps);
  const auto flows = poisson_workload(topo, 400.0, 1.5, 5);

  ShardedFlowSimulator::Config scfg;
  scfg.num_shards = 4;  // one pod per shard: every inter-pod flow splits
  scfg.shard.flow_rate_cap = 25_Gbps;
  ShardedFlowSimulator sim{topo.graph, scfg};
  for (const auto& f : flows) sim.submit(f);
  sim.run_until(Seconds{20.0});

  // The workload is light and the horizon generous: everything finishes.
  EXPECT_EQ(sim.completed().size(), flows.size());
  EXPECT_EQ(sim.flows_in_flight(), 0u);
  EXPECT_EQ(sim.active_flows(), 0u);
  EXPECT_EQ(sim.fct_stats().count(), flows.size());
  sim.check_invariants();

  // The merged metric view agrees with the summed stats view.
  const auto metrics = sim.merged_metrics();
  double fast_arrivals = -1.0;
  for (const auto& m : metrics) {
    if (m.name == "netsim.realloc.fast_arrivals") fast_arrivals = m.value;
  }
  EXPECT_DOUBLE_EQ(fast_arrivals,
                   static_cast<double>(sim.realloc_stats().fast_arrivals));
}

// --- Contract 4: faults against the collapsed core ---

TEST(ShardedFlowSim, SpineKillStrandsAndRecovers) {
  const auto topo = build_fat_tree(4, 100_Gbps);
  const NodeId src = topo.hosts.front();
  const NodeId dst = topo.hosts.back();

  ShardedFlowSimulator::Config scfg;
  scfg.num_shards = 2;
  scfg.shard.strand_unroutable = true;
  ShardedFlowSimulator sim{topo.graph, scfg};
  sim.submit({src, dst, Bits::from_gigabits(400.0), Seconds{0.0}, 1});
  sim.run_until(Seconds{0.1});
  EXPECT_EQ(sim.stranded_flows(), 0u);

  // Kill the entire core: every gateway link loses all its capacity, both
  // halves strand, and the shard invariants must hold throughout.
  for (const NodeId core : topo.graph.nodes_at_tier(3)) {
    sim.set_node_enabled(core, false);
  }
  sim.run_until(Seconds{0.2});
  EXPECT_EQ(sim.stranded_flows(), 2u);  // both halves parked
  EXPECT_EQ(sim.completed().size(), 0u);
  sim.check_invariants();

  // Recovery resumes both halves with their remaining volume.
  for (const NodeId core : topo.graph.nodes_at_tier(3)) {
    sim.set_node_enabled(core, true);
  }
  sim.run_until(Seconds{10.0});
  EXPECT_EQ(sim.stranded_flows(), 0u);
  ASSERT_EQ(sim.completed().size(), 1u);
  EXPECT_GE(sim.realloc_stats().resumed, 2u);
  sim.check_invariants();
}

TEST(ShardedFlowSim, PartialCoreDegradationRescalesGateway) {
  const auto topo = build_fat_tree(4, 100_Gbps);
  ShardedFlowSimulator::Config scfg;
  scfg.num_shards = 2;
  ShardedFlowSimulator sim{topo.graph, scfg};

  // Degrading one of an agg's two core uplinks to 50% leaves the gateway
  // link at 75% of its 200G aggregate.
  const PodPartition& p = sim.partition();
  const LinkId boundary = p.boundary_links.front();
  sim.set_link_capacity_factor(boundary, 0.5);

  const ShardTopology& st = sim.shard_topology(0);
  bool found = false;
  for (const auto& gl : st.gateway_links) {
    for (const LinkId l : gl.global_links) {
      if (l != boundary) continue;
      found = true;
      EXPECT_DOUBLE_EQ(sim.shard(0).link_capacity_factor(gl.local_link),
                       0.75);
    }
  }
  EXPECT_TRUE(found);
  // Full restoration returns the gateway link to exactly 1.0.
  sim.set_link_capacity_factor(boundary, 1.0);
  for (const auto& gl : st.gateway_links) {
    for (const LinkId l : gl.global_links) {
      if (l != boundary) continue;
      EXPECT_DOUBLE_EQ(sim.shard(0).link_capacity_factor(gl.local_link), 1.0);
    }
  }
  sim.check_invariants();
}

// --- Contract 5: snapshot / resume bit-identity ---

TEST(ShardedFlowSim, SnapshotResumeBitIdentical) {
  const auto topo = build_fat_tree(4, 100_Gbps);
  const auto flows = poisson_workload(topo, 300.0, 2.0, 31);
  const Seconds pause{1.0};
  const Seconds horizon{3.0};

  ShardedFlowSimulator::Config scfg;
  scfg.num_shards = 2;
  scfg.shard.flow_rate_cap = 25_Gbps;

  // Uninterrupted run.
  ShardedFlowSimulator straight{topo.graph, scfg};
  for (const auto& f : flows) straight.submit(f);
  straight.run_until(horizon);

  // Interrupted twin: pause, snapshot, restore into a fresh simulator,
  // continue.
  ShardedFlowSimulator first{topo.graph, scfg};
  for (const auto& f : flows) first.submit(f);
  first.run_until(pause);
  state::SnapshotWriter writer;
  first.save_state(writer);

  ShardedFlowSimulator resumed{topo.graph, scfg};
  state::SnapshotReader reader{writer.buffer()};
  resumed.restore_state(reader);
  EXPECT_EQ(resumed.now().value(), pause.value());
  resumed.run_until(horizon);

  expect_identical_results(resumed, straight.completed(),
                           straight.fct_stats());
  EXPECT_EQ(resumed.active_flows(), straight.active_flows());
  resumed.check_invariants();
}

// --- Contract 6: merged-metrics export stability ---

std::vector<telemetry::MetricSample> run_and_merge(const BuiltTopology& topo,
                                                   std::size_t shards,
                                                   std::size_t threads) {
  const auto flows = poisson_workload(topo, 300.0, 1.5, 19);
  ShardedFlowSimulator::Config scfg;
  scfg.num_shards = shards;
  scfg.num_threads = threads;
  scfg.shard.flow_rate_cap = 25_Gbps;
  ShardedFlowSimulator sim{topo.graph, scfg};
  for (const auto& f : flows) sim.submit(f);
  sim.run_until(Seconds{6.0});
  return sim.merged_metrics();
}

TEST(ShardedFlowSim, MergedMetricsExportByteStable) {
  thread_budget::set_pool_size(4);
  const auto topo = build_fat_tree(4, 100_Gbps);

  // Counters survive the merge as exact integers: the double `value`
  // mirrors the integer `count` (never a shard-order-dependent double
  // sum), and the export serializes the integer field.
  const auto merged4 = run_and_merge(topo, 4, 1);
  ASSERT_FALSE(merged4.empty());
  for (const auto& m : merged4) {
    if (m.kind != telemetry::MetricKind::kCounter) continue;
    EXPECT_EQ(m.value, static_cast<double>(m.count)) << m.name;
  }

  // Metric order is name-sorted — the same schema regardless of how many
  // shards (each with its own registration order) fed the merge.
  const auto names_of = [](const std::vector<telemetry::MetricSample>& v) {
    std::vector<std::string> names;
    names.reserve(v.size());
    for (const auto& m : v) names.push_back(m.name);
    return names;
  };
  const auto names4 = names_of(merged4);
  EXPECT_TRUE(std::is_sorted(names4.begin(), names4.end()));
  EXPECT_EQ(names_of(run_and_merge(topo, 1, 1)), names4);
  EXPECT_EQ(names_of(run_and_merge(topo, 2, 1)), names4);

  // For a fixed shard count the run is bit-identical across worker counts,
  // so the serialized export must be byte-identical too.
  const std::string bytes1 = telemetry::to_metrics_json(merged4);
  EXPECT_EQ(telemetry::to_metrics_json(run_and_merge(topo, 4, 2)), bytes1);
  EXPECT_EQ(telemetry::to_metrics_json(run_and_merge(topo, 4, 4)), bytes1);
}

}  // namespace
}  // namespace netpp
