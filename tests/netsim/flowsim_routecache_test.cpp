// Route cache vs per-arrival BFS: Config::use_route_cache must be purely a
// performance knob. Cache on and cache off run the same simulation to the
// last bit (same paths, same completion times, same energy-relevant link
// histories), including through mid-run topology changes — plus the faults
// integration: epoch flushes are observable, rerouted flows use only
// surviving links, and parked switches stay dark through cached routing.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "netpp/netsim/flowsim.h"
#include "netpp/topo/builders.h"
#include "netpp/traffic/generators.h"

namespace netpp {
namespace {

using namespace netpp::literals;

std::vector<FlowSpec> poisson_workload(const BuiltTopology& topo,
                                       std::size_t flows, std::uint64_t seed) {
  PoissonTrafficConfig tcfg;
  tcfg.arrivals_per_second = 500.0;
  tcfg.duration = Seconds{static_cast<double>(flows) / 500.0};
  tcfg.pareto_alpha = 1.3;
  tcfg.min_size = Bits::from_gigabits(0.5);
  tcfg.max_size = Bits::from_gigabits(8.0);
  tcfg.seed = seed;
  return make_poisson_traffic(topo.hosts, tcfg);
}

NodeId pick_spine(const BuiltTopology& topo) {
  for (NodeId sw : topo.switches) {
    if (topo.graph.node(sw).tier == 2) return sw;
  }
  ADD_FAILURE() << "no spine-tier switch in topology";
  return kInvalidNode;
}

struct RunResult {
  std::vector<FlowRecord> completed;
  double fct_mean = 0.0;
  double fct_max = 0.0;
  FlowSimulator::ReallocStats stats;
};

RunResult run_sim(const BuiltTopology& topo, const std::vector<FlowSpec>& flows,
                  bool use_cache,
                  const std::function<void(SimEngine&, FlowSimulator&)>&
                      arrange = {}) {
  SimEngine engine;
  Router router{topo.graph};
  FlowSimulator::Config cfg;
  cfg.flow_rate_cap = Gbps{25.0};
  cfg.use_route_cache = use_cache;
  cfg.strand_unroutable = true;
  FlowSimulator sim{topo.graph, router, engine, cfg};
  if (arrange) arrange(engine, sim);
  for (const auto& spec : flows) sim.submit(spec);
  engine.run();
  RunResult out;
  out.completed = sim.completed();
  std::sort(out.completed.begin(), out.completed.end(),
            [](const FlowRecord& a, const FlowRecord& b) { return a.id < b.id; });
  out.fct_mean = sim.fct_stats().mean();
  out.fct_max = sim.fct_stats().max();
  out.stats = sim.realloc_stats();
  return out;
}

void expect_bit_identical(const RunResult& cached, const RunResult& plain) {
  ASSERT_EQ(cached.completed.size(), plain.completed.size());
  for (std::size_t i = 0; i < plain.completed.size(); ++i) {
    EXPECT_EQ(cached.completed[i].id, plain.completed[i].id);
    EXPECT_EQ(cached.completed[i].finished.value(),
              plain.completed[i].finished.value());
  }
  EXPECT_EQ(cached.fct_mean, plain.fct_mean);
  EXPECT_EQ(cached.fct_max, plain.fct_max);
  // Same solver trajectory, not merely the same endpoint.
  EXPECT_EQ(cached.stats.full_solves, plain.stats.full_solves);
  EXPECT_EQ(cached.stats.fast_arrivals, plain.stats.fast_arrivals);
  EXPECT_EQ(cached.stats.fast_departures, plain.stats.fast_departures);
}

TEST(FlowSimRouteCache, PoissonRunBitIdenticalCacheOnVsOff) {
  const auto topo = build_fat_tree(4, 25_Gbps);
  const auto flows = poisson_workload(topo, 600, 42);
  const RunResult cached = run_sim(topo, flows, /*use_cache=*/true);
  const RunResult plain = run_sim(topo, flows, /*use_cache=*/false);
  ASSERT_GT(cached.completed.size(), 500u);
  expect_bit_identical(cached, plain);
  // The knob actually switches implementations.
  EXPECT_GT(cached.stats.route_cache.hits, 0u);
  EXPECT_EQ(plain.stats.route_cache.hits, 0u);
  EXPECT_EQ(plain.stats.route_cache.misses, 0u);
}

TEST(FlowSimRouteCache, SpineKillMidRunBitIdenticalAndFlushed) {
  // Kill one spine mid-run (repair later): reroutes + strands + resumes all
  // go through cached routing, and the trajectory still matches the
  // BFS-per-arrival configuration bit for bit.
  const auto topo = build_leaf_spine(4, 2, 4, 25_Gbps, 100_Gbps);
  const NodeId spine = pick_spine(topo);
  const auto flows = poisson_workload(topo, 500, 7);
  const auto arrange = [spine](SimEngine& engine, FlowSimulator& sim) {
    engine.schedule_at(Seconds{0.3},
                       [&sim, spine] { sim.set_node_enabled(spine, false); });
    engine.schedule_at(Seconds{0.7},
                       [&sim, spine] { sim.set_node_enabled(spine, true); });
  };
  const RunResult cached = run_sim(topo, flows, /*use_cache=*/true, arrange);
  const RunResult plain = run_sim(topo, flows, /*use_cache=*/false, arrange);
  expect_bit_identical(cached, plain);
  EXPECT_EQ(cached.stats.topology_changes, 2u);
  EXPECT_EQ(cached.stats.reroutes, plain.stats.reroutes);
  EXPECT_GT(cached.stats.reroutes, 0u);
  // Both toggles were observed by later lookups: one flush per epoch jump.
  EXPECT_GE(cached.stats.route_cache.epoch_flushes, 2u);
}

TEST(FlowSimRouteCache, RerouteAfterSpineKillUsesOnlySurvivingLinks) {
  const auto topo = build_leaf_spine(4, 2, 4, 25_Gbps, 100_Gbps);
  const NodeId spine = pick_spine(topo);
  SimEngine engine;
  Router router{topo.graph};
  FlowSimulator::Config cfg;
  cfg.flow_rate_cap = Gbps{25.0};
  cfg.strand_unroutable = true;
  FlowSimulator sim{topo.graph, router, engine, cfg};

  bool checked = false;
  engine.schedule_at(Seconds{0.3}, [&] {
    sim.set_node_enabled(spine, false);
    // Immediately after the kill every flow has been rerouted onto the
    // surviving spine: the dead spine's links carry exactly nothing.
    for (LinkId lid = 0; lid < topo.graph.num_links(); ++lid) {
      const Link& link = topo.graph.link(lid);
      if (link.a != spine && link.b != spine) continue;
      for (int dir = 0; dir < 2; ++dir) {
        EXPECT_EQ(sim.directed_link_rate(DirectedLink{lid, dir}).value(), 0.0)
            << "link " << lid << " dir " << dir << " still carries traffic";
      }
    }
    EXPECT_GT(sim.active_flows(), 0u);
    checked = true;
  });
  const auto workload = poisson_workload(topo, 400, 9);
  for (const auto& spec : workload) sim.submit(spec);
  engine.run();
  EXPECT_TRUE(checked);
  const auto& stats = sim.realloc_stats();
  EXPECT_GT(stats.reroutes, 0u);
  EXPECT_GE(stats.route_cache.epoch_flushes, 1u);
  // Leaf-spine with 2 spines: killing one never disconnects leaf pairs.
  EXPECT_EQ(sim.stranded_flows(), 0u);
  EXPECT_EQ(sim.completed().size(), workload.size());
}

TEST(FlowSimRouteCache, ParkedSwitchStaysDarkThroughCachedRouting) {
  // PR 2's parked-switch invariant, now with cached routing in the path:
  // park a spine before any traffic, run a full workload, and verify its
  // links never carried a bit (cached path sets must respect the mask, and
  // no stale pre-park entry may leak traffic onto it).
  const auto topo = build_leaf_spine(4, 2, 4, 25_Gbps, 100_Gbps);
  const NodeId parked = pick_spine(topo);
  SimEngine engine;
  Router router{topo.graph};
  FlowSimulator::Config cfg;
  cfg.flow_rate_cap = Gbps{25.0};
  FlowSimulator sim{topo.graph, router, engine, cfg};
  sim.set_node_enabled(parked, false);
  const auto workload = poisson_workload(topo, 400, 11);
  for (const auto& spec : workload) sim.submit(spec);
  engine.run();

  EXPECT_EQ(sim.completed().size(), workload.size());  // survivors carry all
  for (LinkId lid = 0; lid < topo.graph.num_links(); ++lid) {
    const Link& link = topo.graph.link(lid);
    if (link.a != parked && link.b != parked) continue;
    for (int dir = 0; dir < 2; ++dir) {
      EXPECT_EQ(sim.average_link_utilization(DirectedLink{lid, dir}), 0.0);
    }
  }
  EXPECT_GT(sim.realloc_stats().route_cache.hits, 0u);
}

}  // namespace
}  // namespace netpp
