#include "netpp/netsim/flowsim.h"

#include <gtest/gtest.h>

#include "netpp/topo/builders.h"

namespace netpp {
namespace {

using namespace netpp::literals;

/// Two hosts on one leaf switch with 100 G links.
struct Dumbbell {
  BuiltTopology topo = build_leaf_spine(1, 1, 2, 100_Gbps, 100_Gbps);
  SimEngine engine;
  Router router{topo.graph};
  FlowSimulator sim{topo.graph, router, engine};
};

TEST(FlowSimulator, SingleFlowFinishesAtLineRate) {
  Dumbbell d;
  // 100 Gbit over a 100 Gbps path: exactly 1 s.
  d.sim.submit(FlowSpec{d.topo.hosts[0], d.topo.hosts[1],
                        Bits::from_gigabits(100.0), 0.0_s, 0});
  d.engine.run();
  ASSERT_EQ(d.sim.completed().size(), 1u);
  EXPECT_NEAR(d.sim.completed()[0].fct().value(), 1.0, 1e-6);
  EXPECT_EQ(d.sim.active_flows(), 0u);
}

TEST(FlowSimulator, TwoFlowsShareTheLink) {
  Dumbbell d;
  // Two concurrent 100 Gbit flows, same direction: each gets 50 G -> 2 s.
  d.sim.submit(FlowSpec{d.topo.hosts[0], d.topo.hosts[1],
                        Bits::from_gigabits(100.0), 0.0_s, 0});
  d.sim.submit(FlowSpec{d.topo.hosts[0], d.topo.hosts[1],
                        Bits::from_gigabits(100.0), 0.0_s, 1});
  d.engine.run();
  ASSERT_EQ(d.sim.completed().size(), 2u);
  for (const auto& r : d.sim.completed()) {
    EXPECT_NEAR(r.fct().value(), 2.0, 1e-6);
  }
}

TEST(FlowSimulator, OppositeDirectionsDoNotContend) {
  Dumbbell d;
  d.sim.submit(FlowSpec{d.topo.hosts[0], d.topo.hosts[1],
                        Bits::from_gigabits(100.0), 0.0_s, 0});
  d.sim.submit(FlowSpec{d.topo.hosts[1], d.topo.hosts[0],
                        Bits::from_gigabits(100.0), 0.0_s, 1});
  d.engine.run();
  for (const auto& r : d.sim.completed()) {
    EXPECT_NEAR(r.fct().value(), 1.0, 1e-6);
  }
}

TEST(FlowSimulator, LateArrivalReducesEarlierFlowRate) {
  Dumbbell d;
  // Flow A: 100 Gbit at t=0. Flow B: 50 Gbit at t=0.5.
  // A runs at 100 G for 0.5 s (50 Gbit left), then both at 50 G.
  // B finishes at 0.5 + 1.0 = 1.5; A finishes at the same time, 1.5 s.
  d.sim.submit(FlowSpec{d.topo.hosts[0], d.topo.hosts[1],
                        Bits::from_gigabits(100.0), 0.0_s, 0});
  d.sim.submit(FlowSpec{d.topo.hosts[0], d.topo.hosts[1],
                        Bits::from_gigabits(50.0), 0.5_s, 1});
  d.engine.run();
  ASSERT_EQ(d.sim.completed().size(), 2u);
  for (const auto& r : d.sim.completed()) {
    EXPECT_NEAR(r.finished.value(), 1.5, 1e-6) << "tag " << r.spec.tag;
  }
}

TEST(FlowSimulator, FlowRateCapThrottles) {
  FlowSimulator::Config config;
  config.flow_rate_cap = 25_Gbps;
  Dumbbell d;
  FlowSimulator sim{d.topo.graph, d.router, d.engine, config};
  sim.submit(FlowSpec{d.topo.hosts[0], d.topo.hosts[1],
                      Bits::from_gigabits(100.0), 0.0_s, 0});
  d.engine.run();
  ASSERT_EQ(sim.completed().size(), 1u);
  EXPECT_NEAR(sim.completed()[0].fct().value(), 4.0, 1e-6);
}

TEST(FlowSimulator, UnroutableFlowIsCounted) {
  Dumbbell d;
  const auto& adj = d.topo.graph.neighbors(d.topo.hosts[0]);
  d.router.set_link_enabled(adj[0].link, false);
  d.sim.submit(FlowSpec{d.topo.hosts[0], d.topo.hosts[1],
                        Bits::from_gigabits(1.0), 0.0_s, 0});
  d.engine.run();
  EXPECT_EQ(d.sim.unroutable_flows(), 1u);
  EXPECT_TRUE(d.sim.completed().empty());
}

TEST(FlowSimulator, UtilizationIsTracked) {
  Dumbbell d;
  double mid_util = -1.0;
  const auto& adj = d.topo.graph.neighbors(d.topo.hosts[0]);
  const LinkId access = adj[0].link;
  d.engine.schedule_at(0.5_s, [&] {
    // Host0 -> leaf is direction a->b or b->a depending on construction.
    const double u0 =
        d.sim.directed_link_utilization(DirectedLink{access, 0});
    const double u1 =
        d.sim.directed_link_utilization(DirectedLink{access, 1});
    mid_util = std::max(u0, u1);
  });
  d.sim.submit(FlowSpec{d.topo.hosts[0], d.topo.hosts[1],
                        Bits::from_gigabits(100.0), 0.0_s, 0});
  d.engine.run();
  EXPECT_NEAR(mid_util, 1.0, 1e-9);
  // After completion the link is idle again.
  const double u0 = d.sim.directed_link_utilization(DirectedLink{access, 0});
  const double u1 = d.sim.directed_link_utilization(DirectedLink{access, 1});
  EXPECT_DOUBLE_EQ(u0 + u1, 0.0);
}

TEST(FlowSimulator, AverageUtilizationOverWindow) {
  Dumbbell d;
  d.sim.submit(FlowSpec{d.topo.hosts[0], d.topo.hosts[1],
                        Bits::from_gigabits(100.0), 0.0_s, 0});
  d.engine.run();
  d.engine.run_until(2.0_s);  // 1 s busy, 1 s idle
  const auto& adj = d.topo.graph.neighbors(d.topo.hosts[0]);
  const double avg =
      d.sim.average_link_utilization(DirectedLink{adj[0].link, 0}) +
      d.sim.average_link_utilization(DirectedLink{adj[0].link, 1});
  EXPECT_NEAR(avg, 0.5, 1e-6);
}

TEST(FlowSimulator, NodeLoadReflectsTraffic) {
  Dumbbell d;
  double leaf_load = -1.0;
  const NodeId leaf = d.topo.graph.nodes_at_tier(1).at(0);
  d.engine.schedule_at(0.5_s, [&] { leaf_load = d.sim.node_load(leaf); });
  d.sim.submit(FlowSpec{d.topo.hosts[0], d.topo.hosts[1],
                        Bits::from_gigabits(100.0), 0.0_s, 0});
  d.engine.run();
  // The leaf has 3 links (1 spine + 2 hosts) = 6 directed; the flow crosses
  // 2 of them at full rate -> load = 2/6.
  EXPECT_NEAR(leaf_load, 2.0 / 6.0, 1e-9);
}

TEST(FlowSimulator, FctStatsAccumulate) {
  Dumbbell d;
  for (int i = 0; i < 5; ++i) {
    d.sim.submit(FlowSpec{d.topo.hosts[0], d.topo.hosts[1],
                          Bits::from_gigabits(10.0), Seconds{i * 10.0}, 0});
  }
  d.engine.run();
  EXPECT_EQ(d.sim.fct_stats().count(), 5u);
  EXPECT_NEAR(d.sim.fct_stats().mean(), 0.1, 1e-6);
}

TEST(FlowSimulator, EcmpSpreadsLoadAcrossFabric) {
  // k=4 fat tree, many cross-pod flows: at least 3 of 4 core switches carry
  // traffic at some point (hash spread).
  auto topo = build_fat_tree(4, 100_Gbps);
  SimEngine engine;
  Router router{topo.graph};
  FlowSimulator sim{topo.graph, router, engine};

  const auto cores = topo.graph.nodes_at_tier(3);
  std::vector<double> peak(cores.size(), 0.0);
  sim.set_load_listener([&](Seconds) {
    for (std::size_t c = 0; c < cores.size(); ++c) {
      peak[c] = std::max(peak[c], sim.node_load(cores[c]));
    }
  });
  for (int i = 0; i < 8; ++i) {
    sim.submit(FlowSpec{topo.hosts[i % 4],
                        topo.hosts[topo.hosts.size() - 1 - (i % 4)],
                        Bits::from_gigabits(50.0), 0.0_s,
                        static_cast<std::uint64_t>(i)});
  }
  engine.run();
  int used = 0;
  for (double p : peak) {
    if (p > 0.0) ++used;
  }
  EXPECT_GE(used, 3);
  EXPECT_EQ(sim.completed().size(), 8u);
}

TEST(FlowSimulator, InvalidSubmitsThrow) {
  Dumbbell d;
  EXPECT_THROW(d.sim.submit(FlowSpec{d.topo.hosts[0], d.topo.hosts[0],
                                     Bits{1.0}, 0.0_s, 0}),
               std::invalid_argument);
  EXPECT_THROW(d.sim.submit(FlowSpec{d.topo.hosts[0], 9999, Bits{1.0},
                                     0.0_s, 0}),
               std::out_of_range);
  EXPECT_THROW(d.sim.submit(FlowSpec{d.topo.hosts[0], d.topo.hosts[1],
                                     Bits{0.0}, 0.0_s, 0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace netpp
