// Fixed benchmark scenarios shared by every perf gate.
//
// The scale gate (bench_flowsim_scale), the telemetry overhead gate
// (bench_telemetry_overhead), the resilience sweep (bench_fault_resilience),
// the mechanism-composition sweep (bench_mech_composition) and the perf
// scoreboard (bench_scoreboard) must all score the *same* workloads, or the
// checked-in reference numbers in BENCH_flowsim.json stop being comparable
// across binaries. This header is the single definition of those scenarios;
// every seed and parameter here is load-bearing — changing one invalidates
// the recorded baseline (regenerate with tools/record_bench.sh).
//
// Header-only on purpose: each helper is `inline` and only the ones a bench
// actually calls are emitted, so a binary that never touches the fault or
// mechanism scenarios does not need netpp_faults / netpp_mech.
#pragma once

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <ctime>
#include <utility>
#include <vector>

#include "netpp/faults/experiment.h"
#include "netpp/mech/composite.h"
#include "netpp/netsim/fairshare.h"
#include "netpp/netsim/flowsim.h"
#include "netpp/netsim/sharded.h"
#include "netpp/sim/random.h"
#include "netpp/telemetry/telemetry.h"
#include "netpp/topo/builders.h"
#include "netpp/topo/pods.h"
#include "netpp/topo/route_cache.h"
#include "netpp/topo/routing.h"
#include "netpp/traffic/generators.h"

namespace netpp::bench {

// ---------------------------------------------------------------------------
// Pod fabric: the paper's HPN-pod shape scaled to fit CI — k=8 fat tree,
// 128 hosts, 100G links. Every flow-simulation gate runs on this topology.
// ---------------------------------------------------------------------------
inline const BuiltTopology& pod_topology() {
  static const BuiltTopology topo = build_fat_tree(8, Gbps{100.0});
  return topo;
}

// ---------------------------------------------------------------------------
// Solver snapshots: N ECMP-routed flows between random host pairs, solved
// once per iteration (capped = NIC-bound ML regime, uncapped =
// fabric-contended regime).
// ---------------------------------------------------------------------------
struct SolverSnapshot {
  std::vector<FairShareFlow> flows;
  std::vector<double> capacities;  // directed, bits/s
};

inline SolverSnapshot make_solver_snapshot(std::size_t num_flows,
                                           double cap_bps) {
  const auto& topo = pod_topology();
  const Router router{topo.graph};
  Rng rng{0xC0FFEEull + num_flows};

  SolverSnapshot snap;
  snap.capacities.reserve(topo.graph.num_links() * 2);
  for (const auto& link : topo.graph.links()) {
    for (int dir = 0; dir < 2; ++dir) {
      (void)dir;
      snap.capacities.push_back(link.capacity.bits_per_second());
    }
  }

  const auto num_hosts = static_cast<std::int64_t>(topo.hosts.size());
  snap.flows.reserve(num_flows);
  for (std::size_t i = 0; i < num_flows; ++i) {
    const NodeId src = topo.hosts[static_cast<std::size_t>(
        rng.uniform_int(0, num_hosts - 1))];
    NodeId dst = src;
    while (dst == src) {
      dst = topo.hosts[static_cast<std::size_t>(
          rng.uniform_int(0, num_hosts - 1))];
    }
    const auto path = router.ecmp_route(src, dst, i);
    FairShareFlow flow;
    flow.cap = cap_bps;
    NodeId at = path->src;
    for (LinkId lid : path->links) {
      const Link& link = topo.graph.link(lid);
      const int dir = (at == link.a) ? 0 : 1;
      flow.resources.push_back(DirectedLink{lid, dir}.index());
      at = link.other(at);
    }
    snap.flows.push_back(std::move(flow));
  }
  return snap;
}

/// N pseudo-random distinct host pairs for the routing-only family.
inline std::vector<std::pair<NodeId, NodeId>> make_host_pairs(std::size_t n) {
  const auto& topo = pod_topology();
  Rng rng{0xBADC0DEull + n};
  const auto num_hosts = static_cast<std::int64_t>(topo.hosts.size());
  std::vector<std::pair<NodeId, NodeId>> pairs;
  pairs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const NodeId src = topo.hosts[static_cast<std::size_t>(
        rng.uniform_int(0, num_hosts - 1))];
    NodeId dst = src;
    while (dst == src) {
      dst = topo.hosts[static_cast<std::size_t>(
          rng.uniform_int(0, num_hosts - 1))];
    }
    pairs.emplace_back(src, dst);
  }
  return pairs;
}

// ---------------------------------------------------------------------------
// End-to-end Poisson workload: arrivals sized so ~300 flows are active in
// steady state, bounded-Pareto sizes, NIC-capped at 25 G like the HPN-pod
// GPU hosts. `num_flows` scales duration, not intensity.
// ---------------------------------------------------------------------------
inline PoissonTrafficConfig poisson_config(std::size_t num_flows) {
  PoissonTrafficConfig tcfg;
  tcfg.arrivals_per_second = 2000.0;
  tcfg.duration = Seconds{static_cast<double>(num_flows) / 2000.0};
  tcfg.pareto_alpha = 1.3;
  tcfg.min_size = Bits::from_gigabits(1.0);
  tcfg.max_size = Bits::from_gigabits(25.0);
  tcfg.seed = 1234;
  return tcfg;
}

inline std::vector<FlowSpec> make_poisson_workload(std::size_t num_flows) {
  return make_poisson_traffic(pod_topology().hosts, poisson_config(num_flows));
}

struct PoissonRun {
  std::size_t completed = 0;
  std::uint64_t events = 0;
};

/// Runs one Poisson workload through the flow simulator on pod_topology().
inline PoissonRun run_poisson_workload(const std::vector<FlowSpec>& flows,
                                       bool use_route_cache = true,
                                       telemetry::Telemetry* tel = nullptr) {
  const auto& topo = pod_topology();
  SimEngine engine;
  Router router{topo.graph};
  FlowSimulator::Config cfg;
  cfg.flow_rate_cap = Gbps{25.0};
  cfg.use_route_cache = use_route_cache;
  cfg.telemetry = tel;
  FlowSimulator sim{topo.graph, router, engine, cfg};
  for (const auto& f : flows) sim.submit(f);
  PoissonRun out;
  out.events = engine.run();
  out.completed = sim.completed().size();
  return out;
}

// ---------------------------------------------------------------------------
// Telemetry overhead: the BM_FlowSimPoisson/10000 workload in "off" vs
// "idle" (registry attached, sink disabled) configurations.
// ---------------------------------------------------------------------------
inline constexpr std::size_t kTelemetryWorkloadFlows = 10000;

/// Idle-telemetry overhead gate threshold, percent (Release builds only).
inline constexpr double kTelemetryIdleGatePct = 2.0;

inline const std::vector<FlowSpec>& telemetry_workload() {
  static const std::vector<FlowSpec> flows =
      make_poisson_workload(kTelemetryWorkloadFlows);
  return flows;
}

inline telemetry::TelemetryConfig telemetry_idle_config() {
  telemetry::TelemetryConfig cfg;
  cfg.events = false;  // sink disabled: registry attached, nothing recorded
  return cfg;
}

inline telemetry::TelemetryConfig telemetry_active_config() {
  telemetry::TelemetryConfig cfg;
  cfg.events = true;
  cfg.sample_period = Seconds{0.01};
  return cfg;
}

/// Process-CPU time for one run: the overhead being gated is CPU work, and
/// CPU time is immune to the scheduler preemption that makes wall-clock
/// samples on shared runners swing by more than the 2% gate itself.
inline double time_telemetry_workload_once(telemetry::Telemetry* tel) {
  timespec start{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &start);
  const std::size_t completed =
      run_poisson_workload(telemetry_workload(), true, tel).completed;
  timespec stop{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &stop);
  benchmark::DoNotOptimize(completed);
  return static_cast<double>(stop.tv_sec - start.tv_sec) +
         static_cast<double>(stop.tv_nsec - start.tv_nsec) * 1e-9;
}

/// Interleaved best-of-N comparison; returns idle overhead in percent.
/// Fresh Telemetry per run so the event log never grows across runs.
inline double measure_idle_overhead_pct(int rounds) {
  if (rounds < 5) rounds = 5;  // ~150 ms per sample; mins need a few draws
  double best_off = 1e300;
  double best_idle = 1e300;
  // Warm-up run populates the static workload and touches the allocator.
  run_poisson_workload(telemetry_workload());
  for (int r = 0; r < rounds; ++r) {
    best_off = std::min(best_off, time_telemetry_workload_once(nullptr));
    telemetry::Telemetry tel{telemetry_idle_config()};
    best_idle = std::min(best_idle, time_telemetry_workload_once(&tel));
  }
  return (best_idle / best_off - 1.0) * 100.0;
}

// ---------------------------------------------------------------------------
// Sharded datacenter scenario: a standing population of NIC-capped flows on
// the k=8 pod fabric with a staggered completing subset. Every flow runs at
// the uniform 2 Mb/s cap (no link ever saturates), so each completion event
// costs one O(active) settle + completion scan — the cost sharding divides:
// each shard settles only its own resident flows. `total` sets the standing
// population (the 1M-concurrency gate), `completing` how many flows finish
// inside the horizon, i.e. how many O(active/shard) events the run pays.
// ~2.5% of flows are cross-pod, exercising the split-flow barrier path.
// ---------------------------------------------------------------------------
inline const Gbps kShardedFlowCap{0.002};     // 2 Mb/s per-flow NIC cap
inline const Seconds kShardedHorizon{0.5};    // 50 barriers at the default 10ms
inline constexpr std::size_t kSharded1MFlows = 1'000'000;
inline constexpr std::size_t kSharded1MCompleting = 12'000;
inline constexpr std::size_t kShardedSmokeFlows = 50'000;
inline constexpr std::size_t kShardedSmokeCompleting = 1'500;

inline std::vector<FlowSpec> make_sharded_workload(std::size_t total,
                                                   std::size_t completing) {
  const auto& topo = pod_topology();
  const PodPartition pods = make_pod_partition(topo.graph);
  std::vector<std::vector<NodeId>> pod_hosts(pods.num_pods);
  for (const NodeId h : topo.hosts) {
    pod_hosts[static_cast<std::size_t>(pods.pod_of_node[h])].push_back(h);
  }
  const auto num_pods = static_cast<std::int64_t>(pod_hosts.size());
  const double cap_bps = kShardedFlowCap.bits_per_second();

  Rng rng{0x5AADEDull + total};
  std::vector<FlowSpec> flows;
  flows.reserve(total);
  for (std::size_t i = 0; i < total; ++i) {
    const auto p =
        static_cast<std::size_t>(rng.uniform_int(0, num_pods - 1));
    const auto& local = pod_hosts[p];
    const auto local_n = static_cast<std::int64_t>(local.size());
    FlowSpec spec;
    spec.src = local[static_cast<std::size_t>(rng.uniform_int(0, local_n - 1))];
    if (rng.uniform_int(0, 39) == 0) {  // 2.5% cross-pod
      auto q = static_cast<std::size_t>(rng.uniform_int(0, num_pods - 2));
      if (q >= p) ++q;
      const auto& remote = pod_hosts[q];
      spec.dst = remote[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(remote.size()) - 1))];
    } else {
      spec.dst = spec.src;
      while (spec.dst == spec.src) {
        spec.dst =
            local[static_cast<std::size_t>(rng.uniform_int(0, local_n - 1))];
      }
    }
    // Completing flows finish at distinct staggered times strictly inside
    // the horizon; the persistent rest would finish at t=20s, far past it,
    // holding the standing population ~constant through the window.
    const double finish_at =
        i < completing ? kShardedHorizon.value() * static_cast<double>(i + 1) /
                             static_cast<double>(completing + 2)
                       : 20.0;
    spec.size = Bits{cap_bps * finish_at};
    spec.start = Seconds{0.0};
    spec.tag = i;
    flows.push_back(spec);
  }
  return flows;
}

struct ShardedRun {
  std::size_t completed = 0;
  std::size_t in_flight = 0;
};

/// One end-to-end sharded run on pod_topology(): submit everything at t=0,
/// advance to the horizon through the bounded-lag barrier loop.
inline ShardedRun run_sharded_workload(const std::vector<FlowSpec>& flows,
                                       std::size_t num_shards) {
  ShardedFlowSimulator::Config cfg;
  cfg.num_shards = num_shards;
  cfg.shard.flow_rate_cap = kShardedFlowCap;
  cfg.shard.use_route_cache = true;
  ShardedFlowSimulator sim{pod_topology().graph, cfg};
  for (const auto& f : flows) sim.submit(f);
  sim.run_until(kShardedHorizon);
  ShardedRun out;
  out.completed = sim.completed().size();
  out.in_flight = sim.flows_in_flight();
  return out;
}

// ---------------------------------------------------------------------------
// Fault storm: a 4x4 leaf-spine fabric running ring all-reduce training
// traffic under seeded fault injection.
// ---------------------------------------------------------------------------
inline constexpr std::uint64_t kFaultSeed = 0xfa017u;

struct FaultScenario {
  BuiltTopology topology;
  std::vector<FlowSpec> workload;
  std::vector<TrafficDemand> demands;
  Seconds horizon{};
};

inline FaultScenario make_fault_scenario() {
  FaultScenario s;
  s.topology = build_leaf_spine(4, 4, 4, Gbps{100.0}, Gbps{100.0});
  MlTrafficConfig traffic;
  traffic.compute_time = Seconds{0.3};
  traffic.comm_allowance = Seconds{0.5};
  traffic.volume_per_host = Bits::from_gigabits(12.0);
  traffic.collective = CollectiveKind::kRing;
  traffic.iterations = 6;
  s.workload = make_ml_training_traffic(s.topology.hosts, traffic).flows;
  // Steady-state demand matrix for tailoring: the ring at the burst rate.
  const auto& hosts = s.topology.hosts;
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    s.demands.push_back(
        TrafficDemand{hosts[i], hosts[(i + 1) % hosts.size()], Gbps{30.0}});
  }
  s.horizon = Seconds{5.0};
  return s;
}

/// Fault trace for the scenario; `seed` should be a pure function of the
/// failure-rate row (kFaultSeed + row index) so every policy in a sweep row
/// faces the same trace. mtbf_s <= 0 disables faults.
inline FaultSchedule make_fault_schedule(const FaultScenario& s, double mtbf_s,
                                         double mttr_s, std::uint64_t seed) {
  if (mtbf_s <= 0.0) return FaultSchedule{};
  FaultGeneratorConfig config;
  config.switches = DeviceReliability{Seconds{mtbf_s}, Seconds{mttr_s}};
  config.links = DeviceReliability{Seconds{mtbf_s * 2.0}, Seconds{mttr_s}};
  config.degraded_fraction = 0.25;
  config.horizon = s.horizon;
  config.seed = seed;
  return FaultGenerator{config}.generate(s.topology.graph);
}

/// The scoreboard's fault-storm cell: tailored fabric, re-tailor recovery
/// policy — the same cell BM_FaultExperiment times (mtbf=5s row).
inline FaultExperimentResult run_fault_storm(const FaultScenario& s,
                                             const FaultSchedule& schedule) {
  FaultExperimentConfig config;
  config.tailor = true;
  config.degraded.policy = DegradedPolicy::kRetailor;
  config.degraded.min_headroom = 0.0;
  config.degraded.wake_latency = Seconds::from_milliseconds(50.0);
  config.demands = s.demands;
  return run_fault_experiment(s.topology, s.workload, schedule, config);
}

// ---------------------------------------------------------------------------
// Composite mechanism stack: static tailoring + pipeline parking + rate
// adaptation on a k=4 fat tree running ML training traffic.
// ---------------------------------------------------------------------------
struct CompositeScenario {
  BuiltTopology topo;
  std::vector<FlowSpec> workload;
  std::vector<TrafficDemand> demands;
  CompositeConfig config;
  Seconds horizon{4.0};
};

inline CompositeScenario make_composite_scenario(double volume_gbit) {
  CompositeScenario sc;
  sc.topo = build_fat_tree(4, Gbps{100.0});
  MlTrafficConfig cfg;
  cfg.compute_time = Seconds{0.9};
  cfg.comm_allowance = Seconds{0.1};
  cfg.iterations = 4;
  cfg.volume_per_host = Bits::from_gigabits(volume_gbit);
  sc.workload = make_ml_training_traffic(sc.topo.hosts, cfg).flows;

  for (std::size_t i = 0; i < sc.topo.hosts.size(); ++i) {
    sc.demands.push_back(TrafficDemand{
        sc.topo.hosts[i], sc.topo.hosts[(i + 1) % sc.topo.hosts.size()],
        Gbps{5.0}});
  }
  sc.config.parking.switch_capacity = Gbps{4 * 100.0};
  sc.config.num_ocs_devices = 4;
  return sc;
}

}  // namespace netpp::bench
