// §4.4 design-space sweep: pipeline parking savings vs the latency/loss
// cost, across wake latencies and policies (reactive thresholds vs
// schedule-driven predictive). Answers the paper's "which pipeline to turn
// off, and when?" question quantitatively under its own power model.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "netpp/analysis/report.h"
#include "netpp/mech/parking.h"
#include "netpp/sim/sweep.h"

namespace {

using namespace netpp;
using namespace netpp::literals;

/// ML-phase trace: mostly idle with a communication burst each iteration.
/// Burst intensity cycles through 0.3 / 0.6 / 0.9 so threshold choices
/// actually matter (real collectives vary in size across iterations).
AggregateLoadTrace ml_trace(int iterations) {
  AggregateLoadTrace trace;
  const double bursts[] = {0.3, 0.6, 0.9};
  for (int k = 0; k < iterations; ++k) {
    trace.times.push_back(Seconds{k * 1.0});
    trace.loads.push_back(0.0);
    trace.times.push_back(Seconds{k * 1.0 + 0.9});
    trace.loads.push_back(bursts[k % 3]);
  }
  trace.end = Seconds{static_cast<double>(iterations)};
  return trace;
}

std::vector<LoadForecast> ml_forecast(int iterations) {
  std::vector<LoadForecast> forecast;
  const double bursts[] = {0.3, 0.6, 0.9};
  for (int k = 0; k < iterations; ++k) {
    forecast.push_back(LoadForecast{Seconds{k * 1.0}, 0.0});
    forecast.push_back(LoadForecast{Seconds{k * 1.0 + 0.9}, bursts[k % 3]});
  }
  return forecast;
}

void print_sweep() {
  netpp::bench::print_banner(
      "Sec. 4.4: parking policy sweep - ML phase trace (90% idle)");

  const auto trace = ml_trace(10);
  const auto forecast = ml_forecast(10);

  // Scenario fan-out: each wake latency evaluates both policies on one
  // SweepRunner worker; rows print in scenario order regardless of which
  // worker finishes first.
  const std::vector<double> wake_ms_values = {0.0, 0.1, 1.0, 10.0, 50.0};
  struct PolicyPair {
    ParkingResult reactive;
    ParkingResult predictive;
  };
  SweepRunner runner;
  const auto scenarios = runner.map<PolicyPair>(
      wake_ms_values.size(), [&](std::size_t index, Rng&) {
        ParkingConfig cfg;
        cfg.model = SwitchPowerModel{};
        cfg.wake_latency = Seconds::from_milliseconds(wake_ms_values[index]);
        return PolicyPair{
            simulate_parking_reactive(trace, cfg),
            simulate_parking_predictive(trace, forecast, cfg)};
      });

  Table table{{"Policy", "Wake latency", "Savings", "Max buffered",
               "Max added delay", "Dropped"}};
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const double wake_ms = wake_ms_values[i];
    const auto& reactive = scenarios[i].reactive;
    table.add_row({"reactive", fmt(wake_ms, 1) + " ms",
                   fmt_percent(reactive.savings_vs_all_on),
                   fmt(reactive.max_buffered.value() / 8e6, 2) + " MB",
                   to_string(reactive.max_added_delay),
                   fmt(reactive.dropped.value() / 8e6, 2) + " MB"});

    const auto& predictive = scenarios[i].predictive;
    table.add_row({"predictive", fmt(wake_ms, 1) + " ms",
                   fmt_percent(predictive.savings_vs_all_on),
                   fmt(predictive.max_buffered.value() / 8e6, 2) + " MB",
                   to_string(predictive.max_added_delay),
                   fmt(predictive.dropped.value() / 8e6, 2) + " MB"});
  }
  std::printf("%s", table.to_ascii().c_str());
  std::printf(
      "Reactive parking pays for wake latency with buffering (and loss when\n"
      "the circuit-switch buffer overflows); the predictive policy exploits\n"
      "the ML schedule to pre-wake and avoids both (Sec. 4.4).\n\n");

  netpp::bench::print_banner("Threshold sensitivity (reactive, 1 ms wake)");
  struct Band {
    double hi, lo;
  };
  const std::vector<Band> bands = {
      {0.95, 0.80}, {0.85, 0.60}, {0.70, 0.40}, {0.50, 0.20}};
  const auto band_results = runner.map<ParkingResult>(
      bands.size(), [&](std::size_t index, Rng&) {
        ParkingConfig cfg;
        cfg.model = SwitchPowerModel{};
        cfg.wake_latency = Seconds::from_milliseconds(1.0);
        cfg.hi_threshold = bands[index].hi;
        cfg.lo_threshold = bands[index].lo;
        return simulate_parking_reactive(trace, cfg);
      });

  Table thresh{{"hi/lo thresholds", "Savings", "Wakes", "Parks",
                "Mean active pipelines"}};
  for (std::size_t i = 0; i < bands.size(); ++i) {
    const auto& result = band_results[i];
    thresh.add_row({fmt(bands[i].hi, 2) + "/" + fmt(bands[i].lo, 2),
                    fmt_percent(result.savings_vs_all_on),
                    std::to_string(result.wake_transitions),
                    std::to_string(result.park_transitions),
                    fmt(result.mean_active_pipelines, 2)});
  }
  std::printf("%s", thresh.to_ascii().c_str());
}

void BM_ReactiveParking(benchmark::State& state) {
  const auto trace = ml_trace(10);
  ParkingConfig cfg;
  cfg.model = SwitchPowerModel{};
  for (auto _ : state) {
    auto result = simulate_parking_reactive(trace, cfg);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_ReactiveParking);

void BM_PredictiveParking(benchmark::State& state) {
  const auto trace = ml_trace(10);
  const auto forecast = ml_forecast(10);
  ParkingConfig cfg;
  cfg.model = SwitchPowerModel{};
  for (auto _ : state) {
    auto result = simulate_parking_predictive(trace, forecast, cfg);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_PredictiveParking);

}  // namespace

int main(int argc, char** argv) {
  print_sweep();
  return netpp::bench::run_benchmarks(argc, argv);
}
