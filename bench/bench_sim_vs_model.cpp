// Cross-validation: the paper's closed-form cluster power model (§2) vs the
// flow-level simulator, on a topology small enough that both describe the
// exact same network: a k=4 fat tree (16 hosts, 20 switches, 64 optical
// transceivers) running ring-all-reduce ML traffic at a 10% communication
// ratio.
//
// The analytic model assumes the *whole* fabric runs at max during the
// communication phase; the simulator activates only the devices actually on
// flow paths, so it reads slightly lower — the residual gap quantifies the
// conservatism of the paper's two-state assumption.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"
#include "netpp/analysis/report.h"
#include "netpp/analysis/savings.h"
#include "netpp/cluster/cluster.h"
#include "netpp/netsim/energy_tracker.h"
#include "netpp/topo/builders.h"
#include "netpp/traffic/generators.h"

namespace {

using namespace netpp;
using namespace netpp::literals;

constexpr double kSwitchMaxW = 180.0;  // small 4x100G edge device
constexpr double kNicMaxW = 8.6;
constexpr double kTransceiverMaxW = 4.0;

DeviceCatalog small_catalog() {
  DeviceCatalog::Config cfg;
  cfg.switch_max = Watts{kSwitchMaxW};
  cfg.switch_capacity = Gbps{400.0};  // radix 4 at 100 G
  cfg.nic_watts = {{100.0, kNicMaxW}};
  cfg.transceiver_watts = {{100.0, kTransceiverMaxW}};
  return DeviceCatalog{cfg};
}

struct SimResult {
  Watts average_network_power{};
  double efficiency = 0.0;
  Watts max_network_power{};
};

SimResult run_simulation(double proportionality) {
  const auto topo = build_fat_tree(4, 100_Gbps);
  SimEngine engine;
  Router router{topo.graph};
  FlowSimulator sim{topo.graph, router, engine};

  FabricEnergyTracker::Config tcfg;
  tcfg.network_proportionality = proportionality;
  tcfg.switch_max = Watts{kSwitchMaxW};
  tcfg.nic_max = Watts{kNicMaxW};
  tcfg.transceiver_max = Watts{kTransceiverMaxW};
  FabricEnergyTracker tracker{sim, tcfg};
  sim.set_load_listener(tracker.listener());
  tracker.on_load_change(0.0_s);

  // Ring all-reduce: 10 Gbit per flow over 100 G access links = 0.1 s of
  // communication per 0.9 s compute phase -> 10% ratio.
  MlTrafficConfig mcfg;
  mcfg.compute_time = 0.9_s;
  mcfg.comm_allowance = 0.1_s;
  mcfg.iterations = 10;
  const double n = 16.0;
  mcfg.volume_per_host = Bits::from_gigabits(10.0 * n / (2.0 * (n - 1.0)));
  const auto traffic = make_ml_training_traffic(topo.hosts, mcfg);
  for (const auto& flow : traffic.flows) sim.submit(flow);
  engine.run();
  const Seconds horizon{10.0};
  engine.run_until(horizon);
  tracker.on_load_change(horizon);

  SimResult out;
  out.average_network_power = tracker.average_network_power(horizon);
  out.efficiency = tracker.network_energy_efficiency(horizon);
  out.max_network_power = tracker.max_network_power();
  return out;
}

void print_comparison() {
  netpp::bench::print_banner(
      "Cross-validation: analytic cluster model (Sec. 2) vs flow simulator");

  const DeviceCatalog catalog = small_catalog();
  ClusterConfig ccfg;
  ccfg.num_gpus = 16.0;
  ccfg.bandwidth_per_gpu = 100_Gbps;
  ccfg.communication_ratio = 0.10;
  ccfg.catalog = &catalog;

  {
    const ClusterModel cluster{ccfg};
    std::printf(
        "Analytic inventory: %.0f switches, %.0f transceivers "
        "(explicit k=4 fat tree: 20 switches, 64 transceivers)\n\n",
        cluster.network().tree.switches, cluster.network().transceivers);
  }

  Table table{{"Proportionality", "Model avg net power (W)",
               "Simulated (W)", "Gap", "Model efficiency",
               "Simulated efficiency"}};
  for (double p : {0.10, 0.50, 1.00}) {
    ccfg.network_proportionality = p;
    const ClusterModel cluster{ccfg};
    const Watts model_avg =
        cluster.network_envelope().duty_cycle_average(0.10);
    const SimResult sim = run_simulation(p);
    table.add_row(
        {fmt_percent(p, 0), fmt(model_avg.value(), 1),
         fmt(sim.average_network_power.value(), 1),
         fmt_percent(1.0 - sim.average_network_power / model_avg),
         fmt_percent(cluster.network_energy_efficiency()),
         fmt_percent(sim.efficiency)});
  }
  std::printf("%s", table.to_ascii().c_str());
  std::printf(
      "The simulator reads slightly below the model: during communication\n"
      "only the devices on actual flow paths go to max power, while the\n"
      "closed-form model charges the whole fabric (conservative).\n\n");
}

void print_simulated_table3() {
  // Table 3, regenerated end-to-end from the simulator on the mini-pod:
  // total-cluster savings when network proportionality improves from 10%,
  // with the compute side added analytically (GPUs are not simulated).
  netpp::bench::print_banner(
      "Table 3 by simulation (16-GPU mini-pod, 100G)");

  const DeviceCatalog catalog = small_catalog();
  ClusterConfig ccfg;
  ccfg.num_gpus = 16.0;
  ccfg.bandwidth_per_gpu = 100_Gbps;
  ccfg.communication_ratio = 0.10;
  ccfg.catalog = &catalog;

  const Watts compute_avg =
      ClusterModel{ccfg}.compute_envelope().duty_cycle_average(0.90);
  const double sim_base =
      (compute_avg + run_simulation(0.10).average_network_power).value();

  Table table{{"Proportionality", "Analytic savings", "Simulated savings"}};
  for (double p : {0.20, 0.50, 0.85, 1.00}) {
    const auto cell = savings_at(ccfg, 100_Gbps, p, 0.10);
    const double sim_total =
        (compute_avg + run_simulation(p).average_network_power).value();
    table.add_row({fmt_percent(p, 0), fmt_percent(cell.savings_fraction),
                   fmt_percent(1.0 - sim_total / sim_base)});
  }
  std::printf("%s", table.to_ascii().c_str());
  std::printf(
      "The simulated savings track the analytic Table-3 methodology and run\n"
      "slightly higher: the simulator charges only the devices on actual\n"
      "flow paths during communication, so idle-power reductions weigh a\n"
      "little more.\n\n");
}

void BM_SimulatedIteration(benchmark::State& state) {
  for (auto _ : state) {
    auto result = run_simulation(0.10);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_SimulatedIteration);

}  // namespace

int main(int argc, char** argv) {
  print_comparison();
  print_simulated_table3();
  return netpp::bench::run_benchmarks(argc, argv);
}
