// Historical baseline: 802.3az Energy Efficient Ethernet. The paper notes
// EEE "became effectively obsolete" at modern speeds: this bench shows how
// savings collapse as utilization grows and how the wake penalty scales,
// plus the coalescing latency/energy trade-off.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"
#include "netpp/analysis/report.h"
#include "netpp/mech/eee.h"
#include "netpp/sim/random.h"

namespace {

using namespace netpp;
using namespace netpp::literals;

/// Poisson frame arrivals at a target utilization of the link.
std::vector<EeeFrame> poisson_frames(double utilization, Gbps rate,
                                     Seconds horizon, std::uint64_t seed) {
  Rng rng{seed};
  std::vector<EeeFrame> frames;
  const double frame_bits = 12000.0;  // 1500 B frames
  const double arrivals_per_s =
      utilization * rate.bits_per_second() / frame_bits;
  double t = 0.0;
  while (true) {
    t += rng.exponential(arrivals_per_s);
    if (t >= horizon.value() * 0.95) break;  // leave drain room
    frames.push_back(EeeFrame{Seconds{t}, Bits{frame_bits}});
  }
  return frames;
}

void print_sweep() {
  netpp::bench::print_banner(
      "802.3az EEE baseline: savings vs utilization (100G link, 4 W)");

  EeeConfig cfg;
  cfg.link_rate = 100_Gbps;
  cfg.active_power = 4.0_W;

  Table table{{"Utilization", "Energy savings", "LPI time", "Mean added delay",
               "Wakes/s"}};
  const Seconds horizon{1.0};
  for (double util : {0.001, 0.01, 0.05, 0.10, 0.30, 0.60}) {
    const auto frames = poisson_frames(util, cfg.link_rate, horizon, 99);
    const auto result = simulate_eee_link(cfg, frames, horizon);
    table.add_row({fmt_percent(util), fmt_percent(result.energy_savings_fraction),
                   fmt_percent(result.lpi_time_fraction),
                   to_string(result.mean_added_delay),
                   fmt(static_cast<double>(result.wake_transitions) /
                           horizon.value(),
                       0)});
  }
  std::printf("%s", table.to_ascii().c_str());
  std::printf(
      "EEE's savings depend on long idle gaps; Poisson traffic at even a few\n"
      "percent utilization keeps a fast link from sleeping long, matching\n"
      "the paper's remark that EEE lost its appeal at high speeds.\n\n");

  netpp::bench::print_banner("Coalescing trade-off (1% utilization)");
  const auto frames = poisson_frames(0.01, cfg.link_rate, horizon, 99);
  Table co{{"Coalescing timer", "Energy savings", "Mean added delay",
            "Wakes/s"}};
  for (double timer_us : {0.0, 10.0, 100.0, 1000.0}) {
    cfg.coalescing_timer = Seconds::from_microseconds(timer_us);
    const auto result = simulate_eee_link(cfg, frames, horizon);
    co.add_row({fmt(timer_us, 0) + " us",
                fmt_percent(result.energy_savings_fraction),
                to_string(result.mean_added_delay),
                fmt(static_cast<double>(result.wake_transitions), 0)});
  }
  std::printf("%s", co.to_ascii().c_str());
}

void BM_EeeSimulation(benchmark::State& state) {
  EeeConfig cfg;
  cfg.link_rate = 100_Gbps;
  cfg.active_power = 4.0_W;
  const auto frames = poisson_frames(0.05, cfg.link_rate, Seconds{1.0}, 7);
  for (auto _ : state) {
    auto result = simulate_eee_link(cfg, frames, Seconds{1.0});
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_EeeSimulation);

}  // namespace

int main(int argc, char** argv) {
  print_sweep();
  return netpp::bench::run_benchmarks(argc, argv);
}
