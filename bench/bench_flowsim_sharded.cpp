// Sharded-simulation scale gate: can the pod-sharded driver hold a
// datacenter-scale standing flow population, and what does sharding buy
// end-to-end on one workload?
//
// The scenario (bench/workloads.h, make_sharded_workload) puts a standing
// population of NIC-capped flows on the k=8 pod fabric with a staggered
// completing subset. Every completion event costs an O(active) settle +
// completion scan in the owning simulator, so sharding divides the dominant
// cost: S shards each settle active/S resident flows, and the completing
// events themselves land spread across shards. The speedup is algorithmic —
// it holds at one worker thread — and worker threads then parallelize the
// window phase on top of it.
//
//   - BM_ShardedMillion/S: the 1M-flow gate at S shards, one run per
//     iteration (Iterations(1): a run is seconds long and tears down a
//     seven-figure flow table; gbench repetition adds nothing). The
//     acceptance ratio is BM_ShardedMillion/1 vs BM_ShardedMillion/4.
//   - BM_ShardedSmoke/S: the same scenario at 50k flows — CI-sized; the
//     perf scoreboard's sharded_1m_smoke row measures this workload at
//     2 shards through the same run_sharded_workload helper.
//
// `--record` skips google-benchmark and prints key=value lines for
// tools/record_bench.sh to inject as context into BENCH_flowsim.json
// (sharded_1m_shard{1,4}_ms and the sharded_1m_speedup_x4 ratio).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <ctime>

#include "bench_util.h"
#include "workloads.h"

namespace {

using namespace netpp;

void BM_ShardedMillion(benchmark::State& state) {
  const auto flows = bench::make_sharded_workload(bench::kSharded1MFlows,
                                                  bench::kSharded1MCompleting);
  bench::ShardedRun last;
  for (auto _ : state) {
    last = bench::run_sharded_workload(
        flows, static_cast<std::size_t>(state.range(0)));
    benchmark::DoNotOptimize(last.completed);
  }
  state.counters["shards"] = static_cast<double>(state.range(0));
  state.counters["flows"] = static_cast<double>(flows.size());
  state.counters["completed"] = static_cast<double>(last.completed);
  state.counters["in_flight"] = static_cast<double>(last.in_flight);
}
BENCHMARK(BM_ShardedMillion)
    ->Arg(1)
    ->Arg(4)
    ->Arg(8)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_ShardedSmoke(benchmark::State& state) {
  const auto flows = bench::make_sharded_workload(
      bench::kShardedSmokeFlows, bench::kShardedSmokeCompleting);
  bench::ShardedRun last;
  for (auto _ : state) {
    last = bench::run_sharded_workload(
        flows, static_cast<std::size_t>(state.range(0)));
    benchmark::DoNotOptimize(last.completed);
  }
  state.counters["shards"] = static_cast<double>(state.range(0));
  state.counters["completed"] = static_cast<double>(last.completed);
}
BENCHMARK(BM_ShardedSmoke)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

double wall_ms_once(std::size_t shards,
                    const std::vector<netpp::FlowSpec>& flows) {
  timespec start{};
  clock_gettime(CLOCK_MONOTONIC, &start);
  const auto run = bench::run_sharded_workload(flows, shards);
  timespec stop{};
  clock_gettime(CLOCK_MONOTONIC, &stop);
  benchmark::DoNotOptimize(run.completed);
  return static_cast<double>(stop.tv_sec - start.tv_sec) * 1e3 +
         static_cast<double>(stop.tv_nsec - start.tv_nsec) / 1e6;
}

/// Record mode: one 1-shard and one 4-shard run of the 1M workload,
/// best-of-2 wall clock each, printed as context rows for record_bench.sh.
int record_main() {
  const auto flows = bench::make_sharded_workload(bench::kSharded1MFlows,
                                                  bench::kSharded1MCompleting);
  double s1 = 1e300;
  double s4 = 1e300;
  for (int round = 0; round < 2; ++round) {
    std::fprintf(stderr, "bench_flowsim_sharded: 1M record round %d...\n",
                 round + 1);
    const double a = wall_ms_once(1, flows);
    const double b = wall_ms_once(4, flows);
    if (a < s1) s1 = a;
    if (b < s4) s4 = b;
  }
  std::printf("sharded_1m_shard1_ms=%.1f\n", s1);
  std::printf("sharded_1m_shard4_ms=%.1f\n", s4);
  std::printf("sharded_1m_speedup_x4=%.2f\n", s1 / s4);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--record") == 0) return record_main();
  }
  netpp::bench::print_banner(
      "Sharded flow-simulation scale gate - k=8 fat tree, 8 pods");
  std::printf(
      "Standing NIC-capped population with a staggered completing subset;\n"
      "BM_ShardedMillion holds 1M+ concurrent flows and its 1-vs-4-shard\n"
      "ratio is the end-to-end sharding speedup. JSON:"
      " --benchmark_format=json.\n\n");
  return netpp::bench::run_benchmarks(argc, argv);
}
