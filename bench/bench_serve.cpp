// The serve batch-speedup gate: a warm QueryEngine answering a 100-query
// what-if batch must beat 100 cold one-shot runs by >= 10x.
//
// The batch is a realistic dashboard workload: 10 distinct what-ifs
// (mechanism stacks, OCS counts, domain budgets, fault runs on both
// backends, plus the analytics) asked 10 times each — panels re-asking
// their questions every refresh is the norm for a serving client. The warm
// side is one engine serving the whole batch, including its own warm-up:
// the first pass builds fault baselines and composite caches, later passes
// fork and reuse, and repeats come from the result cache. The cold side
// answers every query with a fresh engine, which is exactly the work an
// equivalent one-shot netpp_cli run does (minus process startup, so the
// comparison is conservative in the cold side's favor).
//
// Prints both sides and the speedup; in Release builds exits non-zero when
// the speedup falls under 10x (the acceptance floor for the serving
// subsystem). Wall-clock ratios on a shared runner are bursty, so the gate
// takes the best of up to --attempts runs — a real regression fails every
// attempt, a scheduler burst does not. Debug builds report but never
// enforce, like the scoreboard.
//
// Flags:  --queries=N    total batch size (default 100, rounded up to a
//                        multiple of the 10 distinct what-ifs)
//         --attempts=N   gate attempts (default 3)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <string>
#include <vector>

#include "netpp/serve/engine.h"
#include "netpp/serve/json.h"

namespace {

using netpp::serve::EngineConfig;
using netpp::serve::JsonValue;
using netpp::serve::QueryEngine;

const char* const kWhatIfs[] = {
    R"({"command":"faults","seed":7,"output":"csv"})",
    R"({"command":"faults","seed":7,"output":"metrics"})",
    R"({"command":"faults","seed":7,"backend":"sharded","shards":2,"output":"csv"})",
    R"({"command":"mech","iters":2,"output":"csv"})",
    R"({"command":"mech","stack":"dynamic","iters":2,"output":"csv"})",
    R"({"command":"mech","stack":"park","iters":2,"output":"csv"})",
    R"({"command":"mech","iters":2,"ocs":8,"output":"csv"})",
    R"({"command":"mech","iters":2,"pod_budget_w":500,"core_budget_w":200,"output":"csv"})",
    R"({"command":"savings","prop":0.85,"output":"csv"})",
    R"({"command":"cluster","gpus":8192,"gbps":800,"output":"csv"})",
};
constexpr std::size_t kNumWhatIfs = sizeof(kWhatIfs) / sizeof(kWhatIfs[0]);

double wall_now_ms() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<double>(ts.tv_sec) * 1e3 +
         static_cast<double>(ts.tv_nsec) / 1e6;
}

/// Asserts the response is an ok envelope (a failing query would make the
/// timing meaningless).
void require_ok(const JsonValue& response, const char* side) {
  const JsonValue* ok = response.find("ok");
  if (ok == nullptr || !ok->as_bool()) {
    std::fprintf(stderr, "bench_serve: %s query failed: %s\n", side,
                 response.dump().c_str());
    std::exit(1);
  }
}

/// One full measurement: a fresh warm engine serving the whole batch
/// (warm-up on the clock) vs a fresh engine per query. Returns the speedup.
double run_once(const std::vector<JsonValue>& queries) {
  // Warm side: one engine, one batch, warm-up included in the clock.
  JsonValue batch = JsonValue::make_array();
  for (const JsonValue& q : queries) batch.push_back(q);
  double start = wall_now_ms();
  QueryEngine warm;
  const JsonValue responses = warm.handle(batch);
  const double warm_ms = wall_now_ms() - start;
  for (const JsonValue& response : responses.as_array()) {
    require_ok(response, "warm");
  }

  // Cold side: a fresh engine per query, i.e. N one-shot runs.
  start = wall_now_ms();
  for (const JsonValue& q : queries) {
    QueryEngine cold;
    require_ok(cold.handle(q), "cold");
  }
  const double cold_ms = wall_now_ms() - start;

  const std::size_t total = queries.size();
  const double speedup = warm_ms > 0.0 ? cold_ms / warm_ms : 0.0;
  const auto stats = warm.stats();
  std::printf(
      "bench_serve: %zu-query batch (%zu distinct x %zu)\n"
      "  warm (one engine):   %10.2f ms  (%.0f qps)\n"
      "  cold (one-shot x%zu): %10.2f ms  (%.0f qps)\n"
      "  speedup: %.1fx (gate: >= 10x)\n"
      "  warm reuse: %zu result-cache hits, %zu baseline forks, "
      "%zu sim reuses, %zu stage reuses\n",
      total, kNumWhatIfs, total / kNumWhatIfs, warm_ms,
      1e3 * static_cast<double>(total) / warm_ms, total, cold_ms,
      1e3 * static_cast<double>(total) / cold_ms, speedup,
      stats.result_reuses, stats.baseline_forks, stats.sim_reuses,
      stats.stage_reuses);
  return speedup;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t total = 100;
  int attempts = 3;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--queries=", 10) == 0) {
      total = static_cast<std::size_t>(std::atoll(argv[i] + 10));
    } else if (std::strncmp(argv[i], "--attempts=", 11) == 0) {
      attempts = std::atoi(argv[i] + 11);
      if (attempts < 1) attempts = 1;
    } else {
      std::fprintf(stderr, "usage: %s [--queries=N] [--attempts=N]\n",
                   argv[0]);
      return 2;
    }
  }
  const std::size_t repeats = (total + kNumWhatIfs - 1) / kNumWhatIfs;
  total = repeats * kNumWhatIfs;

  std::vector<JsonValue> queries;
  queries.reserve(total);
  for (std::size_t r = 0; r < repeats; ++r) {
    for (const char* q : kWhatIfs) {
      queries.push_back(netpp::serve::parse_json(q));
    }
  }

  double best = 0.0;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    const double speedup = run_once(queries);
    if (speedup > best) best = speedup;
    if (best >= 10.0) break;
    if (attempt + 1 < attempts) {
      std::fprintf(stderr, "bench_serve: attempt %d under 10x; retrying...\n",
                   attempt + 1);
    }
  }

#ifdef NDEBUG
  if (best < 10.0) {
    std::fprintf(stderr,
                 "bench_serve: FAIL - warm batch speedup %.1fx is under the "
                 "10x gate after %d attempts\n",
                 best, attempts);
    return 1;
  }
#else
  std::printf("NOTE: debug build - gate reported but not enforced.\n");
#endif
  return 0;
}
