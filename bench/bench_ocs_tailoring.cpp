// §4.2 what-if: how much of a fat-tree fabric can OCS-based topology
// tailoring power off, as a function of the job's traffic intensity and
// placement locality? Also prints the reconfiguration-overhead argument
// (tens-of-ms OCS reconfig vs multi-hour jobs).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"
#include "netpp/analysis/report.h"
#include "netpp/mech/ocs.h"
#include "netpp/power/switch_model.h"
#include "netpp/traffic/generators.h"

namespace {

using namespace netpp;
using namespace netpp::literals;

std::vector<TrafficDemand> ring_demands(const BuiltTopology& topo,
                                        Gbps rate, int stride) {
  std::vector<TrafficDemand> demands;
  const auto& hosts = topo.hosts;
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    demands.push_back(TrafficDemand{
        hosts[i], hosts[(i + static_cast<std::size_t>(stride)) % hosts.size()],
        rate});
  }
  return demands;
}

std::vector<TrafficDemand> collective_demands(const BuiltTopology& topo,
                                               CollectiveKind kind,
                                               Gbps per_host_rate) {
  // Steady-state demand matrix of each collective, normalized so every host
  // sources `per_host_rate` in total.
  const auto& hosts = topo.hosts;
  const auto n = hosts.size();
  std::vector<TrafficDemand> demands;
  switch (kind) {
    case CollectiveKind::kRing:
      for (std::size_t i = 0; i < n; ++i) {
        demands.push_back(
            TrafficDemand{hosts[i], hosts[(i + 1) % n], per_host_rate});
      }
      break;
    case CollectiveKind::kHalvingDoubling: {
      std::size_t rounds = 0;
      for (std::size_t m = n; m > 1; m >>= 1) ++rounds;
      for (std::size_t r = 0; r < rounds; ++r) {
        const std::size_t stride = std::size_t{1} << r;
        const Gbps rate = per_host_rate *
                          (1.0 / static_cast<double>(std::size_t{2} << r)) *
                          (2.0 / (2.0 * (1.0 - 1.0 / static_cast<double>(n))));
        for (std::size_t i = 0; i < n; ++i) {
          if ((i ^ stride) < n) {
            demands.push_back(
                TrafficDemand{hosts[i], hosts[i ^ stride], rate});
          }
        }
      }
      break;
    }
    case CollectiveKind::kAllToAll:
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
          if (i == j) continue;
          demands.push_back(TrafficDemand{
              hosts[i], hosts[j],
              per_host_rate / static_cast<double>(n - 1)});
        }
      }
      break;
  }
  return demands;
}

void print_collective_locality() {
  netpp::bench::print_banner(
      "Collective pattern locality vs switches that can be parked (k=4)");
  const auto topo = build_fat_tree(4, 100_Gbps);  // 16 hosts (power of two)
  Table table{{"Collective", "Rate/host", "Demands", "Switches off",
               "Fraction off"}};
  struct Case {
    const char* name;
    CollectiveKind kind;
  };
  for (double rate : {20.0, 80.0}) {
    for (const Case c :
         {Case{"ring all-reduce", CollectiveKind::kRing},
          Case{"halving/doubling", CollectiveKind::kHalvingDoubling},
          Case{"all-to-all", CollectiveKind::kAllToAll}}) {
      const auto demands = collective_demands(topo, c.kind, Gbps{rate});
      const auto result = tailor_topology(topo, demands);
      table.add_row({c.name, fmt(rate, 0) + "G",
                     std::to_string(demands.size()),
                     std::to_string(result.powered_off.size()),
                     fmt_percent(result.switches_off_fraction)});
    }
  }
  std::printf("%s", table.to_ascii().c_str());
  std::printf(
      "Local collectives (ring) leave most of the fabric parkable; global\n"
      "ones (all-to-all) need it - the placement question of Sec. 4.2.\n\n");
}

void print_tailoring() {
  netpp::bench::print_banner(
      "Sec. 4.2: OCS topology tailoring on a k=6 fat tree (54 hosts)");

  const auto topo = build_fat_tree(6, 100_Gbps);
  const SwitchPowerModel model;
  std::printf("Fabric: %zu switches, idle draw %s each\n\n",
              topo.switches.size(), to_string(model.idle_power()).c_str());

  Table table{{"Workload", "Demand/host", "Switches off", "Fraction off",
               "Idle power saved (kW)"}};
  struct Case {
    const char* name;
    double gbps;
    int stride;
  };
  const Case cases[] = {
      {"ring, neighbours (local)", 5.0, 1},
      {"ring, neighbours (local)", 40.0, 1},
      {"ring, cross-pod (stride 9)", 5.0, 9},
      {"ring, cross-pod (stride 9)", 40.0, 9},
      {"ring, cross-pod (stride 27)", 80.0, 27},
  };
  for (const auto& c : cases) {
    const auto result =
        tailor_topology(topo, ring_demands(topo, Gbps{c.gbps}, c.stride));
    const Watts saved =
        model.idle_power() * static_cast<double>(result.powered_off.size());
    table.add_row({c.name, fmt(c.gbps, 0) + "G",
                   std::to_string(result.powered_off.size()),
                   fmt_percent(result.switches_off_fraction),
                   fmt(saved.kilowatts(), 2)});
  }
  std::printf("%s", table.to_ascii().c_str());

  netpp::bench::print_banner("Reconfiguration overhead (25 ms OCS)");
  const OcsOverheadModel ocs;
  Table overhead{{"Job duration", "Time overhead"}};
  overhead.add_row({"1 s", fmt_percent(ocs.time_overhead(Seconds{1.0}), 3)});
  overhead.add_row(
      {"1 min", fmt_percent(ocs.time_overhead(Seconds{60.0}), 4)});
  overhead.add_row(
      {"1 hour", fmt_percent(ocs.time_overhead(Seconds::from_hours(1.0)), 5)});
  overhead.add_row(
      {"1 day", fmt_percent(ocs.time_overhead(Seconds::from_hours(24.0)), 6)});
  std::printf("%s", overhead.to_ascii().c_str());
  std::printf(
      "The paper's point: for day-long training jobs, off-the-shelf OCS\n"
      "reconfiguration times are negligible; RotorNet/Sirius-class ns\n"
      "switching is not needed.\n\n");
}

void print_placement_question() {
  // §4.2: "Where should OCSs be added? It is trivial to optimize the
  // network topology by placing an OCS in front of every switch, but this
  // is a large overhead." Restrict which tiers are OCS-bypassable by
  // pinning the others and compare.
  netpp::bench::print_banner(
      "Where should OCSs be added? (k=6 fat tree, local ring at 5G/host)");
  const auto topo = build_fat_tree(6, 100_Gbps);
  const auto demands = ring_demands(topo, Gbps{5.0}, 1);
  const SwitchPowerModel model;

  struct Layer {
    const char* name;
    std::vector<int> pinned_tiers;
    int ocs_devices;  // rough: one OCS per bypassable switch group
  };
  const Layer layers[] = {
      {"cores only", {1, 2}, 9},
      {"cores + aggs", {1}, 27},
      {"everywhere", {}, 45},
  };
  Table table{{"OCS coverage", "Switches off", "Idle saved (kW)",
               "Net of OCS power (kW)"}};
  const OcsOverheadModel ocs;
  for (const auto& layer : layers) {
    TailorConfig cfg;
    for (int tier : layer.pinned_tiers) {
      for (NodeId sw : topo.graph.nodes_at_tier(tier)) {
        cfg.pinned.push_back(sw);
      }
    }
    const auto result = tailor_topology(topo, demands, cfg);
    const Watts saved =
        model.idle_power() * static_cast<double>(result.powered_off.size());
    const Watts net = ocs.net_power_savings(saved, layer.ocs_devices);
    table.add_row({layer.name, std::to_string(result.powered_off.size()),
                   fmt(saved.kilowatts(), 2), fmt(net.kilowatts(), 2)});
  }
  std::printf("%s", table.to_ascii().c_str());
  std::printf(
      "Core-only OCS captures most of the benefit for local traffic at a\n"
      "fraction of the OCS hardware - the diminishing-returns answer to\n"
      "the paper's placement question.\n\n");
}

void BM_TailorFatTreeK4(benchmark::State& state) {
  const auto topo = build_fat_tree(4, 100_Gbps);
  const auto demands = ring_demands(topo, 5_Gbps, 1);
  for (auto _ : state) {
    auto result = tailor_topology(topo, demands);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_TailorFatTreeK4);

void BM_TailorFatTreeK6(benchmark::State& state) {
  const auto topo = build_fat_tree(6, 100_Gbps);
  const auto demands = ring_demands(topo, 5_Gbps, 1);
  for (auto _ : state) {
    auto result = tailor_topology(topo, demands);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_TailorFatTreeK6);

}  // namespace

int main(int argc, char** argv) {
  print_tailoring();
  print_collective_locality();
  print_placement_question();
  return netpp::bench::run_benchmarks(argc, argv);
}
