// Shared helpers for the reproduction benches: every bench binary first
// prints the paper artifact it regenerates (same rows/series as the paper),
// then runs google-benchmark timings of the underlying computation.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

namespace netpp::bench {

inline void print_banner(const std::string& title) {
  std::string rule(title.size() + 4, '=');
  std::printf("%s\n= %s =\n%s\n", rule.c_str(), title.c_str(), rule.c_str());
}

/// Prints the reproduction table, then hands over to google-benchmark.
/// Call from main() after registering benchmarks.
inline int run_benchmarks(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace netpp::bench
