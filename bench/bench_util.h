// Shared helpers for the reproduction benches: every bench binary first
// prints the paper artifact it regenerates (same rows/series as the paper),
// then runs google-benchmark timings of the underlying computation.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

namespace netpp::bench {

inline void print_banner(const std::string& title) {
  std::string rule(title.size() + 4, '=');
  std::printf("%s\n= %s =\n%s\n", rule.c_str(), title.c_str(), rule.c_str());
}

/// Prints the reproduction table, then hands over to google-benchmark.
/// Call from main() after registering benchmarks.
inline int run_benchmarks(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  // The stock "library_build_type" context field describes how
  // libbenchmark itself was compiled, not this code. Record how the code
  // under test was built, so a checked-in JSON is self-describing (only
  // netpp_build_type=release numbers are valid baselines — see
  // bench/README.md).
#ifdef NDEBUG
  benchmark::AddCustomContext("netpp_build_type", "release");
#else
  benchmark::AddCustomContext("netpp_build_type", "debug");
#endif
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace netpp::bench
