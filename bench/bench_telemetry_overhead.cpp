// Telemetry overhead gate: the BM_FlowSimPoisson/10000 workload from
// bench_flowsim_scale (k=8 fat tree, Poisson arrivals, ~300 concurrent
// flows) in three telemetry configurations:
//
//   - off:    no Telemetry attached (counters land in the simulator-private
//             registry; the seed configuration every other bench runs in).
//   - idle:   a Telemetry bundle attached, but the event log disabled and no
//             sampler — the "compiled in, sink disabled" mode. The gate
//             asserts this stays within 2% of `off` in Release builds: the
//             only extra cost allowed is the pointer indirection into a
//             shared registry.
//   - active: event log enabled and a 10 ms sampler — the full-observability
//             mode, reported for context (not gated).
//
// The gate itself runs before the google-benchmark timings: interleaved
// best-of-N wall-clock runs of off/idle (min is the noise-robust
// statistic). On failure the binary exits non-zero, so wiring it into the
// Release bench smoke job makes overhead regressions fail CI. Record the
// measured number in BENCH_flowsim.json when regenerating it:
//
//   pct=$(./bench/bench_telemetry_overhead --gate-only)
//   ./bench/bench_flowsim_scale --benchmark_format=json
//     --benchmark_out=BENCH_flowsim.json
//     --benchmark_context=telemetry_idle_overhead_pct=$pct
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "netpp/netsim/flowsim.h"
#include "netpp/telemetry/telemetry.h"
#include "netpp/topo/builders.h"
#include "netpp/traffic/generators.h"

namespace {

using namespace netpp;

constexpr std::size_t kFlows = 10000;

const BuiltTopology& pod_topology() {
  static const BuiltTopology topo = build_fat_tree(8, Gbps{100.0});
  return topo;
}

// Identical workload to bench_flowsim_scale's BM_FlowSimPoisson/10000.
const std::vector<FlowSpec>& poisson_workload() {
  static const std::vector<FlowSpec> flows = [] {
    PoissonTrafficConfig tcfg;
    tcfg.arrivals_per_second = 2000.0;
    tcfg.duration = Seconds{static_cast<double>(kFlows) / 2000.0};
    tcfg.pareto_alpha = 1.3;
    tcfg.min_size = Bits::from_gigabits(1.0);
    tcfg.max_size = Bits::from_gigabits(25.0);
    tcfg.seed = 1234;
    return make_poisson_traffic(pod_topology().hosts, tcfg);
  }();
  return flows;
}

std::size_t run_workload(telemetry::Telemetry* tel) {
  const auto& topo = pod_topology();
  SimEngine engine;
  Router router{topo.graph};
  FlowSimulator::Config cfg;
  cfg.flow_rate_cap = Gbps{25.0};
  cfg.telemetry = tel;
  FlowSimulator sim{topo.graph, router, engine, cfg};
  for (const auto& f : poisson_workload()) sim.submit(f);
  engine.run();
  return sim.completed().size();
}

double time_once(telemetry::Telemetry* tel) {
  const auto start = std::chrono::steady_clock::now();
  const std::size_t completed = run_workload(tel);
  const auto stop = std::chrono::steady_clock::now();
  benchmark::DoNotOptimize(completed);
  return std::chrono::duration<double>(stop - start).count();
}

telemetry::TelemetryConfig idle_config() {
  telemetry::TelemetryConfig cfg;
  cfg.events = false;  // sink disabled: registry attached, nothing recorded
  return cfg;
}

telemetry::TelemetryConfig active_config() {
  telemetry::TelemetryConfig cfg;
  cfg.events = true;
  cfg.sample_period = Seconds{0.01};
  return cfg;
}

/// Interleaved best-of-N comparison; returns idle overhead in percent.
/// Fresh Telemetry per run so the event log never grows across runs.
double measure_idle_overhead_pct(int rounds) {
  double best_off = 1e300;
  double best_idle = 1e300;
  // Warm-up run populates the static workload and touches the allocator.
  run_workload(nullptr);
  for (int r = 0; r < rounds; ++r) {
    best_off = std::min(best_off, time_once(nullptr));
    telemetry::Telemetry tel{idle_config()};
    best_idle = std::min(best_idle, time_once(&tel));
  }
  return (best_idle / best_off - 1.0) * 100.0;
}

void BM_FlowSimPoissonTelemetryOff(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_workload(nullptr));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kFlows));
}
BENCHMARK(BM_FlowSimPoissonTelemetryOff)->Unit(benchmark::kMillisecond);

void BM_FlowSimPoissonTelemetryIdle(benchmark::State& state) {
  for (auto _ : state) {
    telemetry::Telemetry tel{idle_config()};
    benchmark::DoNotOptimize(run_workload(&tel));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kFlows));
}
BENCHMARK(BM_FlowSimPoissonTelemetryIdle)->Unit(benchmark::kMillisecond);

void BM_FlowSimPoissonTelemetryActive(benchmark::State& state) {
  std::size_t events = 0;
  for (auto _ : state) {
    telemetry::Telemetry tel{active_config()};
    tel.sampler().track("netsim.active_flows");
    benchmark::DoNotOptimize(run_workload(&tel));
    events = tel.events().size();
  }
  state.counters["events"] = static_cast<double>(events);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kFlows));
}
BENCHMARK(BM_FlowSimPoissonTelemetryActive)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  constexpr double kGatePct = 2.0;
  bool gate_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--gate-only") == 0) {
      gate_only = true;
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      break;
    }
  }

  const double pct = measure_idle_overhead_pct(gate_only ? 5 : 7);
  if (gate_only) {
    // Machine-readable: just the number, for --benchmark_context capture.
    std::printf("%.2f\n", pct);
  } else {
    netpp::bench::print_banner(
        "Telemetry overhead gate - BM_FlowSimPoisson/10000 workload");
    std::printf(
        "idle-telemetry overhead (attached registry, sink disabled) vs no\n"
        "telemetry: %+.2f%% (gate: < %.0f%%, best-of-N interleaved)\n\n",
        pct, kGatePct);
  }

#ifdef NDEBUG
  const bool gated = true;
#else
  // Debug builds are not representative (no inlining of the handle hot
  // path); measure but do not enforce.
  const bool gated = false;
  if (!gate_only) {
    std::printf("NOTE: debug build - gate reported but not enforced.\n\n");
  }
#endif
  if (gated && pct >= kGatePct) {
    std::fprintf(stderr,
                 "FAIL: idle telemetry overhead %.2f%% >= %.2f%% gate\n", pct,
                 kGatePct);
    return 1;
  }
  if (gate_only) return 0;

  benchmark::AddCustomContext("telemetry_idle_overhead_pct",
                              std::to_string(pct));
  return netpp::bench::run_benchmarks(argc, argv);
}
