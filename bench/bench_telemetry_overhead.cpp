// Telemetry overhead gate: the BM_FlowSimPoisson/10000 workload from
// bench/workloads.h (k=8 fat tree, Poisson arrivals, ~300 concurrent
// flows) in three telemetry configurations:
//
//   - off:    no Telemetry attached (counters land in the simulator-private
//             registry; the seed configuration every other bench runs in).
//   - idle:   a Telemetry bundle attached, but the event log disabled and no
//             sampler — the "compiled in, sink disabled" mode. The gate
//             asserts this stays within 2% of `off` in Release builds: the
//             only extra cost allowed is the pointer indirection into a
//             shared registry.
//   - active: event log enabled and a 10 ms sampler — the full-observability
//             mode, reported for context (not gated).
//
// The gate itself runs before the google-benchmark timings: interleaved
// best-of-N wall-clock runs of off/idle (min is the noise-robust
// statistic). On failure the binary exits non-zero. The same measurement is
// one row of the perf scoreboard (bench_scoreboard), which is what CI runs;
// this binary remains the focused gate plus the off/idle/active timings.
// tools/record_bench.sh captures the measured number into
// BENCH_flowsim.json via:
//
//   pct=$(./bench/bench_telemetry_overhead --gate-only)
//   ./bench/bench_flowsim_scale --benchmark_format=json
//     --benchmark_out=BENCH_flowsim.json
//     --benchmark_context=telemetry_idle_overhead_pct=$pct
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <string>

#include "bench_util.h"
#include "netpp/telemetry/telemetry.h"
#include "workloads.h"

namespace {

using namespace netpp;

void BM_FlowSimPoissonTelemetryOff(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bench::run_poisson_workload(bench::telemetry_workload()).completed);
  }
  state.SetItemsProcessed(
      state.iterations() *
      static_cast<std::int64_t>(bench::kTelemetryWorkloadFlows));
}
BENCHMARK(BM_FlowSimPoissonTelemetryOff)->Unit(benchmark::kMillisecond);

void BM_FlowSimPoissonTelemetryIdle(benchmark::State& state) {
  for (auto _ : state) {
    telemetry::Telemetry tel{bench::telemetry_idle_config()};
    benchmark::DoNotOptimize(
        bench::run_poisson_workload(bench::telemetry_workload(), true, &tel)
            .completed);
  }
  state.SetItemsProcessed(
      state.iterations() *
      static_cast<std::int64_t>(bench::kTelemetryWorkloadFlows));
}
BENCHMARK(BM_FlowSimPoissonTelemetryIdle)->Unit(benchmark::kMillisecond);

void BM_FlowSimPoissonTelemetryActive(benchmark::State& state) {
  std::size_t events = 0;
  for (auto _ : state) {
    telemetry::Telemetry tel{bench::telemetry_active_config()};
    tel.sampler().track("netsim.active_flows");
    benchmark::DoNotOptimize(
        bench::run_poisson_workload(bench::telemetry_workload(), true, &tel)
            .completed);
    events = tel.events().size();
  }
  state.counters["events"] = static_cast<double>(events);
  state.SetItemsProcessed(
      state.iterations() *
      static_cast<std::int64_t>(bench::kTelemetryWorkloadFlows));
}
BENCHMARK(BM_FlowSimPoissonTelemetryActive)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  bool gate_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--gate-only") == 0) {
      gate_only = true;
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      break;
    }
  }

  const double pct = bench::measure_idle_overhead_pct(gate_only ? 5 : 7);
  if (gate_only) {
    // Machine-readable: just the number, for --benchmark_context capture.
    std::printf("%.2f\n", pct);
  } else {
    netpp::bench::print_banner(
        "Telemetry overhead gate - BM_FlowSimPoisson/10000 workload");
    std::printf(
        "idle-telemetry overhead (attached registry, sink disabled) vs no\n"
        "telemetry: %+.2f%% (gate: < %.0f%%, best-of-N interleaved)\n\n",
        pct, bench::kTelemetryIdleGatePct);
  }

#ifdef NDEBUG
  const bool gated = true;
#else
  // Debug builds are not representative (no inlining of the handle hot
  // path); measure but do not enforce.
  const bool gated = false;
  if (!gate_only) {
    std::printf("NOTE: debug build - gate reported but not enforced.\n\n");
  }
#endif
  if (gated && pct >= bench::kTelemetryIdleGatePct) {
    std::fprintf(stderr,
                 "FAIL: idle telemetry overhead %.2f%% >= %.2f%% gate\n", pct,
                 bench::kTelemetryIdleGatePct);
    return 1;
  }
  if (gate_only) return 0;

  benchmark::AddCustomContext("telemetry_idle_overhead_pct",
                              std::to_string(pct));
  return netpp::bench::run_benchmarks(argc, argv);
}
