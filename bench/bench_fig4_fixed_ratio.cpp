// Reproduces paper Figure 4: iteration-time speedup (%) with a fixed 10%
// communication ratio under a fixed power budget, relative to a network with
// zero power proportionality at the same bandwidth.
//
// Paper claims to reproduce: higher bandwidth gains more from
// proportionality; 50% proportionality on an 800 G network enables a ~10%
// speedup.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "netpp/analysis/report.h"
#include "netpp/analysis/speedup.h"

namespace {

using namespace netpp;
using namespace netpp::literals;

const std::vector<Gbps> kBandwidths = {100_Gbps, 200_Gbps, 400_Gbps, 800_Gbps,
                                       1600_Gbps};

std::vector<double> proportionality_sweep() {
  std::vector<double> out;
  for (int i = 0; i <= 20; ++i) out.push_back(i * 0.05);
  return out;
}

void print_figure4() {
  netpp::bench::print_banner(
      "Figure 4: fixed comm ratio (10%) - speedup vs 0% proportionality");

  const BudgetSolver solver = BudgetSolver::paper_baseline();
  const auto props = proportionality_sweep();
  const auto series = fixed_ratio_speedup(solver, kBandwidths, props);

  Table table{{"Proportionality", "100G", "200G", "400G", "800G", "1600G"}};
  for (std::size_t i = 0; i < props.size(); ++i) {
    std::vector<std::string> row{fmt_percent(props[i], 0)};
    for (const auto& s : series) {
      row.push_back(fmt_percent(s.points[i].speedup));
    }
    table.add_row(std::move(row));
  }
  std::printf("%s", table.to_ascii().c_str());
  std::printf(
      "Expected shape: monotone in proportionality; higher bandwidth gains\n"
      "more; 800G @ 50%% proportionality ~ 10%% speedup (paper).\n\n");
}

void BM_FixedRatioSolve(benchmark::State& state) {
  const BudgetSolver solver = BudgetSolver::paper_baseline();
  for (auto _ : state) {
    auto c = solver.solve(800_Gbps, 0.5, BudgetScenario::kFixedCommRatio);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_FixedRatioSolve);

}  // namespace

int main(int argc, char** argv) {
  print_figure4();
  return netpp::bench::run_benchmarks(argc, argv);
}
