// Closed-loop validation of the paper's workload model (Fig. 1): measured
// iteration and communication times from the flow simulator vs the analytic
// 1/bandwidth scaling, across per-GPU bandwidths and collectives.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"
#include "netpp/analysis/report.h"
#include "netpp/topo/builders.h"
#include "netpp/traffic/training_loop.h"
#include "netpp/workload/phase_model.h"

namespace {

using namespace netpp;
using namespace netpp::literals;

struct Measured {
  double comm_time = 0.0;
  double ratio = 0.0;
};

Measured run_loop(double gbps, CollectiveKind kind) {
  auto topo = build_fat_tree(4, Gbps{gbps});
  SimEngine engine;
  Router router{topo.graph};
  FlowSimulator sim{topo.graph, router, engine};
  TrainingLoopConfig cfg;
  cfg.iterations = 3;
  cfg.compute_time = 0.9_s;
  cfg.collective = kind;
  // Sized so that at 100 G the ring collective takes ~0.1 s (10% ratio).
  cfg.volume_per_host = Bits::from_gigabits(100.0 * 0.1 * 16.0 / 30.0);
  TrainingLoopSim loop{sim, topo.hosts, cfg};
  loop.start();
  engine.run();
  Measured out;
  out.comm_time = loop.mean_communication_time().value();
  double ratio = 0.0;
  for (const auto& r : loop.records()) ratio += r.communication_ratio();
  out.ratio = ratio / static_cast<double>(loop.records().size());
  return out;
}

void print_loop() {
  netpp::bench::print_banner(
      "Fig. 1 closed-loop: measured vs analytic communication scaling");

  const WorkloadModel analytic{IterationProfile{0.9_s, 0.1_s}, 16.0,
                               100_Gbps};
  Table table{{"Bandwidth/GPU", "Analytic comm (s)", "Measured comm (s)",
               "Measured ratio", "Deviation"}};
  for (double gbps : {25.0, 50.0, 100.0, 200.0, 400.0}) {
    const auto predicted =
        analytic.scaled(16.0, Gbps{gbps}).communication.value();
    const auto measured = run_loop(gbps, CollectiveKind::kRing);
    table.add_row(
        {fmt(gbps, 0) + "G", fmt(predicted, 4), fmt(measured.comm_time, 4),
         fmt_percent(measured.ratio),
         fmt_percent(measured.comm_time / predicted - 1.0)});
  }
  std::printf("%s", table.to_ascii().c_str());
  std::printf(
      "The simulator reproduces the paper's linear 1/bandwidth scaling\n"
      "(Fig. 1 / Sec. 2.2) because ring all-reduce is access-link-bound on\n"
      "a full-bisection fat tree.\n\n");

  netpp::bench::print_banner("Collective choice at 100G (same volume)");
  Table coll{{"Collective", "Measured comm (s)", "Measured ratio"}};
  struct Case {
    const char* name;
    CollectiveKind kind;
  };
  for (const Case c :
       {Case{"ring", CollectiveKind::kRing},
        Case{"halving/doubling", CollectiveKind::kHalvingDoubling},
        Case{"all-to-all", CollectiveKind::kAllToAll}}) {
    const auto measured = run_loop(100.0, c.kind);
    coll.add_row({c.name, fmt(measured.comm_time, 4),
                  fmt_percent(measured.ratio)});
  }
  std::printf("%s", coll.to_ascii().c_str());
  std::printf(
      "ECMP hash collisions on the fabric stretch multi-flow collectives\n"
      "beyond the analytic optimum - an effect the closed form hides.\n\n");
}

void BM_ClosedLoopIteration(benchmark::State& state) {
  for (auto _ : state) {
    auto result = run_loop(100.0, CollectiveKind::kRing);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_ClosedLoopIteration);

}  // namespace

int main(int argc, char** argv) {
  print_loop();
  return netpp::bench::run_benchmarks(argc, argv);
}
