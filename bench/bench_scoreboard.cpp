// The perf scoreboard runner: measures the fixed scenario suite from
// bench/workloads.h and scores it against reference numbers with the
// scoreboard library (scoreboard.h). Rows and their reference keys:
//
//   solver_capped/100k    <-> scoreboard_solver_capped_100k_ms
//   solver_uncapped/100k  <-> scoreboard_solver_uncapped_100k_ms
//   poisson_e2e/10k       <-> scoreboard_poisson_e2e_10k_ms
//   route_churn/100k      <-> scoreboard_route_churn_100k_ms
//   fault_storm           <-> scoreboard_fault_storm_ms
//   composite_stack       <-> scoreboard_composite_stack_ms
//   sharded_composite_smoke <-> scoreboard_sharded_composite_smoke_ms
//   sharded_1m_smoke      <-> scoreboard_sharded_1m_smoke_ms
//   serve_qps             <-> scoreboard_serve_qps_ms
//   telemetry_idle        absolute gate (< 2%), reference display-only
//
// Reference numbers MUST come from this binary (--write-reference in CI,
// --record context injection in tools/record_bench.sh): two binaries
// running the identical source loop differ by up to ~20% from code layout
// and link order alone, which would swamp the 10% gate. The gbench BM_*
// rows in BENCH_flowsim.json are the human-facing record; the scoreboard
// scores only against its own keys.
//
// Each timed row is best-of-N process-CPU time over calibrated ~100 ms hot
// loops — the same statistic on both sides of the ratio. Exits non-zero in
// Release builds when any scored row regresses past its limit (>10% for
// ratio rows). Debug builds report but never enforce.
//
// Flags:
//   --reference=PATH        reference JSON (default: BENCH_flowsim.json,
//                           then ../BENCH_flowsim.json)
//   --rounds=N              best-of rounds per row (default 3)
//   --record                measure the suite and print key=value lines
//                           for tools/record_bench.sh
//   --write-reference=PATH  measure the suite and write a reference JSON
//                           (gbench schema) for tools/check_scoreboard.cmake
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <functional>
#include <string>
#include <vector>

#include "bench_util.h"
#include "netpp/mech/composite.h"
#include "netpp/netsim/fairshare.h"
#include "netpp/serve/engine.h"
#include "netpp/topo/route_cache.h"
#include "netpp/topo/routing.h"
#include "scoreboard.h"
#include "workloads.h"

namespace {

using namespace netpp;

double cpu_now_ms() {
  timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) * 1e3 +
         static_cast<double>(ts.tv_nsec) / 1e6;
}

/// Best-of-`rounds` per-iteration CPU time in ms. Each round is a hot loop
/// of enough repetitions to run ~100 ms — the same shape as the
/// --benchmark_min_time=0.1 google-benchmark runs that produce the
/// reference numbers, so the per-iteration means are directly comparable;
/// best-of-rounds then guards against scheduler noise inflating a round.
double best_of_ms(int rounds, const std::function<void()>& body) {
  body();  // warm-up: allocator, caches, lazy statics
  double start = cpu_now_ms();
  body();
  const double once = cpu_now_ms() - start;
  const int reps =
      once >= 100.0 ? 1 : static_cast<int>(100.0 / (once > 0.01 ? once : 0.01)) + 1;
  double best = 1e300;
  for (int r = 0; r < rounds; ++r) {
    start = cpu_now_ms();
    for (int i = 0; i < reps; ++i) body();
    const double elapsed = (cpu_now_ms() - start) / reps;
    if (elapsed < best) best = elapsed;
  }
  return best;
}

double measure_solver(int rounds, double cap_bps) {
  const auto snap = bench::make_solver_snapshot(100000, cap_bps);
  return best_of_ms(rounds, [&] {
    auto rates = max_min_fair_rates(snap.flows, snap.capacities);
    benchmark::DoNotOptimize(rates);
  });
}

double measure_poisson(int rounds) {
  const auto flows = bench::make_poisson_workload(10000);
  return best_of_ms(rounds, [&] {
    const auto run = bench::run_poisson_workload(flows);
    benchmark::DoNotOptimize(run.completed);
  });
}

double measure_route_churn(int rounds) {
  const auto& topo = bench::pod_topology();
  const auto pairs = bench::make_host_pairs(100000);
  Router router{topo.graph};
  RouteCache cache{router, RouteCache::Config{}};
  // The cache persists across rounds like it does across benchmark
  // iterations: after the warm-up pass every lookup is a hash probe.
  return best_of_ms(rounds, [&] {
    std::size_t hops = 0;
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      const auto path = cache.route(pairs[i].first, pairs[i].second, i);
      hops += path ? path->hops() : 0;
    }
    benchmark::DoNotOptimize(hops);
  });
}

double measure_fault_storm(int rounds) {
  const bench::FaultScenario s = bench::make_fault_scenario();
  const FaultSchedule schedule =
      bench::make_fault_schedule(s, 5.0, 0.5, bench::kFaultSeed + 2);
  return best_of_ms(rounds, [&] {
    auto result = bench::run_fault_storm(s, schedule);
    benchmark::DoNotOptimize(result);
  });
}

double measure_composite_stack(int rounds) {
  const bench::CompositeScenario sc = bench::make_composite_scenario(2.0);
  return best_of_ms(rounds, [&] {
    const CompositeReport report =
        run_composite(sc.topo, sc.workload, sc.demands, sc.horizon, sc.config);
    benchmark::DoNotOptimize(report.combined_savings);
  });
}

// The composite stack on the sharded backend: same scenario as
// composite_stack but the workload runs through the 4-shard barrier loop
// with per-pod power domains, pricing the backend seam plus the
// shard-merge overhead.
double measure_sharded_composite(int rounds) {
  bench::CompositeScenario sc = bench::make_composite_scenario(2.0);
  sc.config.backend.kind = BackendKind::kSharded;
  sc.config.backend.num_shards = 4;
  return best_of_ms(rounds, [&] {
    const CompositeReport report =
        run_composite(sc.topo, sc.workload, sc.demands, sc.horizon, sc.config);
    benchmark::DoNotOptimize(report.combined_savings);
  });
}

// CI-sized cut of the bench_flowsim_sharded 1M gate: the same standing-
// population scenario at 50k flows, run through the 2-shard barrier loop.
double measure_sharded_smoke(int rounds) {
  const auto flows = bench::make_sharded_workload(
      bench::kShardedSmokeFlows, bench::kShardedSmokeCompleting);
  return best_of_ms(rounds, [&] {
    const auto run = bench::run_sharded_workload(flows, 2);
    benchmark::DoNotOptimize(run.completed);
  });
}

// The warm serving hot path behind netpp_serve: a persistent QueryEngine
// answering a fixed 16-query what-if batch every iteration. The baselines
// and composite caches warm up on the first pass; the steady state this row
// prices is what a long-running server actually spends per batch — fault-
// baseline forks + replays, composite-cache hits, and result rendering
// (result_cache off so every answer is recomputed).
double measure_serve_qps(int rounds) {
  serve::QueryEngine engine{serve::EngineConfig{.result_cache = false}};
  const char* const queries[] = {
      R"({"command":"faults","seed":7,"output":"csv"})",
      R"({"command":"faults","seed":7,"output":"table"})",
      R"({"command":"faults","seed":7,"output":"metrics"})",
      R"({"command":"faults","seed":7,"backend":"sharded","shards":2,"output":"csv"})",
      R"({"command":"mech","iters":2,"output":"csv"})",
      R"({"command":"mech","stack":"dynamic","iters":2,"output":"csv"})",
      R"({"command":"mech","stack":"tailor","iters":2,"output":"csv"})",
      R"({"command":"mech","stack":"park","iters":2,"output":"csv"})",
      R"({"command":"mech","stack":"rate","iters":2,"output":"csv"})",
      R"({"command":"mech","iters":2,"ocs":2,"output":"csv"})",
      R"({"command":"mech","iters":2,"ocs":8,"output":"csv"})",
      R"({"command":"mech","iters":2,"pod_budget_w":500,"core_budget_w":200,"output":"csv"})",
      R"({"command":"mech","iters":2,"output":"table"})",
      R"({"command":"savings","prop":0.85,"output":"csv"})",
      R"({"command":"cluster","gpus":8192,"output":"csv"})",
      R"({"command":"cluster","output":"table"})",
  };
  serve::JsonValue batch = serve::JsonValue::make_array();
  for (const char* q : queries) batch.push_back(serve::parse_json(q));
  return best_of_ms(rounds, [&] {
    const serve::JsonValue responses = engine.handle(batch);
    benchmark::DoNotOptimize(responses.as_array().size());
  });
}

/// One measurement of every suite row, in a fixed order. Both sides of
/// every gate ratio come from this function (in different processes of the
/// same binary), so the statistic and the code layout match by construction.
struct SuiteMeasurements {
  double solver_capped_ms;
  double solver_uncapped_ms;
  double poisson_ms;
  double route_churn_ms;
  double fault_storm_ms;
  double composite_stack_ms;
  double sharded_composite_ms;
  double sharded_smoke_ms;
  double serve_qps_ms;
  double telemetry_idle_pct;
};

SuiteMeasurements measure_suite(int rounds) {
  SuiteMeasurements m{};
  m.solver_capped_ms = measure_solver(rounds, 25e9);
  m.solver_uncapped_ms = measure_solver(rounds, 0.0);
  m.poisson_ms = measure_poisson(rounds);
  m.route_churn_ms = measure_route_churn(rounds);
  m.fault_storm_ms = measure_fault_storm(rounds);
  m.composite_stack_ms = measure_composite_stack(rounds);
  m.sharded_composite_ms = measure_sharded_composite(rounds);
  m.sharded_smoke_ms = measure_sharded_smoke(rounds);
  m.serve_qps_ms = measure_serve_qps(rounds);
  m.telemetry_idle_pct = bench::measure_idle_overhead_pct(rounds);
  return m;
}

constexpr const char* kBuildType =
#ifdef NDEBUG
    "release";
#else
    "debug";
#endif

/// Writes the suite as a reference JSON in the google-benchmark schema the
/// scoreboard parser reads: scoreboard keys as benchmark entries, build
/// type and telemetry overhead as context.
bool write_reference(const std::string& path, const SuiteMeasurements& m) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) return false;
  std::fprintf(out,
               "{\n"
               "  \"context\": {\n"
               "    \"netpp_build_type\": \"%s\",\n"
               "    \"telemetry_idle_overhead_pct\": %.3f\n"
               "  },\n"
               "  \"benchmarks\": [\n",
               kBuildType, m.telemetry_idle_pct);
  const struct { const char* key; double ms; } rows[] = {
      {"scoreboard_solver_capped_100k_ms", m.solver_capped_ms},
      {"scoreboard_solver_uncapped_100k_ms", m.solver_uncapped_ms},
      {"scoreboard_poisson_e2e_10k_ms", m.poisson_ms},
      {"scoreboard_route_churn_100k_ms", m.route_churn_ms},
      {"scoreboard_fault_storm_ms", m.fault_storm_ms},
      {"scoreboard_composite_stack_ms", m.composite_stack_ms},
      {"scoreboard_sharded_composite_smoke_ms", m.sharded_composite_ms},
      {"scoreboard_sharded_1m_smoke_ms", m.sharded_smoke_ms},
      {"scoreboard_serve_qps_ms", m.serve_qps_ms},
  };
  const std::size_t n = sizeof rows / sizeof rows[0];
  for (std::size_t i = 0; i < n; ++i) {
    std::fprintf(out,
                 "    {\"name\": \"%s\", \"run_type\": \"iteration\","
                 " \"iterations\": 1, \"real_time\": %.6f,"
                 " \"cpu_time\": %.6f, \"time_unit\": \"ms\"}%s\n",
                 rows[i].key, rows[i].ms, rows[i].ms,
                 i + 1 < n ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  return std::fclose(out) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string reference_path;
  std::string write_reference_path;
  int rounds = 3;
  bool record = false;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--reference=", 12) == 0) {
      reference_path = arg + 12;
    } else if (std::strncmp(arg, "--write-reference=", 18) == 0) {
      write_reference_path = arg + 18;
    } else if (std::strncmp(arg, "--rounds=", 9) == 0) {
      rounds = std::atoi(arg + 9);
      if (rounds < 1) rounds = 1;
    } else if (std::strcmp(arg, "--record") == 0) {
      record = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--reference=PATH] [--rounds=N] [--record]"
                   " [--write-reference=PATH]\n",
                   argv[0]);
      return 2;
    }
  }

  if (record || !write_reference_path.empty()) {
    const SuiteMeasurements m = measure_suite(rounds);
    if (!write_reference_path.empty()) {
      if (!write_reference(write_reference_path, m)) {
        std::fprintf(stderr, "cannot write reference %s\n",
                     write_reference_path.c_str());
        return 1;
      }
      std::fprintf(stderr, "wrote reference %s (%s build)\n",
                   write_reference_path.c_str(), kBuildType);
    }
    if (record) {
      // Machine-readable rows for record_bench.sh to inject as
      // --benchmark_context into BENCH_flowsim.json.
      std::printf("scoreboard_solver_capped_100k_ms=%.3f\n",
                  m.solver_capped_ms);
      std::printf("scoreboard_solver_uncapped_100k_ms=%.3f\n",
                  m.solver_uncapped_ms);
      std::printf("scoreboard_poisson_e2e_10k_ms=%.3f\n", m.poisson_ms);
      std::printf("scoreboard_route_churn_100k_ms=%.3f\n", m.route_churn_ms);
      std::printf("scoreboard_fault_storm_ms=%.3f\n", m.fault_storm_ms);
      std::printf("scoreboard_composite_stack_ms=%.3f\n",
                  m.composite_stack_ms);
      std::printf("scoreboard_sharded_composite_smoke_ms=%.3f\n",
                  m.sharded_composite_ms);
      std::printf("scoreboard_sharded_1m_smoke_ms=%.3f\n", m.sharded_smoke_ms);
      std::printf("scoreboard_serve_qps_ms=%.3f\n", m.serve_qps_ms);
    }
    return 0;
  }

  netpp::bench::print_banner(
      "Perf scoreboard - fixed scenario suite vs reference scores");

  bench::ReferenceScores ref;
  if (!reference_path.empty()) {
    ref = bench::load_reference_scores(reference_path);
  } else {
    for (const char* candidate :
         {"BENCH_flowsim.json", "../BENCH_flowsim.json"}) {
      ref = bench::load_reference_scores(candidate);
      if (ref.loaded) break;
    }
  }

  const SuiteMeasurements m = measure_suite(rounds);
  const auto ratio_row = [](const char* name, const char* key,
                            double measured) {
    bench::ScoreRow row;
    row.name = name;
    row.reference_key = key;
    row.measured = measured;
    return row;
  };
  std::vector<bench::ScoreRow> rows;
  rows.push_back(ratio_row("solver_capped/100k",
                           "scoreboard_solver_capped_100k_ms",
                           m.solver_capped_ms));
  rows.push_back(ratio_row("solver_uncapped/100k",
                           "scoreboard_solver_uncapped_100k_ms",
                           m.solver_uncapped_ms));
  rows.push_back(ratio_row("poisson_e2e/10k", "scoreboard_poisson_e2e_10k_ms",
                           m.poisson_ms));
  rows.push_back(ratio_row("route_churn/100k",
                           "scoreboard_route_churn_100k_ms",
                           m.route_churn_ms));
  rows.push_back(ratio_row("fault_storm", "scoreboard_fault_storm_ms",
                           m.fault_storm_ms));
  rows.push_back(ratio_row("composite_stack", "scoreboard_composite_stack_ms",
                           m.composite_stack_ms));
  rows.push_back(ratio_row("sharded_composite_smoke",
                           "scoreboard_sharded_composite_smoke_ms",
                           m.sharded_composite_ms));
  rows.push_back(ratio_row("sharded_1m_smoke",
                           "scoreboard_sharded_1m_smoke_ms",
                           m.sharded_smoke_ms));
  rows.push_back(ratio_row("serve_qps", "scoreboard_serve_qps_ms",
                           m.serve_qps_ms));
  {
    bench::ScoreRow telemetry;
    telemetry.name = "telemetry_idle";
    telemetry.reference_key = "telemetry_idle_overhead_pct";
    telemetry.kind = bench::RowKind::kAbsolutePct;
    telemetry.measured = m.telemetry_idle_pct;
    telemetry.limit = bench::kTelemetryIdleGatePct;
    rows.push_back(std::move(telemetry));
  }

  // Adaptive re-measurement: host noise on a shared runner is bursty at
  // second scale, so one burst can inflate every round of a single row.
  // Re-measuring only the failing rows and keeping the min converges each
  // suspect row to its true floor; a real regression fails every pass,
  // since its floor genuinely sits past the limit.
  const std::function<double(int)> remeasure[] = {
      [](int r) { return measure_solver(r, 25e9); },
      [](int r) { return measure_solver(r, 0.0); },
      [](int r) { return measure_poisson(r); },
      [](int r) { return measure_route_churn(r); },
      [](int r) { return measure_fault_storm(r); },
      [](int r) { return measure_composite_stack(r); },
      [](int r) { return measure_sharded_composite(r); },
      [](int r) { return measure_sharded_smoke(r); },
      [](int r) { return measure_serve_qps(r); },
      [](int r) { return bench::measure_idle_overhead_pct(r); },
  };
  bench::ScoreboardReport report = bench::score_rows(rows, ref);
  for (int pass = 0; pass < 4 && report.failures > 0; ++pass) {
    for (std::size_t i = 0; i < rows.size(); ++i) {
      if (!report.rows[i].failed()) continue;
      std::fprintf(stderr, "re-measuring %s (pass %d)...\n",
                   rows[i].name.c_str(), pass + 1);
      rows[i].measured = std::min(rows[i].measured, remeasure[i](rounds));
    }
    report = bench::score_rows(rows, ref);
  }
  std::printf("%s\n", report.table.c_str());
  if (!ref.loaded) {
    std::printf(
        "NOTE: no readable reference (%s) - ratio rows unscored; pass\n"
        "--reference=PATH or regenerate with tools/record_bench.sh.\n\n",
        reference_path.empty() ? "BENCH_flowsim.json" : ref.path.c_str());
  } else if (!ref.release_reference()) {
    std::printf(
        "NOTE: reference %s was not recorded from a Release build - ratio\n"
        "rows unscored (Debug numbers are meaningless; see bench/README.md)."
        "\n\n",
        ref.path.c_str());
  }
  std::printf("scored %d, unscored %d, over-limit %d (best-of-%d rounds)\n",
              report.scored, report.unscored, report.failures, rounds);

#ifdef NDEBUG
  const bool enforce = true;
#else
  const bool enforce = false;
  std::printf("NOTE: debug build - gate reported but not enforced.\n");
#endif
  if (enforce && report.failures > 0) {
    std::fprintf(stderr, "FAIL: %d scoreboard row(s) regressed past limit\n",
                 report.failures);
    return 1;
  }
  return 0;
}
