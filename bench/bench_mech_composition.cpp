// Composition sweep of the §4 mechanism stack: how static tailoring,
// pipeline parking, and rate adaptation stack across traffic intensity.
//
// The paper argues the optimizations compose; this bench quantifies the
// claim. For each per-host training volume the composed stack is priced
// against the all-on baseline, against each mechanism alone, and against
// the dynamic-only (no OCS) stack — the headline being that the full stack
// never loses to its best single ingredient, and that the composition gap
// widens as the network idles more. The scenario builder lives in
// bench/workloads.h, shared with the perf scoreboard.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "netpp/analysis/report.h"
#include "netpp/mech/composite.h"
#include "workloads.h"

namespace {

using namespace netpp;

void print_composition_sweep() {
  netpp::bench::print_banner(
      "Sec. 4 mechanism composition - stacks x training volume, k=4 fat "
      "tree");

  Table table{{"volume_gbit", "baseline_W", "tailor", "park", "rate",
               "dynamic", "stack", "best_single"}};
  for (double volume : {0.5, 2.0, 8.0}) {
    const bench::CompositeScenario sc = bench::make_composite_scenario(volume);
    const CompositeReport full =
        run_composite(sc.topo, sc.workload, sc.demands, sc.horizon, sc.config);
    CompositeConfig dynamic_only = sc.config;
    dynamic_only.tailor = false;
    const CompositeReport dynamic = run_composite(
        sc.topo, sc.workload, sc.demands, sc.horizon, dynamic_only);

    std::vector<std::string> row{
        fmt(volume, 1), fmt(full.baseline_average_power.value(), 1)};
    for (const auto& single : full.singles) {
      row.push_back(fmt_percent(single.savings, 2));
    }
    row.push_back(fmt_percent(dynamic.combined_savings, 2));
    row.push_back(fmt_percent(full.combined_savings, 2));
    row.push_back(fmt_percent(full.best_single_savings, 2));
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.to_ascii().c_str());
  std::printf(
      "stack = tailoring + parking + rate adaptation (OCS draw charged);\n"
      "dynamic = parking + rate adaptation only. The stack column must\n"
      "dominate best_single at every intensity.\n\n");
}

void BM_RunCompositeFullStack(benchmark::State& state) {
  const bench::CompositeScenario sc = bench::make_composite_scenario(2.0);
  for (auto _ : state) {
    const CompositeReport report =
        run_composite(sc.topo, sc.workload, sc.demands, sc.horizon, sc.config);
    benchmark::DoNotOptimize(report.combined_savings);
  }
}
BENCHMARK(BM_RunCompositeFullStack)->Unit(benchmark::kMillisecond);

void BM_RunCompositeShardedBackend(benchmark::State& state) {
  // The same stack through the sharded backend: the workload runs on the
  // pod-partitioned fabric with per-pod power domains, pricing the barrier
  // loop and shard merge against the single-engine run above.
  bench::CompositeScenario sc = bench::make_composite_scenario(2.0);
  sc.config.backend.kind = BackendKind::kSharded;
  sc.config.backend.num_shards = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    const CompositeReport report =
        run_composite(sc.topo, sc.workload, sc.demands, sc.horizon, sc.config);
    benchmark::DoNotOptimize(report.combined_savings);
  }
}
BENCHMARK(BM_RunCompositeShardedBackend)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_StackedPolicySingleSwitch(benchmark::State& state) {
  // The per-switch inner loop: one StackedSwitchPolicy over a recorded
  // trace, isolated from the flow simulation.
  const bench::CompositeScenario sc = bench::make_composite_scenario(2.0);
  const CompositeConfig& cfg = sc.config;
  LoadTrace trace;
  const int pipes = cfg.parking.model.config().num_pipelines;
  for (int i = 0; i < 64; ++i) {
    trace.times.push_back(Seconds{i * 0.05});
    trace.loads.push_back(
        std::vector<double>(static_cast<std::size_t>(pipes),
                            i % 10 == 0 ? 0.9 : 0.05));
  }
  trace.end = Seconds{64 * 0.05};
  for (auto _ : state) {
    StackedSwitchPolicy policy{cfg.parking, cfg.rate,
                               StackedSwitchPolicy::Stages{true, true}};
    const MechanismReport report = run_mechanism(trace, policy);
    benchmark::DoNotOptimize(report.energy);
  }
}
BENCHMARK(BM_StackedPolicySingleSwitch)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_composition_sweep();
  return netpp::bench::run_benchmarks(argc, argv);
}
