// Reproduces paper Table 3: relative power savings of the total ML cluster
// vs today's network (10% power proportionality), for per-GPU bandwidths
// 100..1600 G and proportionalities 10/20/50/85/100%. Also reproduces the
// §3.2 cost estimate for the 400 G / 50% cell (~365 kW avg reduction,
// ~$416k/yr electricity, ~$125k/yr cooling in the paper).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "netpp/analysis/report.h"
#include "netpp/analysis/savings.h"

namespace {

using namespace netpp;
using namespace netpp::literals;

const std::vector<Gbps> kBandwidths = {100_Gbps, 200_Gbps, 400_Gbps, 800_Gbps,
                                       1600_Gbps};
const std::vector<double> kProps = {0.10, 0.20, 0.50, 0.85, 1.00};

void print_table3() {
  netpp::bench::print_banner(
      "Table 3: total-cluster power savings vs 10%-proportional network");

  const auto rows = savings_table(ClusterConfig{}, kBandwidths, kProps, 0.10);

  Table table{{"Bandwidth (per GPU)", "10%", "20%", "50%", "85%", "100%"}};
  for (const auto& row : rows) {
    std::vector<std::string> cells{fmt(row.bandwidth.value(), 0) + "G"};
    for (const auto& cell : row.cells) {
      cells.push_back(fmt_percent(cell.savings_fraction));
    }
    table.add_row(std::move(cells));
  }
  std::printf("%s", table.to_ascii().c_str());
  std::printf(
      "Paper row 400G: 0.0%% / 1.2%% / 4.7%% / 8.8%% / 10.6%%\n"
      "Paper row 1600G: 0.0%% / 3.9%% / 15.6%% / 29.3%% / 35.1%%\n\n");

  // §3.2 cost estimate for 400 G at 50% proportionality.
  const SavingsCell cell = savings_at(ClusterConfig{}, 400_Gbps, 0.50, 0.10);
  const CostModel cost;
  netpp::bench::print_banner("Sec. 3.2 cost estimate (400G @ 50% prop)");
  std::printf(
      "Average power reduction: %.0f kW (paper: ~365 kW)\n"
      "Electricity savings:     $%.0fk/year (paper: ~$416k/year)\n"
      "Cooling savings:         $%.0fk/year (paper: ~$125k/year)\n\n",
      cell.absolute_savings.kilowatts(),
      cost.annual_electricity_savings(cell.absolute_savings).value() / 1e3,
      cost.annual_cooling_savings(cell.absolute_savings).value() / 1e3);
}

void BM_SavingsTable(benchmark::State& state) {
  for (auto _ : state) {
    auto rows = savings_table(ClusterConfig{}, kBandwidths, kProps, 0.10);
    benchmark::DoNotOptimize(rows);
  }
}
BENCHMARK(BM_SavingsTable);

void BM_SavingsCell(benchmark::State& state) {
  for (auto _ : state) {
    auto cell = savings_at(ClusterConfig{}, 400_Gbps, 0.50, 0.10);
    benchmark::DoNotOptimize(cell);
  }
}
BENCHMARK(BM_SavingsCell);

}  // namespace

int main(int argc, char** argv) {
  print_table3();
  return netpp::bench::run_benchmarks(argc, argv);
}
