// MLPerf-Power-style perf scoreboard: fixed scenarios, checked-in reference
// scores, ratios, and a regression gate.
//
// The model follows MLPerf Power's submission/scoring split: a *reference*
// file (BENCH_flowsim.json, recorded on a known machine by
// tools/record_bench.sh) holds the scores to beat, and a scoring run
// measures the same fixed scenarios (bench/workloads.h) and reports the
// ratio measured/reference per row. Ratios — not absolute times — are what
// make the numbers durable: a row fails only when THIS build is >10% slower
// than the reference measured on the SAME machine, so CI regenerates a
// fresh same-machine reference first (tools/check_scoreboard.cmake) while
// local runs on the recording machine can score against the checked-in
// file directly.
//
// This header is the scoring library (JSON parsing, row arithmetic, table
// formatting, gate policy); bench_scoreboard.cpp owns the scenario suite.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace netpp::bench {

/// Default gate: a scored ratio row fails at >10% regression.
inline constexpr double kScoreboardFailRatio = 1.10;

/// Reference scores parsed from a google-benchmark JSON file. Only the
/// fields the scoreboard needs survive parsing: per-benchmark cpu_time
/// (normalized to milliseconds) and the flat string/number/bool entries of
/// the context object (netpp_build_type, telemetry_idle_overhead_pct, the
/// scoreboard_*_ms rows record_bench.sh injects).
struct ReferenceScores {
  bool loaded = false;
  std::string path;
  std::map<std::string, double> benchmark_cpu_ms;
  std::map<std::string, std::string> context;

  /// cpu_time of the named benchmark in ms, or a negative value if absent.
  [[nodiscard]] double benchmark_ms(const std::string& name) const;
  /// Context value parsed as a number, or a negative value if absent or
  /// non-numeric. (Every context number the scoreboard reads is >= 0 except
  /// telemetry_idle_overhead_pct, which callers treat as display-only.)
  [[nodiscard]] double context_number(const std::string& key) const;
  /// True when the reference was recorded from a Release build
  /// (context netpp_build_type == "release") — the only kind worth gating
  /// against.
  [[nodiscard]] bool release_reference() const;
};

/// Parses `path`. Returns loaded == false (and everything empty) when the
/// file is missing or unreadable; tolerates any well-formed JSON and
/// ignores what it does not recognize.
[[nodiscard]] ReferenceScores load_reference_scores(const std::string& path);

/// How a row is scored.
enum class RowKind {
  /// measured and reference are times in ms; fails when
  /// measured/reference > limit.
  kRatio,
  /// measured is a percentage gated against an absolute limit (the
  /// telemetry idle-overhead row); the reference value is display-only.
  kAbsolutePct,
};

struct ScoreRow {
  std::string name;           // scenario name shown in the table
  std::string reference_key;  // benchmark name or context key in the JSON
  RowKind kind = RowKind::kRatio;
  double measured = 0.0;       // ms (kRatio) or percent (kAbsolutePct)
  double reference = -1.0;     // filled by score_rows(); < 0 => unscored
  double limit = kScoreboardFailRatio;  // ratio cap or percent cap

  [[nodiscard]] bool scored() const;
  /// measured/reference for scored kRatio rows; < 0 otherwise.
  [[nodiscard]] double ratio() const;
  [[nodiscard]] bool failed() const;
};

struct ScoreboardReport {
  std::vector<ScoreRow> rows;
  int scored = 0;
  int unscored = 0;
  int failures = 0;  // rows over their limit (gate enforcement is caller's)
  std::string table;  // formatted, ends with '\n'
};

/// Resolves each row's reference value (benchmark name first, then context
/// key), computes ratios, formats the table. Rows whose reference key is
/// absent stay unscored: reported, never failed. When the reference is not
/// from a Release build every kRatio row is left unscored too (Debug
/// numbers are meaningless — see bench/README.md).
[[nodiscard]] ScoreboardReport score_rows(std::vector<ScoreRow> rows,
                                          const ReferenceScores& ref);

}  // namespace netpp::bench
