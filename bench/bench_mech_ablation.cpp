// Ablation across the paper's §4 mechanism proposals, on one common
// workload: phase-structured ML training traffic over a k=4 fat tree
// (simulated flow-level), evaluated at one edge switch.
//
// The paper proposes these mechanisms but does not evaluate them; this bench
// quantifies them under the paper's own power model, answering the ordering
// questions §4 raises: knobs < rate adaptation < pipeline parking in savings
// depth, global vs per-pipeline clocking, reactive vs predictive parking,
// and what EEE (the historical baseline) still delivers.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench_util.h"
#include "netpp/analysis/report.h"
#include "netpp/mech/eee.h"
#include "netpp/mech/knobs.h"
#include "netpp/mech/parking.h"
#include "netpp/mech/rateadapt.h"
#include "netpp/mech/trace_recorder.h"
#include "netpp/sim/sweep.h"
#include "netpp/topo/builders.h"
#include "netpp/traffic/generators.h"

namespace {

using namespace netpp;
using namespace netpp::literals;

struct Workbench {
  BuiltTopology topo = build_fat_tree(4, 100_Gbps);
  SimEngine engine;
  Router router{topo.graph};
  FlowSimulator sim{topo.graph, router, engine};
  MlTraffic traffic;
  Seconds horizon{8.0};
  NodeId edge;
  AggregateLoadTrace agg;
  PipelineLoadTrace pipes;

  Workbench() {
    MlTrafficConfig cfg;
    cfg.compute_time = 0.9_s;
    cfg.comm_allowance = 0.1_s;
    cfg.iterations = 8;
    cfg.volume_per_host = Bits::from_gigabits(2.0);
    traffic = make_ml_training_traffic(topo.hosts, cfg);

    edge = topo.graph.nodes_at_tier(1).front();
    NodeLoadRecorder recorder{sim, {edge}};
    sim.set_load_listener(recorder.listener());
    recorder.sample(0.0_s);
    for (const auto& flow : traffic.flows) sim.submit(flow);
    engine.run();
    engine.run_until(horizon);
    agg = recorder.aggregate_trace(edge, horizon);
    pipes = recorder.pipeline_trace(edge, 4, horizon);
  }
};

void print_ablation() {
  netpp::bench::print_banner(
      "Sec. 4 mechanism ablation - ML training traffic, one edge switch");

  const Workbench wb;
  const SwitchPowerModel model;

  // One shared flow-level simulation (the expensive part) feeds every
  // mechanism row; the rows themselves are independent reads of the const
  // Workbench, so they fan out across SweepRunner workers and the table is
  // assembled in row order afterwards.
  RateAdaptConfig ra;
  ra.model = model;
  ParkingConfig pk;
  pk.model = model;
  pk.switch_capacity = Gbps{400.0};  // 4 ports x 100 G at this edge switch
  pk.wake_latency = Seconds::from_milliseconds(1.0);

  using Row = std::vector<std::string>;
  const std::vector<std::function<Row()>> row_evals = {
      // Today: everything on, no adaptation.
      [&] {
        const auto none =
            simulate_rate_adaptation(wb.pipes, ra, RateAdaptMode::kNone);
        return Row{"none (today)", fmt(none.average_power.value(), 1), "0.0%",
                   "none", "10% proportional envelope"};
      },
      // §4.1 knobs: the deployment only needs L2+L3 without deep buffers or
      // telemetry; static gating applies on top of nothing else.
      [&] {
        const auto knobs = RouterComponentModel::reference_router();
        const Watts gated = knobs.power_in_cstate(SwitchCState::kC1LeanRouter,
                                                  GatingQuality::kFixed);
        return Row{
            "power knobs (4.1)", fmt(gated.value(), 1),
            fmt_percent(1.0 - gated.value() / knobs.total_power().value()),
            "none", "static, vs 750 W fully-featured router"};
      },
      // §4.3 rate adaptation.
      [&] {
        const auto global =
            simulate_rate_adaptation(wb.pipes, ra, RateAdaptMode::kGlobalAsic);
        return Row{"rate adapt, global clock (4.3)",
                   fmt(global.average_power.value(), 1),
                   fmt_percent(global.savings_vs_none), "none",
                   std::to_string(global.frequency_transitions) +
                       " clock changes"};
      },
      [&] {
        const auto per_pipe =
            simulate_rate_adaptation(wb.pipes, ra, RateAdaptMode::kPerPipeline);
        return Row{"rate adapt, per-pipeline (4.3)",
                   fmt(per_pipe.average_power.value(), 1),
                   fmt_percent(per_pipe.savings_vs_none), "none",
                   "independent clock trees"};
      },
      [&] {
        RateAdaptConfig ra_lanes = ra;
        ra_lanes.lane_steps = {0.25, 0.5, 1.0};
        const auto lanes = simulate_rate_adaptation(wb.pipes, ra_lanes,
                                                    RateAdaptMode::kPerPipeline);
        return Row{"  + SerDes down-rating (4.3)",
                   fmt(lanes.average_power.value(), 1),
                   fmt_percent(lanes.savings_vs_none), "none",
                   "lane steps 1/4, 1/2, 1"};
      },
      // §4.4 parking.
      [&] {
        const auto reactive = simulate_parking_reactive(wb.agg, pk);
        return Row{"pipeline parking, reactive (4.4)",
                   fmt(reactive.average_power.value(), 1),
                   fmt_percent(reactive.savings_vs_all_on),
                   to_string(reactive.max_added_delay) + " buf",
                   fmt(reactive.mean_active_pipelines, 2) + " pipelines avg"};
      },
      [&] {
        std::vector<LoadForecast> forecast;
        for (const auto& w : wb.traffic.schedule) {
          forecast.push_back(LoadForecast{w.compute_begin, 0.0});
          forecast.push_back(LoadForecast{w.comm_begin, 1.0});
        }
        const auto predictive =
            simulate_parking_predictive(wb.agg, forecast, pk);
        return Row{"pipeline parking, predictive (4.4)",
                   fmt(predictive.average_power.value(), 1),
                   fmt_percent(predictive.savings_vs_all_on),
                   to_string(predictive.max_added_delay) + " buf",
                   "pre-woken from the job schedule"};
      },
  };

  SweepRunner runner;
  runner.set_progress_callback([](std::size_t done, std::size_t total) {
    std::fprintf(stderr, "\rablation rows: %zu/%zu%s", done, total,
                 done == total ? "\n" : "");
  });
  const auto rows = runner.map<Row>(
      row_evals.size(),
      [&](std::size_t index, Rng&) { return row_evals[index](); });

  Table table{{"Mechanism (Sec.)", "Avg power (W)", "Savings vs today",
               "Latency cost", "Notes"}};
  for (const auto& row : rows) table.add_row(row);
  std::printf("%s", table.to_ascii().c_str());

  // EEE on one transceiver-grade link, for the historical perspective.
  netpp::bench::print_banner(
      "Historical baseline: 802.3az EEE on one 100G link (same ML trace)");
  std::vector<EeeFrame> frames;
  for (const auto& flow : wb.traffic.flows) {
    if (flow.src == wb.topo.hosts[0]) {
      frames.push_back(EeeFrame{flow.start, flow.size});
    }
  }
  EeeConfig eee;
  eee.link_rate = 100_Gbps;
  eee.active_power = 4.0_W;
  const auto eee_result = simulate_eee_link(eee, frames, wb.horizon);
  std::printf(
      "Energy savings: %s | LPI time: %s | mean added delay: %s | wakes: %zu\n\n",
      fmt_percent(eee_result.energy_savings_fraction).c_str(),
      fmt_percent(eee_result.lpi_time_fraction).c_str(),
      to_string(eee_result.mean_added_delay).c_str(),
      eee_result.wake_transitions);
}

void BM_AblationPipeline(benchmark::State& state) {
  const Workbench wb;
  const SwitchPowerModel model;
  RateAdaptConfig ra;
  ra.model = model;
  for (auto _ : state) {
    auto r = simulate_rate_adaptation(wb.pipes, ra, RateAdaptMode::kPerPipeline);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_AblationPipeline);

void BM_FlowSimMlIteration(benchmark::State& state) {
  for (auto _ : state) {
    Workbench wb;
    benchmark::DoNotOptimize(wb.sim.completed().size());
  }
}
BENCHMARK(BM_FlowSimMlIteration);

}  // namespace

int main(int argc, char** argv) {
  print_ablation();
  return netpp::bench::run_benchmarks(argc, argv);
}
