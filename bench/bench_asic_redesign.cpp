// §4.5 what-if: clean-slate ASIC design for power proportionality.
//
// Part 1 — pipeline granularity: with ideal parking, how does the number of
// (smaller) pipelines trade quantization relief against duplication
// overhead, across duty cycles and burst loads?
//
// Part 2 — co-packaged optics: replacing pluggable transceivers with
// in-package optics (lower power, gateable with the port) at the scale of
// the paper's baseline cluster.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"
#include "netpp/analysis/report.h"
#include "netpp/mech/redesign.h"

namespace {

using namespace netpp;

void print_granularity() {
  netpp::bench::print_banner(
      "Sec. 4.5 (1/2): pipeline granularity under ideal parking");

  const GranularPipelineModel model;  // 750 W, 5% overhead per doubling
  Table table{{"Pipelines", "Effective proportionality",
               "Avg W (10% duty, full bursts)",
               "Avg W (10% duty, 40% bursts)",
               "Avg W (30% duty, 40% bursts)"}};
  for (int n : {1, 2, 4, 8, 16, 32, 64, 128}) {
    table.add_row({std::to_string(n),
                   fmt_percent(model.effective_proportionality(n)),
                   fmt(model.duty_cycle_average(n, 0.10, 1.0).value(), 1),
                   fmt(model.duty_cycle_average(n, 0.10, 0.4).value(), 1),
                   fmt(model.duty_cycle_average(n, 0.30, 0.4).value(), 1)});
  }
  std::printf("%s", table.to_ascii().c_str());
  std::printf(
      "Best granularity: %d pipelines for full bursts, %d for 40%% bursts\n"
      "(10%% duty). Quantization relief only matters at partial load; the\n"
      "duplication overhead caps useful granularity (Sec. 4.5).\n\n",
      model.best_granularity(0.10, 1.0),
      model.best_granularity(0.10, 0.4));

  netpp::bench::print_banner("Overhead sensitivity (10% duty, 40% bursts)");
  Table overhead{{"Overhead per doubling", "Best pipeline count",
                  "Avg power at best (W)"}};
  for (double o : {0.0, 0.02, 0.05, 0.10, 0.20}) {
    GranularPipelineModel::Config cfg;
    cfg.overhead_per_doubling = o;
    const GranularPipelineModel m{cfg};
    const int best = m.best_granularity(0.10, 0.4);
    overhead.add_row({fmt_percent(o, 0), std::to_string(best),
                      fmt(m.duty_cycle_average(best, 0.10, 0.4).value(), 1)});
  }
  std::printf("%s", overhead.to_ascii().c_str());
}

void print_cpo() {
  netpp::bench::print_banner(
      "Sec. 4.5 (2/2): co-packaged optics on the baseline cluster");

  Table table{{"CPO power factor", "Optics proportionality",
               "Total-cluster savings"}};
  for (double factor : {1.0, 0.8, 0.6, 0.4}) {
    for (double prop : {0.10, 0.50, 0.80}) {
      CpoRetrofit::Config cfg;
      cfg.power_factor = factor;
      cfg.optics_proportionality = prop;
      const CpoRetrofit cpo{cfg};
      table.add_row({fmt(factor, 1), fmt_percent(prop, 0),
                     fmt_percent(cpo.savings_fraction(ClusterConfig{}))});
    }
  }
  std::printf("%s", table.to_ascii().c_str());
  std::printf(
      "Transceivers are ~1/3 of the baseline network power (Fig. 2), so CPO\n"
      "alone recovers a chunk of the Table-3 savings without touching the\n"
      "switch ASIC - and it makes the Sec. 4.4 circuit switch trivial to\n"
      "integrate (paper Sec. 4.5).\n\n");
}

void BM_GranularitySearch(benchmark::State& state) {
  const GranularPipelineModel model;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.best_granularity(0.10, 0.4, 1024));
  }
}
BENCHMARK(BM_GranularitySearch);

void BM_CpoSavings(benchmark::State& state) {
  const CpoRetrofit cpo;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cpo.savings_fraction(ClusterConfig{}));
  }
}
BENCHMARK(BM_CpoSavings);

}  // namespace

int main(int argc, char** argv) {
  print_granularity();
  print_cpo();
  return netpp::bench::run_benchmarks(argc, argv);
}
