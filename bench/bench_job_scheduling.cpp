// §4.2 "Inspiration from Compute": energy-aware job placement.
//
// Sweeps cluster load and compares spread (today's load balancing) against
// concentrating placement, with and without the ability to power off empty
// racks' ToR switches — quantifying how much of the scheduler trick
// transfers to the network, and how the wake-time knob trades job-start
// latency for savings.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"
#include "netpp/analysis/report.h"
#include "netpp/mech/scheduler.h"

namespace {

using namespace netpp;

SchedulerConfig cluster() {
  SchedulerConfig cfg;
  cfg.racks = 32;
  cfg.gpus_per_rack = 16;
  cfg.switch_wake_time = Seconds::from_milliseconds(100.0);
  return cfg;
}

void print_policy_sweep() {
  netpp::bench::print_banner(
      "Sec. 4.2: job placement policy vs ToR energy (32 racks x 16 GPUs)");

  Table table{{"Load (mean interarrival)", "Policy", "Occupied racks (avg)",
               "ToR energy savings", "Rejected", "Wakeups"}};
  for (double interarrival : {8.0, 2.0, 0.5}) {
    const auto jobs = make_job_trace(400, Seconds{interarrival},
                                     Seconds{60.0}, 32, 11);
    for (auto policy :
         {PlacementPolicy::kSpread, PlacementPolicy::kConcentrate}) {
      const auto result = simulate_schedule(cluster(), jobs, policy);
      table.add_row(
          {fmt(interarrival, 1) + " s",
           policy == PlacementPolicy::kSpread ? "spread" : "concentrate",
           fmt(result.mean_occupied_racks, 1),
           fmt_percent(result.tor_energy_savings),
           std::to_string(result.rejected_jobs),
           std::to_string(result.tor_wakeups)});
    }
  }
  std::printf("%s", table.to_ascii().c_str());
  std::printf(
      "Concentrating the workload keeps fewer ToRs powered; the advantage\n"
      "shrinks as the cluster fills up (everything must be on anyway).\n\n");

  netpp::bench::print_banner("The knob must exist: switch-off allowed vs not");
  Table knob{{"allow_switch_off", "Policy", "ToR energy savings"}};
  const auto jobs = make_job_trace(400, Seconds{2.0}, Seconds{60.0}, 32, 11);
  for (bool off : {true, false}) {
    for (auto policy :
         {PlacementPolicy::kSpread, PlacementPolicy::kConcentrate}) {
      auto cfg = cluster();
      cfg.allow_switch_off = off;
      const auto result = simulate_schedule(cfg, jobs, policy);
      knob.add_row(
          {off ? "yes" : "no",
           policy == PlacementPolicy::kSpread ? "spread" : "concentrate",
           fmt_percent(result.tor_energy_savings)});
    }
  }
  std::printf("%s", knob.to_ascii().c_str());
  std::printf(
      "Without the power-off knob (Sec. 4.1's complaint about today's\n"
      "routers) even perfect concentration saves nothing.\n\n");
}

void BM_ConcentratePlacement(benchmark::State& state) {
  const auto jobs = make_job_trace(400, Seconds{2.0}, Seconds{60.0}, 32, 11);
  for (auto _ : state) {
    auto result =
        simulate_schedule(cluster(), jobs, PlacementPolicy::kConcentrate);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_ConcentratePlacement);

}  // namespace

int main(int argc, char** argv) {
  print_policy_sweep();
  return netpp::bench::run_benchmarks(argc, argv);
}
