// §4.3 design-space sweep: rate adaptation savings as a function of load
// level and load skew, contrasting today's global ASIC clock against the
// paper's per-pipeline clocking, with and without SerDes down-rating.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "netpp/analysis/report.h"
#include "netpp/mech/downrate.h"
#include "netpp/mech/rateadapt.h"
#include "netpp/sim/sweep.h"

namespace {

using namespace netpp;

PipelineLoadTrace skewed_trace(double mean_load, double skew, int pipes) {
  // Pipeline 0 carries mean*(1+3*skew); others share the rest evenly; a
  // skew of 0 is uniform, 1 concentrates everything on pipeline 0.
  PipelineLoadTrace trace;
  trace.times = {Seconds{0.0}};
  std::vector<double> loads(pipes, 0.0);
  const double hot = std::min(1.0, mean_load * (1.0 + 3.0 * skew));
  loads[0] = hot;
  const double rest = (mean_load * pipes - hot) / (pipes - 1);
  for (int p = 1; p < pipes; ++p) loads[p] = std::max(0.0, rest);
  trace.pipeline_loads = {loads};
  trace.end = Seconds{10.0};
  return trace;
}

void print_sweep() {
  netpp::bench::print_banner(
      "Sec. 4.3: rate adaptation - global vs per-pipeline clocking");

  const SwitchPowerModel model;
  RateAdaptConfig cfg;
  cfg.model = model;
  RateAdaptConfig cfg_lanes = cfg;
  cfg_lanes.lane_steps = {0.25, 0.5, 1.0};

  // Flatten the load x skew grid into a scenario list and fan it out;
  // each cell evaluates all three clocking modes on one worker.
  struct GridPoint {
    double load, skew;
  };
  std::vector<GridPoint> grid;
  for (double load : {0.05, 0.10, 0.25, 0.50}) {
    for (double skew : {0.0, 0.5, 1.0}) {
      grid.push_back({load, skew});
    }
  }
  struct GridResult {
    RateAdaptResult global, per_pipe, lanes;
  };
  SweepRunner runner;
  const auto cells = runner.map<GridResult>(
      grid.size(), [&](std::size_t index, Rng&) {
        const auto trace = skewed_trace(grid[index].load, grid[index].skew,
                                        model.config().num_pipelines);
        return GridResult{
            simulate_rate_adaptation(trace, cfg, RateAdaptMode::kGlobalAsic),
            simulate_rate_adaptation(trace, cfg, RateAdaptMode::kPerPipeline),
            simulate_rate_adaptation(trace, cfg_lanes,
                                     RateAdaptMode::kPerPipeline)};
      });

  Table table{{"Mean load", "Skew", "Global clock", "Per-pipeline",
               "Per-pipeline + lanes"}};
  for (std::size_t i = 0; i < grid.size(); ++i) {
    table.add_row({fmt_percent(grid[i].load, 0), fmt(grid[i].skew, 1),
                   fmt_percent(cells[i].global.savings_vs_none),
                   fmt_percent(cells[i].per_pipe.savings_vs_none),
                   fmt_percent(cells[i].lanes.savings_vs_none)});
  }
  std::printf("%s", table.to_ascii().c_str());
  std::printf(
      "Reading: with skewed load, one hot pipeline pins the global clock\n"
      "high, so per-pipeline clocking (the paper's proposal) wins; SerDes\n"
      "down-rating adds the port-side share on top (Sec. 4.3).\n\n");
}

void print_downrating() {
  netpp::bench::print_banner(
      "Sec. 4.3 on ISP links: down-rating a 400G backbone link over a day");

  // Compressed diurnal utilization of one link: samples every "10 minutes",
  // sinusoid between 8% (night) and 55% (evening peak).
  AggregateLoadTrace trace;
  const double day = 86400.0;
  for (double t = 0.0; t < day; t += 600.0) {
    const double hour = t / 3600.0;
    const double load =
        0.315 + 0.235 * std::cos((hour - 20.0) / 24.0 * 2.0 * 3.14159265);
    trace.times.push_back(Seconds{t});
    trace.loads.push_back(load);
  }
  trace.end = Seconds{day};

  const std::vector<double> effs = {1.0, 0.5, 0.2, 0.0};
  SweepRunner runner;
  const auto results = runner.map<DownrateResult>(
      effs.size(), [&](std::size_t index, Rng&) {
        DownrateConfig cfg;
        cfg.gating_effectiveness = effs[index];
        cfg.down_dwell = Seconds{1800.0};
        return simulate_downrating(trace, cfg);
      });

  Table table{{"Gating effectiveness", "Savings", "Mean speed",
               "Transitions", "Violations"}};
  for (std::size_t i = 0; i < effs.size(); ++i) {
    const auto& result = results[i];
    table.add_row({fmt_percent(effs[i], 0),
                   fmt_percent(result.savings_fraction),
                   fmt(result.mean_speed.value(), 0) + "G",
                   std::to_string(result.transitions),
                   fmt(result.violation_time.value(), 1) + " s"});
  }
  std::printf("%s", table.to_ascii().c_str());
  std::printf(
      "Down-rating follows the diurnal trough; how much it saves depends\n"
      "entirely on how much hardware the lower speed actually powers off -\n"
      "the paper's \"savings are limited\" observation as a knob.\n\n");
}

void BM_GlobalAdaptation(benchmark::State& state) {
  const SwitchPowerModel model;
  RateAdaptConfig cfg;
  cfg.model = model;
  const auto trace = skewed_trace(0.25, 0.5, model.config().num_pipelines);
  for (auto _ : state) {
    auto r = simulate_rate_adaptation(trace, cfg, RateAdaptMode::kGlobalAsic);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_GlobalAdaptation);

void BM_PerPipelineAdaptation(benchmark::State& state) {
  const SwitchPowerModel model;
  RateAdaptConfig cfg;
  cfg.model = model;
  const auto trace = skewed_trace(0.25, 0.5, model.config().num_pipelines);
  for (auto _ : state) {
    auto r =
        simulate_rate_adaptation(trace, cfg, RateAdaptMode::kPerPipeline);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_PerPipelineAdaptation);

}  // namespace

int main(int argc, char** argv) {
  print_sweep();
  print_downrating();
  return netpp::bench::run_benchmarks(argc, argv);
}
