// Reproduces paper Figure 3: iteration-time speedup (%) for a fixed
// workload under a fixed power budget, relative to the baseline cluster
// (400 G @ 10% proportionality), as network power proportionality sweeps
// 0..100% for five per-GPU bandwidths.
//
// Paper claims to reproduce: at poor proportionality, lower bandwidth is
// faster; 200 G still beats 400 G at 50% proportionality; 800/1600 G become
// the best choice only above ~90%.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "netpp/analysis/report.h"
#include "netpp/analysis/speedup.h"

namespace {

using namespace netpp;
using namespace netpp::literals;

const std::vector<Gbps> kBandwidths = {100_Gbps, 200_Gbps, 400_Gbps, 800_Gbps,
                                       1600_Gbps};

std::vector<double> proportionality_sweep() {
  std::vector<double> out;
  for (int i = 0; i <= 20; ++i) out.push_back(i * 0.05);
  return out;
}

void print_figure3() {
  netpp::bench::print_banner(
      "Figure 3: fixed workload, fixed power budget - speedup vs 400G@10%");

  const BudgetSolver solver = BudgetSolver::paper_baseline();
  std::printf("Fixed power budget (baseline average power): %.2f MW\n\n",
              solver.budget().megawatts());

  const auto props = proportionality_sweep();
  const auto series = fixed_workload_speedup(solver, kBandwidths, props);

  Table table{{"Proportionality", "100G", "200G", "400G", "800G", "1600G"}};
  for (std::size_t i = 0; i < props.size(); ++i) {
    std::vector<std::string> row{fmt_percent(props[i], 0)};
    for (const auto& s : series) {
      row.push_back(fmt_percent(s.points[i].speedup));
    }
    table.add_row(std::move(row));
  }
  std::printf("%s", table.to_ascii().c_str());
  std::printf(
      "Expected shape: lower bandwidths fastest at low proportionality; 200G\n"
      "beats 400G at 50%%; 800/1600G best only above ~90%%.\n\n");

  netpp::bench::print_banner(
      "Crossover: proportionality needed to match the 400G@10% baseline");
  Table cross{{"Bandwidth", "Required proportionality"}};
  for (Gbps bw : kBandwidths) {
    const auto needed = proportionality_to_match_baseline(solver, bw);
    cross.add_row({fmt(bw.value(), 0) + "G",
                   needed ? fmt_percent(*needed) : "unreachable"});
  }
  std::printf("%s", cross.to_ascii().c_str());
  std::printf(
      "The paper's \"only at very high proportionality\" claim, made exact:\n"
      "the table shows the break-even point per bandwidth.\n\n");
}

void BM_BudgetSolve(benchmark::State& state) {
  const BudgetSolver solver = BudgetSolver::paper_baseline();
  for (auto _ : state) {
    auto c = solver.solve(800_Gbps, 0.5, BudgetScenario::kFixedWorkload);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_BudgetSolve);

}  // namespace

int main(int argc, char** argv) {
  print_figure3();
  return netpp::bench::run_benchmarks(argc, argv);
}
