// §4.1 at cluster scale: role-based C-states across the baseline pod's
// switch fleet.
//
// In a 3-tier fat tree, edge/aggregation/core switches play different roles
// and need different feature sets: ToRs can run pure L2, aggregation
// switches need L3 with small tables (route reflectors hold the full view),
// only a fraction of the fleet needs everything. This bench applies the
// §4.1 component-gating model per role across the paper's baseline cluster
// (379 switches at 400 G) and reports the fleet-level savings — under fixed
// gating, today's buggy gating, and partial gating.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"
#include "netpp/analysis/report.h"
#include "netpp/cluster/cluster.h"
#include "netpp/mech/knobs.h"

namespace {

using namespace netpp;

struct Role {
  const char* name;
  double fleet_fraction;  // of all switches (2:2:1 edge:agg:core in 3 tiers)
  SwitchCState cstate;
};

constexpr Role kRoles[] = {
    {"edge (ToR), L2-only", 0.4, SwitchCState::kC2L2Only},
    {"aggregation, lean L3", 0.4, SwitchCState::kC1LeanRouter},
    {"core, full router", 0.2, SwitchCState::kC0FullRouter},
};

void print_fleet() {
  netpp::bench::print_banner(
      "Sec. 4.1 at scale: role-based C-states across the baseline fleet");

  const ClusterModel cluster{ClusterConfig{}};
  const double switches = cluster.network().tree.switches;
  const auto router = RouterComponentModel::reference_router();
  const Watts full = router.total_power();

  std::printf("Fleet: %.0f switches at %s each (all-on: %.1f kW)\n\n",
              switches, to_string(full).c_str(),
              full.kilowatts() * switches);

  Table table{{"Gating quality", "Fleet power (kW)", "Saved (kW)",
               "Of switch power", "Of cluster average"}};
  const double cluster_avg = cluster.average_total_power().kilowatts();
  for (auto quality : {GatingQuality::kFixed, GatingQuality::kPartial,
                       GatingQuality::kBuggy}) {
    double fleet_kw = 0.0;
    for (const auto& role : kRoles) {
      fleet_kw += router.power_in_cstate(role.cstate, quality).kilowatts() *
                  role.fleet_fraction * switches;
    }
    const double all_on = full.kilowatts() * switches;
    const char* label = quality == GatingQuality::kFixed     ? "fixed (off = 0 W)"
                        : quality == GatingQuality::kPartial ? "partial (off = 50%)"
                                                             : "buggy (off = on)";
    table.add_row({label, fmt(fleet_kw, 1), fmt(all_on - fleet_kw, 1),
                   fmt_percent((all_on - fleet_kw) / all_on),
                   fmt_percent((all_on - fleet_kw) / cluster_avg)});
  }
  std::printf("%s", table.to_ascii().c_str());
  std::printf(
      "Role mix: 40%% ToRs in L2-only, 40%% aggs in lean-L3, 20%% cores\n"
      "full. Static knobs alone recover a slice of cluster power with no\n"
      "performance cost - but only if gating actually works in hardware\n"
      "(the paper's [15, 24] complaint).\n\n");
}

void BM_FleetEvaluation(benchmark::State& state) {
  const auto router = RouterComponentModel::reference_router();
  for (auto _ : state) {
    double total = 0.0;
    for (const auto& role : kRoles) {
      total += router.power_in_cstate(role.cstate, GatingQuality::kFixed)
                   .value() *
               role.fleet_fraction;
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_FleetEvaluation);

}  // namespace

int main(int argc, char** argv) {
  print_fleet();
  return netpp::bench::run_benchmarks(argc, argv);
}
