// Scoring half of the perf scoreboard (see scoreboard.h). The JSON reader
// is a deliberately small recursive-descent scanner over the
// google-benchmark output format: no external JSON dependency, tolerant of
// unknown fields, keeps only per-benchmark cpu_time plus the flat context
// entries.
#include "scoreboard.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string_view>
#include <utility>

namespace netpp::bench {
namespace {

class JsonScanner {
 public:
  explicit JsonScanner(std::string_view text) : text_(text) {}

  void skip_ws() {
    while (at_ < text_.size()) {
      const char c = text_[at_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++at_;
    }
  }

  [[nodiscard]] char peek() {
    skip_ws();
    return at_ < text_.size() ? text_[at_] : '\0';
  }

  bool consume(char c) {
    if (peek() != c) {
      ok_ = false;
      return false;
    }
    ++at_;
    return true;
  }

  [[nodiscard]] bool ok() const { return ok_; }

  /// Positioned at '"'. Returns the unescaped string (\uXXXX collapses to
  /// '?': no key or value the scoreboard reads uses it).
  std::string parse_string() {
    std::string out;
    if (!consume('"')) return out;
    while (at_ < text_.size()) {
      const char c = text_[at_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (at_ >= text_.size()) break;
      const char esc = text_[at_++];
      switch (esc) {
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u':
          at_ = at_ + 4 <= text_.size() ? at_ + 4 : text_.size();
          out.push_back('?');
          break;
        default: out.push_back(esc); break;
      }
    }
    ok_ = false;
    return out;
  }

  double parse_number() {
    skip_ws();
    const char* begin = text_.data() + at_;
    char* end = nullptr;
    const double value = std::strtod(begin, &end);
    if (end == begin) {
      ok_ = false;
      return 0.0;
    }
    at_ += static_cast<std::size_t>(end - begin);
    return value;
  }

  /// Skips any JSON value; returns its scalar rendering when the value was
  /// a string/number/bool/null ("" for containers, which are skipped whole).
  std::string skip_value() {
    const char c = peek();
    if (c == '"') return parse_string();
    if (c == '{' || c == '[') {
      const char open = c;
      const char close = open == '{' ? '}' : ']';
      ++at_;
      int depth = 1;
      while (at_ < text_.size() && depth > 0) {
        const char k = text_[at_];
        if (k == '"') {
          (void)parse_string();
          continue;
        }
        if (k == open) ++depth;
        if (k == close) --depth;
        ++at_;
      }
      if (depth != 0) ok_ = false;
      return "";
    }
    if (c == 't' || c == 'f' || c == 'n') {
      std::string word;
      while (at_ < text_.size() &&
             ((text_[at_] >= 'a' && text_[at_] <= 'z'))) {
        word.push_back(text_[at_++]);
      }
      return word;
    }
    std::ostringstream num;
    num << parse_number();
    return num.str();
  }

  /// Positioned at '{'. Calls fn(key) with the scanner positioned at the
  /// value; fn must consume the value (parse_* or skip_value).
  template <typename Fn>
  void parse_object(Fn&& fn) {
    if (!consume('{')) return;
    if (peek() == '}') {
      ++at_;
      return;
    }
    while (ok_) {
      const std::string key = parse_string();
      if (!consume(':')) return;
      fn(key);
      const char c = peek();
      if (c == ',') {
        ++at_;
        continue;
      }
      consume('}');
      return;
    }
  }

  /// Positioned at '['. Calls fn() with the scanner at each element.
  template <typename Fn>
  void parse_array(Fn&& fn) {
    if (!consume('[')) return;
    if (peek() == ']') {
      ++at_;
      return;
    }
    while (ok_) {
      fn();
      const char c = peek();
      if (c == ',') {
        ++at_;
        continue;
      }
      consume(']');
      return;
    }
  }

 private:
  std::string_view text_;
  std::size_t at_ = 0;
  bool ok_ = true;
};

double unit_to_ms(const std::string& unit) {
  if (unit == "ns") return 1e-6;
  if (unit == "us") return 1e-3;
  if (unit == "s") return 1e3;
  return 1.0;  // "ms" — the repo's benchmarks all report milliseconds
}

void parse_benchmark_entry(JsonScanner& scan,
                           std::map<std::string, double>& out) {
  std::string name;
  std::string run_type;
  std::string unit = "ms";
  double cpu_time = -1.0;
  scan.parse_object([&](const std::string& key) {
    if (key == "name") {
      name = scan.parse_string();
    } else if (key == "run_type") {
      run_type = scan.parse_string();
    } else if (key == "time_unit") {
      unit = scan.parse_string();
    } else if (key == "cpu_time") {
      cpu_time = scan.parse_number();
    } else {
      (void)scan.skip_value();
    }
  });
  // First iteration entry wins; aggregates (mean/median/stddev) are skipped
  // so repetition runs score the same as single runs.
  if (!name.empty() && cpu_time >= 0.0 && run_type != "aggregate" &&
      out.find(name) == out.end()) {
    out.emplace(name, cpu_time * unit_to_ms(unit));
  }
}

std::string fmt_ms(double ms) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%10.2f ms", ms);
  return buf;
}

std::string fmt_pct(double pct) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%+9.2f %% ", pct);
  return buf;
}

}  // namespace

double ReferenceScores::benchmark_ms(const std::string& name) const {
  const auto it = benchmark_cpu_ms.find(name);
  return it == benchmark_cpu_ms.end() ? -1.0 : it->second;
}

double ReferenceScores::context_number(const std::string& key) const {
  const auto it = context.find(key);
  if (it == context.end() || it->second.empty()) return -1.0;
  char* end = nullptr;
  const double value = std::strtod(it->second.c_str(), &end);
  return end == it->second.c_str() ? -1.0 : value;
}

bool ReferenceScores::release_reference() const {
  const auto it = context.find("netpp_build_type");
  return it != context.end() && it->second == "release";
}

ReferenceScores load_reference_scores(const std::string& path) {
  ReferenceScores ref;
  ref.path = path;
  std::ifstream in{path, std::ios::binary};
  if (!in) return ref;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  JsonScanner scan{text};
  scan.parse_object([&](const std::string& key) {
    if (key == "context") {
      scan.parse_object([&](const std::string& ctx_key) {
        const std::string value = scan.skip_value();
        if (!value.empty()) ref.context.emplace(ctx_key, value);
      });
    } else if (key == "benchmarks") {
      scan.parse_array(
          [&] { parse_benchmark_entry(scan, ref.benchmark_cpu_ms); });
    } else {
      (void)scan.skip_value();
    }
  });
  ref.loaded = scan.ok() && !ref.benchmark_cpu_ms.empty();
  return ref;
}

bool ScoreRow::scored() const {
  return kind == RowKind::kAbsolutePct || reference > 0.0;
}

double ScoreRow::ratio() const {
  if (kind != RowKind::kRatio || reference <= 0.0) return -1.0;
  return measured / reference;
}

bool ScoreRow::failed() const {
  if (!scored()) return false;
  if (kind == RowKind::kAbsolutePct) return measured >= limit;
  return ratio() > limit;
}

ScoreboardReport score_rows(std::vector<ScoreRow> rows,
                            const ReferenceScores& ref) {
  const bool usable = ref.loaded && ref.release_reference();
  for (ScoreRow& row : rows) {
    if (row.kind == RowKind::kAbsolutePct) {
      row.reference = ref.context_number(row.reference_key);
      continue;
    }
    if (!usable) {
      row.reference = -1.0;
      continue;
    }
    row.reference = ref.benchmark_ms(row.reference_key);
    if (row.reference <= 0.0) {
      row.reference = ref.context_number(row.reference_key);
    }
  }

  ScoreboardReport report;
  std::string table;
  {
    char head[160];
    std::snprintf(head, sizeof head, "  %-22s %13s %13s %8s %8s  %s\n",
                  "scenario", "measured", "reference", "ratio", "limit",
                  "status");
    table = head;
  }
  for (const ScoreRow& row : rows) {
    const bool pct = row.kind == RowKind::kAbsolutePct;
    const std::string measured = pct ? fmt_pct(row.measured)
                                     : fmt_ms(row.measured);
    const std::string reference =
        row.reference > 0.0 || (pct && row.reference > -1.0)
            ? (pct ? fmt_pct(row.reference) : fmt_ms(row.reference))
            : std::string{"            -"};
    char ratio_buf[32] = "       -";
    if (row.ratio() >= 0.0) {
      std::snprintf(ratio_buf, sizeof ratio_buf, "%8.3f", row.ratio());
    }
    char limit_buf[32];
    if (pct) {
      std::snprintf(limit_buf, sizeof limit_buf, "<%5.2f%% ", row.limit);
    } else {
      std::snprintf(limit_buf, sizeof limit_buf, "<=%5.2f ", row.limit);
    }
    const char* status = "unscored";
    if (row.scored()) status = row.failed() ? "FAIL" : "ok";
    char line[256];
    std::snprintf(line, sizeof line, "  %-22s %13s %13s %8s %8s  %s\n",
                  row.name.c_str(), measured.c_str(), reference.c_str(),
                  ratio_buf, limit_buf, status);
    table += line;

    if (row.scored()) {
      ++report.scored;
      if (row.failed()) ++report.failures;
    } else {
      ++report.unscored;
    }
  }
  report.rows = std::move(rows);
  report.table = std::move(table);
  return report;
}

}  // namespace netpp::bench
