// Scale gate for the flow-simulation hot path: how fast can we solve the
// max-min fair-share problem and run the event loop at HPN-pod scale?
//
// Two families of benchmarks, sized 1k / 10k / 100k flows on a k=8 fat tree
// (128 hosts, the paper's HPN-pod shape scaled to fit CI); the workloads
// themselves live in bench/workloads.h so every perf gate (this binary, the
// telemetry gate, the scoreboard) scores the same fixed scenarios:
//   - BM_Solver{Capped,Uncapped}: one fair-share solve over a snapshot of N
//     simultaneously active flows (capped = NIC-bound ML regime, uncapped =
//     fabric-contended regime).
//   - BM_SolverReference*: the pre-optimization progressive-filling solver
//     (kept verbatim below) on the same snapshots, so every future run
//     carries the before/after trajectory in one JSON.
//   - BM_FlowSimPoisson: end-to-end event loop, Poisson arrivals with
//     bounded-Pareto sizes, ~300 concurrent flows in steady state.
//     BM_FlowSimPoissonNoRouteCache is the same loop with
//     Config::use_route_cache off (per-arrival BFS), isolating what the
//     route cache buys end-to-end.
//   - BM_EcmpRoute{Uncached,Cached}: routing only — N ECMP route picks for
//     random host pairs against a fresh Router vs through a RouteCache.
//     Cached cost is sublinear in N: the (ToR,ToR)-canonical pair space of
//     the k=8 pod saturates after a few thousand lookups and everything
//     after is a hash probe.
//
// Regenerate the checked-in baseline with tools/record_bench.sh (one-step
// Release build + record; see bench/README.md).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <limits>
#include <vector>

#include "bench_util.h"
#include "netpp/netsim/fairshare.h"
#include "netpp/netsim/flowsim.h"
#include "netpp/topo/route_cache.h"
#include "netpp/topo/routing.h"
#include "workloads.h"

namespace {

using namespace netpp;

// ---------------------------------------------------------------------------
// Reference solver: the original O(rounds x (links + flows)) progressive
// filling with per-round linear scans, kept verbatim as the perf baseline.
// The equivalence property tests (tests/netsim/fairshare_property_test.cpp,
// tests/netsim/fairshare_soa_test.cpp) hold the optimized solver
// bit-identical to this on every SIMD dispatch path.
// ---------------------------------------------------------------------------
std::vector<double> max_min_fair_rates_reference(
    const std::vector<FairShareFlow>& flows,
    const std::vector<double>& capacities) {
  const std::size_t num_flows = flows.size();
  const std::size_t num_res = capacities.size();

  std::vector<double> rate(num_flows, 0.0);
  std::vector<bool> frozen(num_flows, false);
  std::vector<double> residual = capacities;
  std::vector<std::size_t> active_on(num_res, 0);

  std::vector<std::vector<std::size_t>> flows_on(num_res);
  for (std::size_t f = 0; f < num_flows; ++f) {
    for (std::size_t r : flows[f].resources) {
      flows_on[r].push_back(f);
      ++active_on[r];
    }
  }

  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::size_t remaining = num_flows;
  while (remaining > 0) {
    double link_share = kInf;
    std::size_t tight_link = num_res;
    for (std::size_t r = 0; r < num_res; ++r) {
      if (active_on[r] == 0) continue;
      const double share = residual[r] / static_cast<double>(active_on[r]);
      if (share < link_share) {
        link_share = share;
        tight_link = r;
      }
    }
    double cap_level = kInf;
    std::size_t capped_flow = num_flows;
    for (std::size_t f = 0; f < num_flows; ++f) {
      if (frozen[f]) continue;
      if (flows[f].cap > 0.0 && flows[f].cap < cap_level) {
        cap_level = flows[f].cap;
        capped_flow = f;
      }
    }
    if (tight_link == num_res && capped_flow == num_flows) break;
    if (cap_level <= link_share) {
      frozen[capped_flow] = true;
      rate[capped_flow] = cap_level;
      --remaining;
      for (std::size_t r : flows[capped_flow].resources) {
        residual[r] -= cap_level;
        if (residual[r] < 0.0) residual[r] = 0.0;
        --active_on[r];
      }
      continue;
    }
    for (std::size_t f : flows_on[tight_link]) {
      if (frozen[f]) continue;
      frozen[f] = true;
      rate[f] = link_share;
      --remaining;
      for (std::size_t r : flows[f].resources) {
        residual[r] -= link_share;
        if (residual[r] < 0.0) residual[r] = 0.0;
        --active_on[r];
      }
    }
  }
  return rate;
}

void BM_SolverCapped(benchmark::State& state) {
  const auto snap =
      bench::make_solver_snapshot(static_cast<std::size_t>(state.range(0)),
                                  25e9);
  for (auto _ : state) {
    auto rates = max_min_fair_rates(snap.flows, snap.capacities);
    benchmark::DoNotOptimize(rates);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SolverCapped)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

void BM_SolverUncapped(benchmark::State& state) {
  const auto snap =
      bench::make_solver_snapshot(static_cast<std::size_t>(state.range(0)),
                                  0.0);
  for (auto _ : state) {
    auto rates = max_min_fair_rates(snap.flows, snap.capacities);
    benchmark::DoNotOptimize(rates);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SolverUncapped)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

void BM_SolverReferenceCapped(benchmark::State& state) {
  const auto snap =
      bench::make_solver_snapshot(static_cast<std::size_t>(state.range(0)),
                                  25e9);
  for (auto _ : state) {
    auto rates = max_min_fair_rates_reference(snap.flows, snap.capacities);
    benchmark::DoNotOptimize(rates);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SolverReferenceCapped)
    ->Arg(1000)
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond);

void BM_SolverReferenceUncapped(benchmark::State& state) {
  const auto snap =
      bench::make_solver_snapshot(static_cast<std::size_t>(state.range(0)),
                                  0.0);
  for (auto _ : state) {
    auto rates = max_min_fair_rates_reference(snap.flows, snap.capacities);
    benchmark::DoNotOptimize(rates);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SolverReferenceUncapped)
    ->Arg(1000)
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond);

// End-to-end event loop: Poisson arrivals sized so that ~300 flows are
// active in steady state; NIC-capped at 25 G like the HPN-pod GPU hosts.
void BM_FlowSimPoisson(benchmark::State& state) {
  const auto flows =
      bench::make_poisson_workload(static_cast<std::size_t>(state.range(0)));

  bench::PoissonRun last;
  for (auto _ : state) {
    last = bench::run_poisson_workload(flows);
    benchmark::DoNotOptimize(last.completed);
  }
  state.counters["flows"] = static_cast<double>(flows.size());
  state.counters["completed"] = static_cast<double>(last.completed);
  state.counters["events"] = static_cast<double>(last.events);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(flows.size()));
}
BENCHMARK(BM_FlowSimPoisson)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

// Opt-out control: identical workload with per-arrival BFS routing. The
// flowsim_routecache test pins the two configurations to bit-identical
// completion times, so any delta here is pure routing cost.
void BM_FlowSimPoissonNoRouteCache(benchmark::State& state) {
  const auto flows =
      bench::make_poisson_workload(static_cast<std::size_t>(state.range(0)));

  for (auto _ : state) {
    const auto run = bench::run_poisson_workload(flows, false);
    benchmark::DoNotOptimize(run.completed);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(flows.size()));
}
BENCHMARK(BM_FlowSimPoissonNoRouteCache)
    ->Arg(1000)
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Routing-only family: N ECMP route picks for pseudo-random host pairs.
// ---------------------------------------------------------------------------
void BM_EcmpRouteUncached(benchmark::State& state) {
  const auto& topo = bench::pod_topology();
  const auto pairs =
      bench::make_host_pairs(static_cast<std::size_t>(state.range(0)));
  Router router{topo.graph};
  for (auto _ : state) {
    std::size_t hops = 0;
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      const auto path = router.ecmp_route(pairs[i].first, pairs[i].second, i);
      hops += path ? path->hops() : 0;
    }
    benchmark::DoNotOptimize(hops);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(pairs.size()));
}
BENCHMARK(BM_EcmpRouteUncached)
    ->Arg(1000)
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond);

void BM_EcmpRouteCached(benchmark::State& state) {
  const auto& topo = bench::pod_topology();
  const auto pairs =
      bench::make_host_pairs(static_cast<std::size_t>(state.range(0)));
  Router router{topo.graph};
  RouteCache cache{router, RouteCache::Config{}};
  for (auto _ : state) {
    std::size_t hops = 0;
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      const auto path = cache.route(pairs[i].first, pairs[i].second, i);
      hops += path ? path->hops() : 0;
    }
    benchmark::DoNotOptimize(hops);
  }
  const auto stats = cache.stats();
  state.counters["entries"] = static_cast<double>(stats.entries);
  state.counters["pool_kb"] = static_cast<double>(stats.pool_bytes) / 1024.0;
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(pairs.size()));
}
BENCHMARK(BM_EcmpRouteCached)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  netpp::bench::print_banner(
      "Flow-simulation scale gate - k=8 fat tree (128 hosts)");
  std::printf(
      "Solver snapshots at 1k/10k/100k active flows plus end-to-end Poisson\n"
      "runs; *Reference* benchmarks are the pre-optimization solver kept for\n"
      "the perf trajectory. JSON: --benchmark_format=json.\n\n");
  return netpp::bench::run_benchmarks(argc, argv);
}
