// Reproduces paper Figure 2 (a and b): power footprint of the baseline
// cluster (§2.1) split by component class, per phase, in relative and
// absolute terms, plus the energy-efficiency bars.
//
// Paper reference values: network ~12% of average power; GPU&server 88.1% of
// the computation phase; network energy efficiency ~11%.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"
#include "netpp/analysis/report.h"
#include "netpp/cluster/cluster.h"

namespace {

using namespace netpp;

void print_figure2() {
  const ClusterModel cluster{ClusterConfig{}};

  const PowerBreakdown comp = cluster.phase_power(Phase::kComputation);
  const PowerBreakdown comm = cluster.phase_power(Phase::kCommunication);
  const PowerBreakdown avg = cluster.average_power();

  netpp::bench::print_banner(
      "Figure 2a: relative power breakdown per phase (baseline cluster)");
  Table rel{{"Phase", "GPU&Server", "NICs", "Switches", "Transceiver",
             "Idle"}};
  const auto rel_row = [&](const char* name, const PowerBreakdown& b) {
    const double t = b.total().value();
    rel.add_row({name, fmt_percent(b.gpu.value() / t),
                 fmt_percent(b.nics.value() / t),
                 fmt_percent(b.switches.value() / t),
                 fmt_percent(b.transceivers.value() / t),
                 fmt_percent(b.idle.value() / t)});
  };
  rel_row("Computation", comp);
  rel_row("Average", avg);
  rel_row("Communication", comm);
  std::printf("%s", rel.to_ascii().c_str());
  std::printf("Paper: GPU&Server = 88.1%% of the computation phase.\n\n");

  netpp::bench::print_banner(
      "Figure 2b: absolute power per phase and energy efficiency");
  Table abs{{"Phase", "Compute (MW)", "Network (MW)", "Total (MW)"}};
  const double r = cluster.config().communication_ratio;
  const auto net = cluster.network_envelope();
  const auto gpu = cluster.compute_envelope();
  abs.add_row({"Computation (90% of time)",
               fmt(gpu.max_power().megawatts(), 2),
               fmt(net.idle_power().megawatts(), 2),
               fmt((gpu.max_power() + net.idle_power()).megawatts(), 2)});
  abs.add_row({"Communication (10% of time)",
               fmt(gpu.idle_power().megawatts(), 2),
               fmt(net.max_power().megawatts(), 2),
               fmt((gpu.idle_power() + net.max_power()).megawatts(), 2)});
  abs.add_row({"Average", fmt(gpu.duty_cycle_average(1.0 - r).megawatts(), 2),
               fmt(net.duty_cycle_average(r).megawatts(), 2),
               fmt(cluster.average_total_power().megawatts(), 2)});
  std::printf("%s", abs.to_ascii().c_str());

  Table eff{{"Side", "Energy efficiency"}};
  eff.add_row({"Compute", fmt_percent(cluster.compute_energy_efficiency())});
  eff.add_row({"Network", fmt_percent(cluster.network_energy_efficiency())});
  std::printf("%s", eff.to_ascii().c_str());
  std::printf(
      "Paper: network = 12%% of average power, network efficiency = 11%%.\n"
      "This model: network share of average = %s.\n\n",
      fmt_percent(cluster.network_share_of_average()).c_str());
}

void BM_ClusterModelConstruction(benchmark::State& state) {
  for (auto _ : state) {
    ClusterModel cluster{ClusterConfig{}};
    benchmark::DoNotOptimize(cluster.average_total_power());
  }
}
BENCHMARK(BM_ClusterModelConstruction);

void BM_PhaseBreakdown(benchmark::State& state) {
  const ClusterModel cluster{ClusterConfig{}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(cluster.average_power());
  }
}
BENCHMARK(BM_PhaseBreakdown);

}  // namespace

int main(int argc, char** argv) {
  print_figure2();
  return netpp::bench::run_benchmarks(argc, argv);
}
