// Robustness what-if: what does power proportionality cost when hardware
// fails? Sweeps failure rate x degraded-mode policy over a leaf-spine
// fabric running ring all-reduce training traffic, and reports the
// resilience triangle: availability, stranded demand, and the energy delta
// vs an always-all-on fabric.
//
// The scenario (topology, workload, demand matrix, fault-schedule seeding)
// lives in bench/workloads.h, shared with the perf scoreboard so both score
// the same fault storm. The sweep is bit-reproducible and thread-count
// independent: every (rate, policy) cell derives its fault schedule from a
// seed that is a pure function of the rate row, so all policies in a row
// face the *same* fault trace, and SweepRunner writes results into
// pre-sized slots.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <iterator>
#include <string>
#include <vector>

#include "bench_util.h"
#include "netpp/analysis/report.h"
#include "netpp/faults/experiment.h"
#include "netpp/sim/sweep.h"
#include "workloads.h"

namespace {

using namespace netpp;

struct RateCase {
  const char* name;
  /// Switch/link MTBF; 0 disables faults entirely (the baseline row).
  double mtbf_s;
  double mttr_s;
};

struct MechCase {
  const char* name;
  bool tailor;
  DegradedPolicy policy;
  double min_headroom;
};

const RateCase kRates[] = {
    {"none", 0.0, 0.5},
    {"mtbf=20s", 20.0, 0.5},
    {"mtbf=5s", 5.0, 0.5},
};

const MechCase kMechs[] = {
    {"all-on, no policy", false, DegradedPolicy::kNone, 0.0},
    {"tailored, no policy", true, DegradedPolicy::kNone, 0.0},
    {"tailored + wake-all", true, DegradedPolicy::kEmergencyWakeAll, 0.0},
    {"tailored + re-tailor", true, DegradedPolicy::kRetailor, 0.0},
    {"re-tailor, headroom 25%", true, DegradedPolicy::kRetailor, 0.25},
};

FaultSchedule make_schedule(const bench::FaultScenario& s,
                            const RateCase& rate, std::size_t rate_index) {
  // Seeded per rate row, NOT per sweep cell: every policy faces the same
  // fault trace, so columns are comparable within a row.
  return bench::make_fault_schedule(s, rate.mtbf_s, rate.mttr_s,
                                    bench::kFaultSeed + rate_index);
}

FaultExperimentResult run_cell(const bench::FaultScenario& s,
                               const RateCase& rate, std::size_t rate_index,
                               const MechCase& mech) {
  FaultExperimentConfig config;
  config.tailor = mech.tailor;
  config.degraded.policy = mech.policy;
  config.degraded.min_headroom = mech.min_headroom;
  config.degraded.wake_latency = Seconds::from_milliseconds(50.0);
  config.demands = s.demands;
  return run_fault_experiment(s.topology, s.workload,
                              make_schedule(s, rate, rate_index), config);
}

void print_resilience_sweep() {
  netpp::bench::print_banner(
      "Failure rate x degraded-mode policy (4x4 leaf-spine, ring all-reduce)");
  const bench::FaultScenario s = bench::make_fault_scenario();
  std::printf("Fabric: %zu switches, %zu links; workload: %zu flows over %s\n\n",
              s.topology.switches.size(), s.topology.graph.num_links(),
              s.workload.size(), to_string(s.horizon).c_str());

  constexpr std::size_t kNumRates = std::size(kRates);
  constexpr std::size_t kNumMechs = std::size(kMechs);
  SweepRunner runner;
  const auto results = runner.map<FaultExperimentResult>(
      kNumRates * kNumMechs, [&](std::size_t index, Rng& /*rng*/) {
        const std::size_t r = index / kNumMechs;
        return run_cell(s, kRates[r], r, kMechs[index % kNumMechs]);
      });

  Table table{{"Faults", "Policy", "Injected", "Avail", "Stranded (Gbit*s)",
               "p99 recovery", "Energy vs all-on"}};
  for (std::size_t r = 0; r < kNumRates; ++r) {
    for (std::size_t m = 0; m < kNumMechs; ++m) {
      const auto& cell = results[r * kNumMechs + m];
      table.add_row({kRates[r].name, kMechs[m].name,
                     std::to_string(cell.report.faults_injected),
                     fmt_percent(cell.report.availability, 2),
                     fmt(cell.report.stranded_demand_gbit_seconds, 3),
                     to_string(cell.report.p99_recovery),
                     fmt_percent(cell.report.energy_delta, 1)});
    }
  }
  std::printf("%s", table.to_ascii().c_str());
  std::printf(
      "Tailoring without a recall policy strands demand whenever the thin\n"
      "fabric loses a device; re-tailoring (or headroom) buys the\n"
      "availability back while keeping most of the energy savings - the\n"
      "robustness caveat to Sec. 4.2's exact-fit tailoring.\n\n");
}

void BM_FaultExperiment(benchmark::State& state) {
  const bench::FaultScenario s = bench::make_fault_scenario();
  const FaultSchedule schedule = make_schedule(s, kRates[2], 2);
  for (auto _ : state) {
    auto result = run_cell(s, kRates[2], 2, kMechs[3]);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_FaultExperiment);

void BM_FaultScheduleGeneration(benchmark::State& state) {
  const bench::FaultScenario s = bench::make_fault_scenario();
  for (auto _ : state) {
    auto schedule = make_schedule(s, kRates[2], 2);
    benchmark::DoNotOptimize(schedule);
  }
}
BENCHMARK(BM_FaultScheduleGeneration);

}  // namespace

int main(int argc, char** argv) {
  print_resilience_sweep();
  return netpp::bench::run_benchmarks(argc, argv);
}
