// Model-extension benches: the analyses the paper gestures at but does not
// run.
//
//   1. Overlap ablation (§3.4): how much of Table 3 survives when
//      computation and communication overlap?
//   2. Sensitivity sweep: how the headline numbers move as each modeling
//      assumption is perturbed (robustness check).
//   3. Peak-power flattening (§3.2: "harder to quantify" — quantified).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"
#include "netpp/analysis/overlap.h"
#include "netpp/analysis/peak_power.h"
#include "netpp/analysis/report.h"
#include "netpp/analysis/sensitivity.h"

namespace {

using namespace netpp;
using namespace netpp::literals;

void print_overlap() {
  netpp::bench::print_banner(
      "Sec. 3.4 extension: savings under compute/communication overlap");

  const ClusterModel cluster{ClusterConfig{}};
  const IterationProfile profile{0.9_s, 0.1_s};

  Table table{{"Overlap", "Iteration speedup", "Network active time",
               "Network efficiency", "Savings @50%", "Savings @85%"}};
  for (double o : {0.0, 0.25, 0.50, 0.75, 1.0}) {
    const OverlapModel model{profile, o};
    table.add_row({fmt_percent(o, 0),
                   fmt_percent(model.iteration_speedup()),
                   fmt_percent(model.iteration().network_active_fraction()),
                   fmt_percent(model.network_efficiency(cluster)),
                   fmt_percent(model.savings_fraction(cluster, 0.50)),
                   fmt_percent(model.savings_fraction(cluster, 0.85))});
  }
  std::printf("%s", table.to_ascii().c_str());
  std::printf(
      "Even with fully-overlapped training the network idles through most\n"
      "of each iteration, so the bulk of the Table-3 savings survives -\n"
      "the paper's Sec. 3.4 argument, quantified.\n\n");
}

void print_sensitivity() {
  netpp::bench::print_banner(
      "Sensitivity: headline numbers vs modeling assumptions");

  const auto base = headline_metrics(ClusterConfig{});
  std::printf(
      "Baseline: network share %s, efficiency %s, savings@50 %s, "
      "savings@85 %s\n\n",
      fmt_percent(base.network_share).c_str(),
      fmt_percent(base.network_efficiency).c_str(),
      fmt_percent(base.savings_at_50).c_str(),
      fmt_percent(base.savings_at_85).c_str());

  Table table{{"Assumption", "Value", "Net share", "Net efficiency",
               "Savings @50%", "Savings @85%"}};
  for (const auto& point : run_sensitivity(make_paper_sensitivity_suite())) {
    table.add_row({point.parameter, fmt(point.value, 2),
                   fmt_percent(point.metrics.network_share),
                   fmt_percent(point.metrics.network_efficiency),
                   fmt_percent(point.metrics.savings_at_50),
                   fmt_percent(point.metrics.savings_at_85)});
  }
  std::printf("%s", table.to_ascii().c_str());
  std::printf(
      "Across all plausible assumption ranges the story holds: the network\n"
      "is a sizeable share and proportionality saves several percent.\n\n");
}

void print_peak() {
  netpp::bench::print_banner(
      "Sec. 3.2 extension: peak-power flattening (quantified)");

  const std::vector<double> props = {0.10, 0.20, 0.50, 0.85, 1.00};
  const auto points = peak_power_sweep(ClusterConfig{}, props);
  Table table{{"Proportionality", "Peak (MW)", "Average (MW)",
               "Peak/Average", "Peak shaved", "Extra GPUs at same peak"}};
  for (const auto& p : points) {
    table.add_row(
        {fmt_percent(p.proportionality, 0), fmt(p.peak.megawatts(), 3),
         fmt(p.average.megawatts(), 3), fmt(p.peak_to_average, 3),
         fmt_percent(p.peak_reduction),
         fmt(extra_gpus_from_peak_headroom(ClusterConfig{},
                                           p.proportionality),
             0)});
  }
  std::printf("%s", table.to_ascii().c_str());
  std::printf(
      "Every point of network proportionality shaves the computation-phase\n"
      "peak one-for-one with the idle draw - headroom the facility can\n"
      "spend on more GPUs without new power delivery.\n\n");
}

void BM_SensitivitySuite(benchmark::State& state) {
  for (auto _ : state) {
    auto points = run_sensitivity(make_paper_sensitivity_suite());
    benchmark::DoNotOptimize(points);
  }
}
BENCHMARK(BM_SensitivitySuite);

void BM_PeakHeadroomSolve(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        extra_gpus_from_peak_headroom(ClusterConfig{}, 0.85));
  }
}
BENCHMARK(BM_PeakHeadroomSolve);

}  // namespace

int main(int argc, char** argv) {
  print_overlap();
  print_sensitivity();
  print_peak();
  return netpp::bench::run_benchmarks(argc, argv);
}
