// §4.4 latency cost, packet-level: per-packet latency distribution of a
// circuit-switched, pipeline-parked switch under Poisson traffic.
//
// Sweeps the number of active pipelines (4 = no parking ... 1 = deepest) and
// the multiplexing dwell, reporting p50/p99/p99.9 latency, drops, and power
// — the quantitative answer to "What is the latency cost?" and "This could
// be done internally by using electrical circuit switches with small
// buffers".
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"
#include "netpp/analysis/report.h"
#include "netpp/mech/packet_switch.h"
#include "netpp/sim/random.h"

namespace {

using namespace netpp;
using namespace netpp::literals;

constexpr double kPacketBits = 12000.0;  // 1500 B
constexpr double kHorizon = 0.02;        // 20 ms

PacketSwitchConfig base_switch() {
  PacketSwitchConfig cfg;
  cfg.num_ports = 8;
  cfg.num_pipelines = 4;
  cfg.port_rate = 100_Gbps;
  cfg.port_buffer = Bits::from_bytes(4e6);
  return cfg;
}

/// Poisson packet arrivals at `load` of total port capacity.
void inject_poisson(PacketSwitchSim& sim, double load, std::uint64_t seed) {
  Rng rng{seed};
  const auto& cfg = sim.config();
  const double per_port_rate =
      load * cfg.port_rate.bits_per_second() / kPacketBits;
  for (int port = 0; port < cfg.num_ports; ++port) {
    double t = 0.0;
    Rng port_rng = rng.split();
    while (true) {
      t += port_rng.exponential(per_port_rate);
      if (t >= kHorizon) break;
      sim.inject(port, Seconds{t}, Bits{kPacketBits});
    }
  }
}

void print_latency_cost() {
  netpp::bench::print_banner(
      "Sec. 4.4 latency cost: packet latency vs parked pipelines");

  Table table{{"Load", "Active pipes", "p50", "p99", "p99.9", "Drop rate",
               "Avg power (W)"}};
  for (double load : {0.05, 0.20}) {
    for (int active : {4, 3, 2, 1}) {
      // Skip infeasible operating points (offered > capacity).
      if (load * 4.0 > active * 1.0) continue;
      auto cfg = base_switch();
      cfg.active_pipelines = active;
      SimEngine engine;
      PacketSwitchSim sim{engine, cfg};
      inject_poisson(sim, load, 77);
      engine.run_until(Seconds{kHorizon});
      const auto result = sim.finish(Seconds{kHorizon});
      const double drop_rate =
          result.injected
              ? static_cast<double>(result.dropped) /
                    static_cast<double>(result.injected)
              : 0.0;
      table.add_row({fmt_percent(load, 0), std::to_string(active),
                     to_string(result.p50()), to_string(result.p99()),
                     to_string(result.p999()), fmt_percent(drop_rate, 2),
                     fmt(result.average_power.value(), 1)});
    }
  }
  std::printf("%s", table.to_ascii().c_str());
  std::printf(
      "Parking pipelines behind the circuit switch trades tail latency\n"
      "(bounded by the multiplexing cycle) for power. At low load the p50\n"
      "cost is microseconds; drops appear only when offered load nears the\n"
      "active capacity.\n\n");

  netpp::bench::print_banner("Dwell sensitivity (2 active pipelines, 5% load)");
  Table dwell{{"Dwell", "p50", "p99", "Rotations/ms overhead"}};
  for (double dwell_us : {10.0, 50.0, 200.0, 1000.0}) {
    auto cfg = base_switch();
    cfg.active_pipelines = 2;
    cfg.dwell = Seconds::from_microseconds(dwell_us);
    SimEngine engine;
    PacketSwitchSim sim{engine, cfg};
    inject_poisson(sim, 0.05, 77);
    engine.run_until(Seconds{kHorizon});
    const auto result = sim.finish(Seconds{kHorizon});
    dwell.add_row({fmt(dwell_us, 0) + " us", to_string(result.p50()),
                   to_string(result.p99()),
                   fmt(1000.0 / dwell_us * cfg.reconfig.value() * 1e6, 2) +
                       " us"});
  }
  std::printf("%s", dwell.to_ascii().c_str());
  std::printf(
      "Short dwells bound the waiting time of disconnected ports but pay\n"
      "more reconfiguration overhead; long dwells the reverse.\n\n");
}

void BM_PacketSwitchPoisson(benchmark::State& state) {
  for (auto _ : state) {
    auto cfg = base_switch();
    cfg.active_pipelines = 2;
    SimEngine engine;
    PacketSwitchSim sim{engine, cfg};
    inject_poisson(sim, 0.05, 77);
    engine.run_until(Seconds{kHorizon});
    auto result = sim.finish(Seconds{kHorizon});
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_PacketSwitchPoisson);

}  // namespace

int main(int argc, char** argv) {
  print_latency_cost();
  return netpp::bench::run_benchmarks(argc, argv);
}
