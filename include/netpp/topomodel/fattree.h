// Closed-form fat-tree sizing (paper §2.4).
//
// The analysis needs the number of switches (and inter-switch links /
// transceivers) required to connect N hosts at a given per-host port speed,
// using fixed-radix switches. We use the generalized full-bisection fat-tree
// (folded Clos) closed form:
//
//   an n-tier fat tree built from radix-R switches supports
//       H(n) = 2 * (R/2)^n      hosts, using
//       S(n) = (2n - 1) * (R/2)^(n-1)   switches.
//
//   (n=2 gives the familiar leaf/spine R^2/2 hosts with 3R/2 switches;
//    n=3 gives the k-ary fat tree's k^3/4 hosts with 5k^2/4 switches.)
//
// For host counts strictly between two tiers' capacities, the paper
// "interpolates"; we implement a continuous, monotone geometric (log-space)
// interpolation between the bracketing (H, S) points — tier capacities grow
// geometrically, so log-linear is the natural interpolant — which reproduces
// the paper's Table 3 to within ~0.1 pp on the measured-NIC rows (see
// EXPERIMENTS.md).
//
// Port/link/transceiver accounting: a fractional switch count `S` of
// radix-R switches exposes S*R ports; N of them face hosts, the remainder
// form inter-switch links (2 ports each), every inter-switch link carrying
// one optical transceiver per end (host links are electrical, ~0 W, §2.3.2).
#pragma once

#include <cstdint>

#include "netpp/units.h"

namespace netpp {

/// Sizing results for connecting a given number of hosts.
struct FatTreeSize {
  double switches = 0.0;          ///< fractional switch count (interpolated)
  int tiers = 0;                  ///< number of tiers of the bracketing tree
  double total_ports = 0.0;       ///< switches * radix
  double host_ports = 0.0;        ///< ports facing hosts (== hosts)
  double inter_switch_links = 0.0;  ///< (total_ports - host_ports) / 2
  double transceivers = 0.0;      ///< 2 per inter-switch link
};

/// Closed-form full-bisection fat-tree model for one switch radix.
class FatTreeModel {
 public:
  /// `radix` is the per-switch port count; must be an even number >= 2
  /// (each tier splits ports evenly between up and down links).
  explicit FatTreeModel(int radix);

  [[nodiscard]] int radix() const { return radix_; }

  /// H(n): hosts supported by a full n-tier tree. n >= 1.
  [[nodiscard]] double hosts_at_tier(int n) const;

  /// S(n): switches used by a full n-tier tree. n >= 1.
  [[nodiscard]] double switches_at_tier(int n) const;

  /// Smallest tier count n with H(n) >= hosts. hosts >= 1.
  [[nodiscard]] int tiers_for_hosts(double hosts) const;

  /// Continuous interpolated sizing for an arbitrary host count (>= 1).
  [[nodiscard]] FatTreeSize size_for_hosts(double hosts) const;

 private:
  int radix_;
  double half_;  // R/2
};

}  // namespace netpp
