// §4.5 "Going further: Redesigning the ASIC".
//
// Two what-if models for a clean-slate, power-first ASIC design:
//
// 1. GranularPipelineModel — "A design with more but smaller units makes it
//    easier to turn some of them off to match the current load." With n
//    pipelines and ideal parking, the pipeline budget quantizes to
//    ceil(load * n) / n; finer granularity tracks load better but pays a
//    duplication overhead (control logic, crossbar ports, clock roots) per
//    doubling beyond the baseline pipeline count. The model exposes the
//    resulting power-vs-load curve and the achievable effective
//    proportionality, quantifying the sweet spot the paper hints at.
//
// 2. CpoRetrofit — co-packaged optics / silicon photonics: the O/E
//    conversion moves from pluggable transceivers into the package,
//    reducing per-port optical power and making it gateable with the port.
//    The model rewrites the cluster's transceiver inventory and reports the
//    total-cluster savings in the same terms as Table 3.
#pragma once

#include "netpp/cluster/cluster.h"
#include "netpp/units.h"

namespace netpp {

class GranularPipelineModel {
 public:
  struct Config {
    Watts max_power{750.0};
    double chassis_fraction = 0.30;    ///< never gateable
    double serdes_fraction = 0.30;     ///< stays with the ports
    double pipelines_fraction = 0.40;  ///< divided among n pipelines
    int baseline_pipelines = 4;        ///< today's granularity
    /// Extra pipeline-budget fraction per *doubling* beyond the baseline
    /// count (duplicated control, clock roots, crossbar ports).
    double overhead_per_doubling = 0.05;
  };

  GranularPipelineModel() : GranularPipelineModel(Config{}) {}
  explicit GranularPipelineModel(Config config);

  /// Total pipeline power budget at granularity n (>= 1), including the
  /// duplication overhead (monotone non-decreasing in n).
  [[nodiscard]] Watts pipeline_budget(int n) const;

  /// Switch power at `load` (fraction of capacity, [0,1]) with n pipelines
  /// and ideal parking: ceil(load * n) pipelines powered, each fully busy.
  [[nodiscard]] Watts power_at_load(int n, double load) const;

  /// Effective proportionality achieved by parking at granularity n:
  /// (P(full) - P(idle)) / P(full).
  [[nodiscard]] double effective_proportionality(int n) const;

  /// Duty-cycle average for the paper's phase model: `active` fraction of
  /// time at `load_when_active`, rest idle. Quantization (ceil to the next
  /// pipeline) shows up at partial loads, where fine granularity pays off.
  [[nodiscard]] Watts duty_cycle_average(int n, double active,
                                         double load_when_active = 1.0) const;

  /// The granularity (power-of-two multiple of the baseline, up to `max_n`)
  /// that minimizes the duty-cycle average power — tracking vs overhead.
  [[nodiscard]] int best_granularity(double active,
                                     double load_when_active = 1.0,
                                     int max_n = 256) const;

  [[nodiscard]] const Config& config() const { return config_; }

 private:
  Config config_;
};

/// Co-packaged-optics retrofit of a cluster (§4.5).
class CpoRetrofit {
 public:
  struct Config {
    /// CPO optical power per port relative to the pluggable transceiver it
    /// replaces (silicon photonics roadmaps target well below 1).
    double power_factor = 0.6;
    /// Proportionality of the optical engine itself: in-package optics can
    /// gate with the port, unlike always-on pluggables.
    double optics_proportionality = 0.8;
  };

  CpoRetrofit() : CpoRetrofit(Config{}) {}
  explicit CpoRetrofit(Config config);

  /// Average total-cluster power after replacing all optical transceivers
  /// with CPO, keeping everything else at `base`'s settings. The returned
  /// model owns its own catalog internally; only aggregate numbers are
  /// exposed.
  [[nodiscard]] Watts average_cluster_power(const ClusterConfig& base) const;

  /// Fraction of total average cluster power saved vs `base` unmodified.
  [[nodiscard]] double savings_fraction(const ClusterConfig& base) const;

  [[nodiscard]] const Config& config() const { return config_; }

 private:
  Config config_;
};

}  // namespace netpp
