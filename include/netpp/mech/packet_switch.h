// Packet-level switch simulator for the §4.4 latency-cost question.
//
// "What is the latency cost? Ports taking turns being connected to the
// pipeline induces some delay during which incoming packets must be
// buffered."
//
// The flow-level models answer the energy side; this simulator answers the
// packet side. A switch has `num_ports` ports statically grouped onto
// `num_pipelines` port groups (the conventional fixed mapping). A circuit
// switch in front of the pipelines lets `active_pipelines` (<= groups) serve
// all groups by *time multiplexing*: the connected set rotates round-robin
// every `dwell`, with a short `reconfig` pause per rotation during which no
// packet starts service. Packets arriving on a disconnected group's port
// wait in that port's bounded buffer.
//
// Outputs: per-packet latency statistics (summary + histogram for tail
// quantiles), drops, throughput, per-pipeline busy fractions, and energy
// via the component-level SwitchPowerModel.
#pragma once

#include <cstdint>
#include <vector>

#include "netpp/power/switch_model.h"
#include "netpp/sim/engine.h"
#include "netpp/sim/stats.h"
#include "netpp/units.h"

namespace netpp {

struct PacketSwitchConfig {
  int num_ports = 8;
  int num_pipelines = 4;  ///< also the number of port groups
  Gbps port_rate{100.0};
  /// Pipelines serving packets; the rest are parked. In [1, num_pipelines].
  int active_pipelines = 4;
  /// Clock fraction of the active pipelines (rate adaptation), in (0, 1].
  /// A pipeline's service rate is ports_per_group * port_rate * frequency.
  double pipeline_frequency = 1.0;
  /// Time-multiplexing dwell: how long a pipeline stays on one group before
  /// rotating (only relevant when active_pipelines < num_pipelines).
  Seconds dwell{Seconds::from_microseconds(50.0)};
  /// Service pause while the circuit switch remaps.
  Seconds reconfig{Seconds::from_microseconds(1.0)};
  /// Per-port buffer.
  Bits port_buffer{Bits::from_bytes(1e6)};
  /// Power model; its pipeline/port counts need not match (we only use the
  /// per-component power curves).
  SwitchPowerModel power{};
  /// Latency histogram range (upper bound) for quantile queries.
  Seconds histogram_max{Seconds::from_milliseconds(2.0)};
};

struct PacketSwitchResult {
  std::uint64_t injected = 0;
  std::uint64_t served = 0;
  std::uint64_t dropped = 0;
  SummaryStat latency;       ///< seconds
  Histogram latency_hist;    ///< seconds, for p99/p999
  /// Mean busy fraction across active pipelines over the run.
  double mean_pipeline_busy = 0.0;
  Joules energy{};
  Watts average_power{};

  explicit PacketSwitchResult(Seconds histogram_max)
      : latency_hist(0.0, histogram_max.value(), 2048) {}

  [[nodiscard]] Seconds p50() const {
    return Seconds{latency_hist.quantile(0.50)};
  }
  [[nodiscard]] Seconds p99() const {
    return Seconds{latency_hist.quantile(0.99)};
  }
  [[nodiscard]] Seconds p999() const {
    return Seconds{latency_hist.quantile(0.999)};
  }
};

/// Event-driven packet switch. Inject packets (sorted or not — they are
/// scheduled on the engine), then run the engine and collect results.
class PacketSwitchSim {
 public:
  PacketSwitchSim(SimEngine& engine, PacketSwitchConfig config);

  /// Schedules a packet arrival on `port` at absolute time `at`.
  void inject(int port, Seconds at, Bits size);

  /// Finalizes accounting at `horizon` (>= last event) and returns results.
  /// Call after engine.run().
  [[nodiscard]] PacketSwitchResult finish(Seconds horizon);

  [[nodiscard]] const PacketSwitchConfig& config() const { return config_; }
  [[nodiscard]] int ports_per_group() const { return ports_per_group_; }

 private:
  struct Packet {
    double arrival;
    double size_bits;
  };
  struct Port {
    std::vector<Packet> queue;  // FIFO (index 0 = head)
    double buffered_bits = 0.0;
  };
  struct Pipeline {
    int group = -1;       ///< currently connected group
    bool busy = false;
    bool paused = false;  ///< in reconfig pause
    bool rotate_pending = false;  ///< rotation deferred behind in-flight pkt
    TimeWeighted busy_tw{0.0, Seconds{0.0}};
  };

  void on_arrival(int port, Bits size);
  void try_serve(int pipeline);
  void rotate(int pipeline);
  void do_rotate(int pipeline);
  [[nodiscard]] int next_port_with_traffic(int group) const;

  SimEngine& engine_;
  PacketSwitchConfig config_;
  int ports_per_group_;
  double service_rate_bps_;
  std::vector<Port> ports_;
  std::vector<Pipeline> pipelines_;
  PacketSwitchResult result_;
  bool finished_ = false;
};

}  // namespace netpp
