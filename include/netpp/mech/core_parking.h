// Core-layer switch parking from aggregate cross-pod load.
//
// The per-pod mechanism analyses never touch the core tier: once the
// sharded backend collapses the core into per-shard gateways, there is no
// per-core-switch load trace to drive a StackedSwitchPolicy with. What the
// fabric does expose is the aggregate core signal — the fraction of total
// core-facing capacity the pods are pushing through the gateways
// (BackendLoadRecorder::core_trace). CoreParkingPolicy parks whole core
// switches against that signal: the same reactive hysteresis as pipeline
// parking (§4.4), lifted a tier — wake another core switch when aggregate
// load exceeds hi of the provisioned fraction, park one when it would fit
// under lo of one fewer. ECMP spreads cross-pod traffic near-uniformly over
// the core, so "k of N switches powered" serves k/N of core capacity, which
// is exactly the pipeline-concentration argument at datacenter scale.
//
// Power is flat per powered-or-waking switch (the §2 observation: a
// switch's draw is dominated by load-independent terms), so parked core
// switches are where the savings come from.
#pragma once

#include <string_view>

#include "netpp/mech/mechanism.h"
#include "netpp/units.h"

namespace netpp {

struct CoreParkingConfig {
  /// Flat draw of one powered (or waking) core switch.
  Watts switch_power{350.0};
  /// Core switches take much longer to bring back than pipelines: boot,
  /// link bring-up, routing reconvergence.
  Seconds wake_latency{Seconds::from_milliseconds(50.0)};
  /// Reactive hysteresis on the aggregate core load (same semantics as
  /// ParkingConfig's thresholds, over switches instead of pipelines).
  double hi_threshold = 0.85;
  double lo_threshold = 0.60;
  /// Core switches that must stay powered (fault headroom / connectivity).
  int min_active = 1;
};

/// Parks whole core switches against a single-channel aggregate core-load
/// trace. `load_scale` rescales the trace's load fractions to the policy's
/// capacity base (e.g. total-core-capacity fractions driving a
/// surviving-subset policy: scale = total / surviving).
class CoreParkingPolicy : public MechanismPolicy {
 public:
  CoreParkingPolicy(CoreParkingConfig config, int num_switches,
                    double load_scale = 1.0);

  [[nodiscard]] std::string_view name() const override {
    return "core-parking";
  }
  [[nodiscard]] PowerStateTimeline make_timeline(
      const LoadTrace& trace) override;
  void observe(const LoadSegment& seg, PowerStateTimeline& timeline) override;

  [[nodiscard]] const CoreParkingConfig& config() const { return config_; }
  [[nodiscard]] int num_switches() const { return switches_; }

 private:
  CoreParkingConfig config_;
  int switches_ = 0;
  double load_scale_ = 1.0;
};

}  // namespace netpp
