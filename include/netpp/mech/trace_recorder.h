// Records per-switch load traces from a running FlowSimulator and converts
// them into the trace formats the §4 mechanism simulators consume:
// AggregateLoadTrace (whole-switch load, for pipeline parking) and
// PipelineLoadTrace (per-pipeline load, for rate adaptation), with the
// switch's ports assigned to pipelines round-robin — the fixed port->
// pipeline mapping of a conventional ASIC (§4.4).
#pragma once

#include <map>
#include <vector>

#include "netpp/mech/load_trace.h"
#include "netpp/mech/parking.h"
#include "netpp/mech/rateadapt.h"
#include "netpp/netsim/flowsim.h"
#include "netpp/topo/graph.h"

namespace netpp {

class NodeLoadRecorder {
 public:
  /// Records loads of `nodes` (typically switches). Attach `on_load_change`
  /// as the simulator's load listener (or call sample() manually).
  NodeLoadRecorder(const FlowSimulator& sim, std::vector<NodeId> nodes);

  /// Samples the current per-incident-directed-link utilization of every
  /// tracked node. Consecutive samples at the same time overwrite.
  void sample(Seconds now);

  /// Convenience adapter for FlowSimulator::set_load_listener.
  [[nodiscard]] FlowSimulator::LoadListener listener();

  /// Unified adapter: the node's recorded samples as a `num_channels`-wide
  /// LoadTrace (1 channel == whole-node aggregate; one channel per pipeline
  /// == the round-robin port->pipeline mapping). Each sample opens a
  /// segment; consecutive identical segments are collapsed. The final
  /// segment runs from the last (distinct) sample to `end`, which must lie
  /// strictly after the last recorded sample — there is no silent
  /// truncation or extrapolation. Throws std::logic_error when no samples
  /// were recorded.
  [[nodiscard]] LoadTrace load_trace(NodeId node, int num_channels,
                                     Seconds end) const;

  /// Whole-node load trace: carried bits over incident capacity, in [0, 1].
  [[nodiscard]] AggregateLoadTrace aggregate_trace(NodeId node,
                                                   Seconds end) const;

  /// Per-pipeline trace: the node's incident directed links are assigned to
  /// `num_pipelines` pipelines round-robin; a pipeline's load is its links'
  /// carried rate over their capacity.
  [[nodiscard]] PipelineLoadTrace pipeline_trace(NodeId node,
                                                 int num_pipelines,
                                                 Seconds end) const;

  [[nodiscard]] const std::vector<NodeId>& nodes() const { return nodes_; }
  [[nodiscard]] std::size_t num_samples() const { return times_.size(); }

 private:
  struct NodeInfo {
    /// Directed-link indices incident to the node (both directions).
    std::vector<std::size_t> directed_indices;
    std::vector<double> capacities_bps;
  };

  const FlowSimulator& sim_;
  std::vector<NodeId> nodes_;
  std::map<NodeId, NodeInfo> info_;
  std::vector<Seconds> times_;
  /// samples_[node][sample_index][link_position] = carried bps.
  std::map<NodeId, std::vector<std::vector<double>>> samples_;
};

}  // namespace netpp
