// Composed §4 mechanism stacks: static tailoring × dynamic adaptation.
//
// The paper's optimizations are not alternatives — they compose. §4.2 OCS
// tailoring selects which packet switches are powered at all; §4.4 parking
// gates the pipelines of the survivors; §4.3 rate adaptation clocks what
// remains. This module runs that stack end-to-end on a simulated fabric:
//
//   1. record per-switch load traces from a FlowSimulator run of the
//      workload on the full fabric (the all-on baseline and the
//      dynamic-only stages), and on the tailored fabric (survivors carry
//      the rerouted traffic);
//   2. drive every powered switch's trace through a StackedSwitchPolicy —
//      reactive parking concentrates load onto few pipelines, per-pipeline
//      rate adaptation clocks them to the concentrated load;
//   3. report combined savings against the all-on baseline next to each
//      mechanism alone, over the same workload.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "netpp/mech/core_parking.h"
#include "netpp/mech/load_trace.h"
#include "netpp/mech/mechanism.h"
#include "netpp/mech/ocs.h"
#include "netpp/mech/parking.h"
#include "netpp/mech/rateadapt.h"
#include "netpp/netsim/backend.h"
#include "netpp/netsim/flowsim.h"
#include "netpp/topo/builders.h"

namespace netpp {

/// Per-switch composition of the dynamic §4 mechanisms on one timeline:
/// reactive parking (when `park`) decides the powered pipeline set from the
/// switch-aggregate load; rate adaptation (when `rate_adapt`) clocks the
/// powered pipelines to their concentrated load. With both disabled the
/// policy prices the all-on switch (the baseline stage).
class StackedSwitchPolicy : public MechanismPolicy {
 public:
  struct Stages {
    bool park = true;
    bool rate_adapt = true;
  };

  StackedSwitchPolicy(ParkingConfig parking, RateAdaptConfig rate,
                      Stages stages);

  [[nodiscard]] std::string_view name() const override;
  [[nodiscard]] PowerStateTimeline make_timeline(
      const LoadTrace& trace) override;
  void observe(const LoadSegment& seg, PowerStateTimeline& timeline) override;
  [[nodiscard]] bool models_buffering() const override { return stages_.park; }
  [[nodiscard]] double capacity_fraction(
      const PowerStateTimeline& timeline) const override;
  [[nodiscard]] Bits buffer_capacity() const override {
    return parking_.buffer_capacity;
  }
  [[nodiscard]] double nominal_capacity_bps() const override {
    return parking_.switch_capacity.bits_per_second();
  }

  [[nodiscard]] const Stages& stages() const { return stages_; }

 private:
  ParkingConfig parking_;
  RateAdaptConfig rate_;
  Stages stages_;
  int pipes_ = 0;
  std::vector<PortState> ports_;
  /// Raw per-pipeline channel loads of the current segment (the baseline
  /// power function prices these; parking overwrites the track loads with
  /// the concentrated ones).
  std::vector<double> channel_loads_;
  double offered_ = 0.0;  ///< switch-aggregate load of the current segment
};

/// Per-pod / core-layer power-domain scoping of the composed stack.
struct PowerDomainsConfig {
  /// Average-power budget per pod domain (0 = unbudgeted). Reported as
  /// within_budget per DomainReport; budgets do not alter the mechanisms.
  Watts pod_budget{0.0};
  /// Average-power budget for the core-layer domain (0 = unbudgeted).
  Watts core_budget{0.0};
  /// Core-layer parking (mech/core_parking.h): prices core switches flat
  /// and, when the backend collapses the core, parks them against the
  /// aggregate cross-pod load.
  CoreParkingConfig core{};
};

struct CompositeConfig;
struct CompositeReport;

/// Warm-state memoization across run_composite calls that share a scenario
/// (same topology, workload, demands, backend, and per-switch mechanism
/// parameters) while varying the stack composition, OCS device count,
/// horizon, or domain budgets — the what-if axes the serve engine sweeps.
///
/// The cache absorbs the expensive, composition-independent work: the
/// backend simulation runs (keyed by the disabled-switch set), the tailoring
/// pass, the extracted per-switch load traces, and the un-telemetered
/// per-stage mechanism totals. Everything cached is a deterministic pure
/// function of the scenario, so cached and cold calls return bit-identical
/// reports — the golden equivalence test pins that.
///
/// One cache must only ever see one scenario: the first run stamps a
/// fingerprint (topology size, workload volume, backend, mechanism knobs)
/// and a later run with a different fingerprint is rejected with
/// std::invalid_argument("CompositeCache: ..."). Concurrent runs sharing a
/// cache are serialized on an internal mutex; use one cache per scenario
/// for parallelism.
class CompositeCache {
 public:
  CompositeCache();
  ~CompositeCache();
  CompositeCache(const CompositeCache&) = delete;
  CompositeCache& operator=(const CompositeCache&) = delete;

  /// Backend simulation runs answered from the cache (not re-simulated).
  [[nodiscard]] std::size_t sim_reuses() const;
  /// run_stage totals answered from the cache.
  [[nodiscard]] std::size_t stage_reuses() const;

 private:
  friend CompositeReport run_composite(const BuiltTopology& topology,
                                       const std::vector<FlowSpec>& workload,
                                       const std::vector<TrafficDemand>& demands,
                                       Seconds horizon,
                                       const CompositeConfig& config);
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

struct CompositeConfig {
  bool tailor = true;      ///< §4.2 static: OCS topology tailoring
  bool park = true;        ///< §4.4 dynamic: pipeline parking
  bool rate_adapt = true;  ///< §4.3 dynamic: per-pipeline rate adaptation
  TailorConfig tailor_config{};
  ParkingConfig parking{};
  RateAdaptConfig rate{};
  /// OCS devices stitching the tailored fabric; their draw charges every
  /// tailored stage (the "is the addition worth it?" bookkeeping).
  int num_ocs_devices = 0;
  OcsOverheadModel ocs{};
  /// Which simulator runs the workload. The default single backend is
  /// bit-identical to the pre-seam driver; the sharded backend opens
  /// multi-pod scale and switches the core tier to aggregate-load policies
  /// (see docs/MODELS.md, "Backend-agnostic experiments").
  BackendConfig backend{};
  /// Per-pod and core-layer domain accounting/budgets.
  PowerDomainsConfig domains{};
  /// Optional telemetry bundle (must outlive the call). The combined-stack
  /// per-switch mechanism runs record their transitions/breakpoints into
  /// the event log and accumulate "mech.<name>.*" metrics; the composite
  /// totals land under "composite.*".
  telemetry::Telemetry* telemetry = nullptr;
  /// Optional warm-state cache (must outlive the call). When set, the
  /// simulation runs, tailoring pass, traces, and un-telemetered stage
  /// totals are memoized across calls sharing the scenario; results stay
  /// bit-identical to cold calls. Telemetered stages always re-run so their
  /// events/metrics are emitted every call.
  CompositeCache* cache = nullptr;
};

/// One mechanism (or the full stack) over the common workload.
struct CompositeStageResult {
  std::string name;
  Joules energy{};
  double savings = 0.0;  ///< vs the all-on baseline
};

/// One power domain's share of the combined stack: a pod ("pod<i>", the
/// structural pods of topo/pods.h) or the core layer ("core", which also
/// carries the OCS draw when tailoring is enabled).
struct DomainReport {
  std::string name;
  std::size_t switches = 0;
  Joules energy{};           ///< combined stack, this domain's switches
  Joules baseline_energy{};  ///< all-on, same switches
  double savings = 0.0;
  Watts average_power{};
  Watts budget{};  ///< 0 = unbudgeted
  bool within_budget = true;
};

struct CompositeReport {
  /// Energy-accounting window: the requested horizon, extended to cover
  /// the slower of the two simulation runs when the workload outruns it.
  Seconds horizon{};
  std::size_t switches_total = 0;
  Joules baseline_energy{};  ///< all switches on, nominal clocks, full lanes
  Joules energy{};           ///< the enabled stack, OCS draw included
  double combined_savings = 0.0;
  /// Best single enabled mechanism's savings (the stack must beat it).
  double best_single_savings = 0.0;
  std::vector<CompositeStageResult> singles;
  TailorResult tailoring;  ///< only populated when tailoring is enabled
  /// Transition/loss accounting of the combined stack.
  std::size_t wake_transitions = 0;
  std::size_t park_transitions = 0;
  std::size_t level_transitions = 0;
  Bits dropped{};
  Watts average_power{};
  Watts baseline_average_power{};
  /// Per-pod + core breakdown of the combined stack (empty when the
  /// topology has no structural pod partition).
  std::vector<DomainReport> domains;
};

/// Runs the enabled mechanism stack (and each enabled mechanism alone) over
/// `workload` on `topology`. `demands` is the steady-state matrix tailoring
/// must keep satisfiable. The horizon is extended automatically if the
/// workload finishes later.
[[nodiscard]] CompositeReport run_composite(
    const BuiltTopology& topology, const std::vector<FlowSpec>& workload,
    const std::vector<TrafficDemand>& demands, Seconds horizon,
    const CompositeConfig& config);

}  // namespace netpp
