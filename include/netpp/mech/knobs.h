// §4.1 "Static Opt. #1: Exposing Power Knobs".
//
// Models a router as an inventory of gateable components (pipelines, memory
// banks, SerDes groups, optional protocol engines...). Given the set of
// features a deployment actually needs (e.g. plain L2 forwarding with a
// partial routing table), the model computes the power the router *could*
// draw if unused components were gated — versus what it draws today, where
// the OS exposes no such knobs.
//
// The model also captures the paper's observation that even exposed knobs
// can be broken: "even though the ports are off in software, they may still
// be powered on in hardware" [15, 24]. `GatingQuality` selects between
// fixed gating (off = 0 W), today's buggy gating (off in software saves
// nothing), and partial gating.
//
// Finally, `SwitchCState` provides the paper's proposed "networking
// equivalent of C-states": pre-defined low-power modes that bundle feature
// sets without exposing hardware details.
#pragma once

#include <string>
#include <vector>

#include "netpp/units.h"

namespace netpp {

/// One gateable (or not) component of a router.
struct RouterComponent {
  std::string name;
  Watts power{};
  /// Feature this component provides. The empty feature marks base
  /// components (chassis, fans, control CPU) that are always needed.
  std::string feature;
  /// Whether the hardware supports power-gating this component at all.
  bool gateable = true;
};

/// How well power gating works when a component is turned "off".
enum class GatingQuality {
  kFixed,   ///< off means 0 W (the paper: "can (and should) be fixed")
  kBuggy,   ///< off in software, still powered in hardware: saves nothing
  kPartial,  ///< off saves only half its power (imperfect gating)
};

/// The paper's proposed C-state-like presets.
enum class SwitchCState {
  kC0FullRouter,   ///< everything on: L2+L3, full tables, all ports
  kC1LeanRouter,   ///< L3 with reduced tables (route-reflector deployment)
  kC2L2Only,       ///< pure L2 forwarding: all L3 machinery off
  kC3Standby,      ///< control plane alive, data plane parked
};

/// Feature set needed by a deployment.
using FeatureSet = std::vector<std::string>;

/// Features required by each C-state preset.
[[nodiscard]] FeatureSet features_for_cstate(SwitchCState state);

class RouterComponentModel {
 public:
  explicit RouterComponentModel(std::vector<RouterComponent> components);

  /// A reference big-router inventory summing to the paper's 750 W switch:
  /// chassis/control base, 4 packet pipelines, L3 lookup engines, full-table
  /// routing memory, buffer memory, 4 SerDes port groups, telemetry engine.
  static RouterComponentModel reference_router();

  [[nodiscard]] const std::vector<RouterComponent>& components() const {
    return components_;
  }

  /// Power with everything on (today's default).
  [[nodiscard]] Watts total_power() const;

  /// Power when only base components plus the components providing
  /// `features` are kept on, under the given gating quality. Unknown
  /// features are ignored (they simply match no component).
  [[nodiscard]] Watts power_for_features(const FeatureSet& features,
                                         GatingQuality quality) const;

  /// Convenience: total - power_for_features.
  [[nodiscard]] Watts savings_for_features(const FeatureSet& features,
                                           GatingQuality quality) const;

  /// Power in a C-state preset.
  [[nodiscard]] Watts power_in_cstate(SwitchCState state,
                                      GatingQuality quality) const;

  /// Effective power proportionality knob-gating gives this router for a
  /// deployment needing `features`: (total - gated) / total.
  [[nodiscard]] double gating_headroom(const FeatureSet& features,
                                       GatingQuality quality) const;

 private:
  std::vector<RouterComponent> components_;
};

}  // namespace netpp
