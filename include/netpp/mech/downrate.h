// §4.3 link down-rating for backbone/ISP links.
//
// "Another possibility is to configure an interface to a lower speed, e.g.,
// set a 100G-capable interface at 10G, which may save power by enabling
// turning off some of the interface's SerDes lines. This has been observed
// [15], but down-rating is not widely supported, and savings are limited —
// supposedly because few components are powered off."
//
// This module evaluates down-rating a single link over a utilization trace
// (e.g. an ISP diurnal cycle, §3.4): a policy steps the link speed among a
// configured ladder with headroom and hysteresis; each transition costs a
// brief outage during renegotiation; running below the offered load counts
// as a capacity violation. Power per step comes from a speed->power table
// (transceiver + SerDes share), with a knob for how *well* down-rating
// gates components — modelling the paper's "savings are limited" complaint
// as a gating-effectiveness factor.
#pragma once

#include <string_view>
#include <vector>

#include "netpp/mech/load_trace.h"
#include "netpp/mech/mechanism.h"
#include "netpp/power/catalog.h"
#include "netpp/units.h"

namespace netpp {

struct DownrateConfig {
  /// The link's nominal speed (trace loads are fractions of this).
  Gbps nominal{400.0};
  /// Allowed speed steps in Gbps, ascending; must include the nominal.
  std::vector<double> ladder = {100.0, 200.0, 400.0};
  /// Per-end power at each ladder speed (both ends charged). Defaults to
  /// the paper's transceiver table.
  PowerTable end_power{std::map<double, double>{
      {100.0, 4.0}, {200.0, 6.5}, {400.0, 10.0}}};
  /// Fraction of the ideal power delta actually realized when stepping
  /// down (1.0 = perfect gating, 0.0 = the paper's complaint: nothing
  /// really turns off).
  double gating_effectiveness = 1.0;
  /// Choose the smallest step >= load * (1 + headroom).
  double headroom = 0.25;
  /// Step down only if the target has been sufficient for this long.
  Seconds down_dwell{60.0};
  /// Renegotiation outage per speed change.
  Seconds transition_outage{Seconds::from_milliseconds(50.0)};
};

struct DownrateResult {
  Joules energy{};
  Joules nominal_energy{};  ///< always at nominal speed
  double savings_fraction = 0.0;
  std::size_t transitions = 0;
  /// Total time the configured speed was below the offered load (traffic
  /// would have been queued/dropped) — headroom/dwell tuning errors.
  Seconds violation_time{};
  /// Total renegotiation outage time.
  Seconds outage_time{};
  /// Time-weighted mean configured speed.
  Gbps mean_speed{};
};

/// Link down-rating as a MechanismPolicy: one component whose level is the
/// configured speed in Gbps, stepped along the ladder through the
/// timeline's min-dwell rule (downward steps only after the lower step has
/// been sufficient for `down_dwell`; upward steps immediate).
class DownratePolicy : public MechanismPolicy {
 public:
  explicit DownratePolicy(DownrateConfig config);

  [[nodiscard]] std::string_view name() const override { return "downrate"; }
  [[nodiscard]] PowerStateTimeline make_timeline(
      const LoadTrace& trace) override;
  void observe(const LoadSegment& seg, PowerStateTimeline& timeline) override;
  void on_interval(Seconds t0, Seconds t1, const LoadSegment& seg,
                   const PowerStateTimeline& timeline) override;
  void finish(const LoadTrace& trace, const PowerStateTimeline& timeline,
              MechanismReport& report) override;

  [[nodiscard]] const DownrateConfig& config() const { return config_; }
  /// Both-end power draw at the nominal speed (the do-nothing baseline).
  [[nodiscard]] double nominal_power_w() const { return nominal_power_w_; }
  [[nodiscard]] Seconds violation_time() const {
    return Seconds{violation_time_};
  }
  [[nodiscard]] Seconds outage_time() const { return Seconds{outage_time_}; }

 private:
  DownrateConfig config_;
  double nominal_power_w_ = 0.0;
  double violation_time_ = 0.0;
  double outage_time_ = 0.0;
};

/// Simulates the down-rating policy over the trace (loads are fractions of
/// `config.nominal`).
[[nodiscard]] DownrateResult simulate_downrating(
    const AggregateLoadTrace& trace, const DownrateConfig& config);

}  // namespace netpp
