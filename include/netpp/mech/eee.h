// Energy Efficient Ethernet (IEEE 802.3az) link model — the historical
// baseline the paper revisits ("link sleeping ... implemented in the EEE
// standard in the 2010's ... became effectively obsolete" at high speeds).
//
// A link with Low Power Idle (LPI) support transitions to a low-power state
// when its transmit queue drains, and must wake before transmitting again.
// The model is a deterministic FIFO fluid simulation over a frame arrival
// trace:
//
//   ACTIVE --(queue empty, after sleep_time)--> LPI
//   LPI --(frame arrives [+ optional coalescing timer])--> waking
//   waking --(after wake_time)--> ACTIVE
//
// Energy: active/wake/sleep transitions draw active power; LPI draws
// `lpi_power_fraction` of it. Latency: each frame's added delay vs an
// always-on link is reported. Frame coalescing (holding the wake-up until a
// timer expires) trades latency for fewer transitions — the classic EEE
// tuning knob.
#pragma once

#include <vector>

#include "netpp/units.h"

namespace netpp {

struct EeeFrame {
  Seconds arrival{};
  Bits size{};
};

struct EeeConfig {
  Gbps link_rate{100.0};
  Watts active_power{4.0};  ///< e.g. one transceiver end
  /// LPI power as a fraction of active power (~10% per 802.3az studies).
  double lpi_power_fraction = 0.10;
  /// Time to enter LPI once idle (Ts) and to wake (Tw). Defaults are the
  /// 802.3az microsecond-scale orders of magnitude.
  Seconds sleep_time{Seconds::from_microseconds(2.88)};
  Seconds wake_time{Seconds::from_microseconds(4.48)};
  /// Coalescing: after the first frame arrives in LPI, wait this long (or
  /// until `coalesce_frames` are buffered) before waking. 0 disables.
  Seconds coalescing_timer{0.0};
  std::size_t coalesce_frames = 0;  ///< 0 = no frame-count trigger
};

struct EeeResult {
  Joules energy{};
  Joules always_on_energy{};
  /// 1 - energy / always_on_energy.
  double energy_savings_fraction = 0.0;
  /// Fraction of the horizon spent in LPI.
  double lpi_time_fraction = 0.0;
  /// Added per-frame delay vs an always-on link (mean / max).
  Seconds mean_added_delay{};
  Seconds max_added_delay{};
  /// Number of LPI->active wake transitions.
  std::size_t wake_transitions = 0;
  std::size_t frames = 0;
};

/// Simulates one EEE link over `frames` (must be sorted by arrival time)
/// until `horizon` (>= last departure). Throws on unsorted input.
[[nodiscard]] EeeResult simulate_eee_link(const EeeConfig& config,
                                          const std::vector<EeeFrame>& frames,
                                          Seconds horizon);

}  // namespace netpp
