// §4.4 "Dynamic Opt. #2: Turning off Pipelines".
//
// A circuit switch (electrical, with small buffers) sits between the
// physical ports and the ASIC pipelines, decoupling the fixed port->pipeline
// mapping. Traffic can then be concentrated onto a subset of pipelines and
// the rest powered off entirely — killing their leakage, which rate
// adaptation cannot (§4.3 keeps most components powered).
//
// The simulator consumes an aggregate offered-load trace (fraction of the
// whole switch's capacity) and a policy:
//
//   - Reactive: keep enough pipelines on so that the load fits under a
//     target utilization; hysteresis thresholds avoid flapping. Waking a
//     pipeline takes `wake_latency`; while capacity is short, the excess is
//     buffered in the circuit switch (bounded buffer -> possible loss) and
//     drained once capacity returns.
//   - Predictive (the paper: "leverage the predictability of ML training
//     workloads"): a known schedule of (time, required pipelines) is
//     followed, pre-waking `wake_latency` early so capacity is ready when
//     the burst starts.
//
// Energy accounts the powered pipelines (at their served load), the chassis
// and ports (always on), and the circuit switch's own overhead — the
// "is the addition worth it?" question of §4.4.
#pragma once

#include <vector>

#include "netpp/power/switch_model.h"
#include "netpp/units.h"

namespace netpp {

/// Piecewise-constant aggregate offered load, as a fraction of the whole
/// switch's nominal capacity. Same timing conventions as PipelineLoadTrace.
struct AggregateLoadTrace {
  std::vector<Seconds> times;
  std::vector<double> loads;
  Seconds end{};

  void validate() const;
  [[nodiscard]] Seconds duration() const { return end - times.front(); }
};

struct ParkingConfig {
  SwitchPowerModel model{};
  /// Extra power drawn by the circuit switch / indirection layer.
  Watts circuit_switch_power{20.0};
  /// Time to power a parked pipeline back on.
  Seconds wake_latency{Seconds::from_milliseconds(1.0)};
  /// Reactive policy: wake another pipeline when load exceeds
  /// `hi_threshold` of the active capacity; park one when load falls below
  /// `lo_threshold` of what the remaining pipelines could carry.
  double hi_threshold = 0.85;
  double lo_threshold = 0.60;
  int min_active = 1;
  /// Circuit-switch buffer absorbing excess while pipelines wake.
  Bits buffer_capacity{Bits::from_bytes(64e6)};
  /// Switch nominal capacity (to convert load fractions to bits).
  Gbps switch_capacity{Gbps::from_tbps(51.2)};
};

/// One entry of a predictive schedule: from `at`, the workload needs
/// `required_load` (fraction of switch capacity).
struct LoadForecast {
  Seconds at{};
  double required_load = 0.0;
};

/// A fault-driven recall window: from `at` until `until`, traffic rerouted
/// around failed hardware adds `extra_load` (fraction of switch capacity,
/// clamped so the total stays <= 1) and every parked pipeline is recalled so
/// parked capacity cannot amplify the failure.
struct EmergencyRecall {
  Seconds at{};
  Seconds until{};
  double extra_load = 0.0;
};

struct ParkingResult {
  Joules energy{};
  Watts average_power{};
  /// 1 - energy / energy(all pipelines always on) over the same trace.
  double savings_vs_all_on = 0.0;
  double mean_active_pipelines = 0.0;
  std::size_t wake_transitions = 0;
  std::size_t park_transitions = 0;
  /// Buffering at the circuit switch while capacity was short.
  Bits max_buffered{};
  Bits dropped{};
  /// Worst-case extra delay a buffered bit experienced (buffer/capacity).
  Seconds max_added_delay{};
  /// Pipelines force-woken by emergency recall windows (resilient variant).
  std::size_t emergency_wakes = 0;
};

/// Reactive threshold policy over the trace.
[[nodiscard]] ParkingResult simulate_parking_reactive(
    const AggregateLoadTrace& trace, const ParkingConfig& config);

/// Predictive policy: follows `forecast` (sorted by time), pre-waking
/// `wake_latency` before each capacity increase. The trace supplies the
/// actual offered load (forecast errors show up as buffering/loss).
[[nodiscard]] ParkingResult simulate_parking_predictive(
    const AggregateLoadTrace& trace, const std::vector<LoadForecast>& forecast,
    const ParkingConfig& config);

/// Reactive policy with fault-driven emergency recalls: inside each recall
/// window all pipelines are forced awake and the rerouted `extra_load` is
/// added to the offered trace; outside the windows behaves exactly like
/// `simulate_parking_reactive` (an empty `recalls` is bit-identical to it).
[[nodiscard]] ParkingResult simulate_parking_reactive_resilient(
    const AggregateLoadTrace& trace,
    const std::vector<EmergencyRecall>& recalls, const ParkingConfig& config);

}  // namespace netpp
