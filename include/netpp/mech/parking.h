// §4.4 "Dynamic Opt. #2: Turning off Pipelines".
//
// A circuit switch (electrical, with small buffers) sits between the
// physical ports and the ASIC pipelines, decoupling the fixed port->pipeline
// mapping. Traffic can then be concentrated onto a subset of pipelines and
// the rest powered off entirely — killing their leakage, which rate
// adaptation cannot (§4.3 keeps most components powered).
//
// The simulator consumes an aggregate offered-load trace (fraction of the
// whole switch's capacity) and a policy:
//
//   - Reactive: keep enough pipelines on so that the load fits under a
//     target utilization; hysteresis thresholds avoid flapping. Waking a
//     pipeline takes `wake_latency`; while capacity is short, the excess is
//     buffered in the circuit switch (bounded buffer -> possible loss) and
//     drained once capacity returns.
//   - Predictive (the paper: "leverage the predictability of ML training
//     workloads"): a known schedule of (time, required pipelines) is
//     followed, pre-waking `wake_latency` early so capacity is ready when
//     the burst starts.
//
// Energy accounts the powered pipelines (at their served load), the chassis
// and ports (always on), and the circuit switch's own overhead — the
// "is the addition worth it?" question of §4.4.
#pragma once

#include <string_view>
#include <vector>

#include "netpp/mech/load_trace.h"
#include "netpp/mech/mechanism.h"
#include "netpp/power/switch_model.h"
#include "netpp/units.h"

namespace netpp {

struct ParkingConfig {
  SwitchPowerModel model{};
  /// Extra power drawn by the circuit switch / indirection layer.
  Watts circuit_switch_power{20.0};
  /// Time to power a parked pipeline back on.
  Seconds wake_latency{Seconds::from_milliseconds(1.0)};
  /// Reactive policy: wake another pipeline when load exceeds
  /// `hi_threshold` of the active capacity; park one when load falls below
  /// `lo_threshold` of what the remaining pipelines could carry.
  double hi_threshold = 0.85;
  double lo_threshold = 0.60;
  int min_active = 1;
  /// Circuit-switch buffer absorbing excess while pipelines wake.
  Bits buffer_capacity{Bits::from_bytes(64e6)};
  /// Switch nominal capacity (to convert load fractions to bits).
  Gbps switch_capacity{Gbps::from_tbps(51.2)};
};

/// One entry of a predictive schedule: from `at`, the workload needs
/// `required_load` (fraction of switch capacity).
struct LoadForecast {
  Seconds at{};
  double required_load = 0.0;
};

/// A fault-driven recall window: from `at` until `until`, traffic rerouted
/// around failed hardware adds `extra_load` (fraction of switch capacity,
/// clamped so the total stays <= 1) and every parked pipeline is recalled so
/// parked capacity cannot amplify the failure.
struct EmergencyRecall {
  Seconds at{};
  Seconds until{};
  double extra_load = 0.0;
};

struct ParkingResult {
  Joules energy{};
  Watts average_power{};
  /// 1 - energy / energy(all pipelines always on) over the same trace.
  double savings_vs_all_on = 0.0;
  double mean_active_pipelines = 0.0;
  std::size_t wake_transitions = 0;
  std::size_t park_transitions = 0;
  /// Buffering at the circuit switch while capacity was short.
  Bits max_buffered{};
  Bits dropped{};
  /// Worst-case extra delay a buffered bit experienced (buffer/capacity).
  Seconds max_added_delay{};
  /// Pipelines force-woken by emergency recall windows (resilient variant).
  std::size_t emergency_wakes = 0;
};

namespace detail {

/// Reactive hysteresis step shared by the parking policies and the
/// composite stack: wake when the load exceeds `hi_threshold` of the
/// provisioned capacity; park when it would fit under `lo_threshold` of one
/// fewer pipeline.
[[nodiscard]] int reactive_parking_target(const ParkingConfig& config,
                                          int pipes, double offered,
                                          int provisioned);

}  // namespace detail

/// Pipeline parking as a MechanismPolicy (§4.4): a subclass supplies the
/// desired pipeline count per decision point; the base emits wake/park
/// transitions onto the timeline (canceling pending wakes before parking),
/// prices powered/waking/parked pipelines plus the circuit switch, and
/// opts in to the driver's capacity-shortfall buffering.
class ParkingPolicy : public MechanismPolicy {
 public:
  explicit ParkingPolicy(ParkingConfig config);

  [[nodiscard]] PowerStateTimeline make_timeline(
      const LoadTrace& trace) override;
  void observe(const LoadSegment& seg, PowerStateTimeline& timeline) override;
  [[nodiscard]] bool models_buffering() const override { return true; }
  [[nodiscard]] double capacity_fraction(
      const PowerStateTimeline& timeline) const override;
  [[nodiscard]] Bits buffer_capacity() const override {
    return config_.buffer_capacity;
  }
  [[nodiscard]] double nominal_capacity_bps() const override {
    return config_.switch_capacity.bits_per_second();
  }

  [[nodiscard]] const ParkingConfig& config() const { return config_; }

 protected:
  /// Desired pipeline count at decision time `t` for the aggregate
  /// `offered` load, given the currently provisioned (on + waking) count.
  /// Clamped into [min_active, num_pipelines] by the base.
  [[nodiscard]] virtual int desired_count(double t, double offered,
                                          int provisioned) = 0;

  ParkingConfig config_;
  int pipes_ = 0;

 private:
  std::vector<PortState> ports_;
  double offered_ = 0.0;  ///< current segment load, for the power functions
};

/// Reactive hysteresis-threshold policy (wake over hi, park under lo).
class ReactiveParkingPolicy : public ParkingPolicy {
 public:
  using ParkingPolicy::ParkingPolicy;
  [[nodiscard]] std::string_view name() const override {
    return "parking-reactive";
  }

 protected:
  [[nodiscard]] int desired_count(double t, double offered,
                                  int provisioned) override;
};

/// Predictive policy: follows a (sorted) load forecast, pre-waking
/// `wake_latency` before each capacity increase. Forecast command times are
/// the policy's breakpoints.
class PredictiveParkingPolicy : public ParkingPolicy {
 public:
  PredictiveParkingPolicy(ParkingConfig config,
                          std::vector<LoadForecast> forecast);
  [[nodiscard]] std::string_view name() const override {
    return "parking-predictive";
  }
  [[nodiscard]] PowerStateTimeline make_timeline(
      const LoadTrace& trace) override;
  [[nodiscard]] double next_breakpoint(double t) const override;

 protected:
  [[nodiscard]] int desired_count(double t, double offered,
                                  int provisioned) override;

 private:
  struct Command {
    double at;
    int count;
  };
  std::vector<LoadForecast> forecast_;
  std::vector<Command> commands_;
};

/// Reactive threshold policy over the trace.
[[nodiscard]] ParkingResult simulate_parking_reactive(
    const AggregateLoadTrace& trace, const ParkingConfig& config);

/// Predictive policy: follows `forecast` (sorted by time), pre-waking
/// `wake_latency` before each capacity increase. The trace supplies the
/// actual offered load (forecast errors show up as buffering/loss).
[[nodiscard]] ParkingResult simulate_parking_predictive(
    const AggregateLoadTrace& trace, const std::vector<LoadForecast>& forecast,
    const ParkingConfig& config);

/// Reactive policy with fault-driven emergency recalls: inside each recall
/// window all pipelines are forced awake and the rerouted `extra_load` is
/// added to the offered trace; outside the windows behaves exactly like
/// `simulate_parking_reactive` (an empty `recalls` is bit-identical to it).
[[nodiscard]] ParkingResult simulate_parking_reactive_resilient(
    const AggregateLoadTrace& trace,
    const std::vector<EmergencyRecall>& recalls, const ParkingConfig& config);

}  // namespace netpp
