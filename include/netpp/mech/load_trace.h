// Unified piecewise-constant load traces for the §4 mechanism layer.
//
// Every mechanism simulator consumes the same timing convention: `times[i]`
// starts segment i, which holds its loads until `times[i+1]` (or `end` for
// the final segment); `times[0]` is the trace start. Historically the
// aggregate (whole-switch) and per-pipeline variants were separate structs
// with hand-rolled, subtly different validation; they now share one
// `LoadTrace` representation (N channels; 1 channel == aggregate) plus the
// `validate_segment_timing` / `validate_load_fraction` helpers, so any
// FlowSimulator-derived load can feed any mechanism.
#pragma once

#include <string>
#include <vector>

#include "netpp/units.h"

namespace netpp {

namespace detail {

/// Shared timing-convention checks ("TypeName: constraint" error style):
/// non-empty times matching `num_segments`, finite and strictly increasing,
/// finite end strictly after the last segment start.
void validate_segment_timing(const char* type_name,
                             const std::vector<Seconds>& times,
                             std::size_t num_segments, Seconds end);

/// Rejects NaN/out-of-range load fractions (must be finite, in [0, 1]).
void validate_load_fraction(const char* type_name, double load);

}  // namespace detail

/// Piecewise-constant multi-channel load trace: `loads[i][c]` is channel
/// c's offered load (fraction of its nominal capacity, in [0, 1]) during
/// segment i. One channel models a whole device; one channel per pipeline
/// models an ASIC's pipelines.
struct LoadTrace {
  std::vector<Seconds> times;
  std::vector<std::vector<double>> loads;
  Seconds end{};

  [[nodiscard]] std::size_t num_segments() const { return times.size(); }
  [[nodiscard]] int channels() const {
    return loads.empty() ? 0 : static_cast<int>(loads.front().size());
  }
  [[nodiscard]] Seconds duration() const { return end - times.front(); }
  /// End of segment i: the next segment's start, or `end` for the last.
  [[nodiscard]] Seconds segment_end(std::size_t i) const {
    return i + 1 < times.size() ? times[i + 1] : end;
  }

  /// Shared timing checks plus per-channel arity and load-range checks.
  void validate() const;

  /// Piecewise-constant resampling onto a fixed step: segment boundaries at
  /// start + k*step, each new segment holding the load at its start time.
  /// `step` must be positive; the final partial segment is kept (explicit
  /// end-time handling, no silent truncation).
  [[nodiscard]] LoadTrace resampled(Seconds step) const;

  /// Load of `channel` at time `t` (clamped into [start, end)).
  [[nodiscard]] double load_at(Seconds t, int channel) const;
  /// Across-channel mean load at time `t` — the whole-device fraction when
  /// channels have equal capacity.
  [[nodiscard]] double aggregate_at(Seconds t) const;
};

/// Piecewise-constant aggregate offered load, as a fraction of the whole
/// device's nominal capacity (the single-channel view).
struct AggregateLoadTrace {
  std::vector<Seconds> times;
  std::vector<double> loads;
  Seconds end{};

  void validate() const;
  [[nodiscard]] Seconds duration() const { return end - times.front(); }

  [[nodiscard]] LoadTrace to_load_trace() const;
  static AggregateLoadTrace from_load_trace(const LoadTrace& trace);
};

/// Piecewise-constant per-pipeline offered load. `pipeline_loads[i]` holds
/// one entry per pipeline, each in [0, 1] of that pipeline's nominal
/// capacity.
struct PipelineLoadTrace {
  std::vector<Seconds> times;
  std::vector<std::vector<double>> pipeline_loads;
  Seconds end{};

  void validate(int num_pipelines) const;
  [[nodiscard]] Seconds duration() const;

  [[nodiscard]] LoadTrace to_load_trace() const;
  static PipelineLoadTrace from_load_trace(const LoadTrace& trace);
};

}  // namespace netpp
