// §4.2 "Inspiration from Compute": energy-aware job scheduling.
//
// "In compute clusters, a job scheduler ... can be used to concentrate the
// workload on as few servers as possible. This frees up the other servers to
// be run in low-power modes or, ideally, be turned off. ... Applied to
// networking, this approach would concentrate the network traffic on as few
// devices as possible."
//
// This module implements that substrate: a rack-structured cluster (hosts
// grouped under ToR switches), a stream of jobs (GPU count, arrival,
// duration), and placement policies:
//
//   kSpread      - load-balancing placement (today's default): pick the
//                  least-loaded racks first; traffic touches many ToRs.
//   kConcentrate - energy-aware placement: pack jobs into the fewest racks
//                  (best-fit on remaining capacity); empty racks' ToRs can
//                  be powered off.
//
// The simulator tracks rack occupancy over time and charges each ToR
// switch's idle power whenever its rack hosts at least one job slot (or
// always, if `allow_switch_off` is false — the paper's point that the knob
// must exist to matter).
#pragma once

#include <cstdint>
#include <vector>

#include "netpp/power/envelope.h"
#include "netpp/units.h"

namespace netpp {

struct Job {
  std::uint64_t id = 0;
  int gpus = 0;
  Seconds arrival{};
  Seconds duration{};
};

enum class PlacementPolicy {
  kSpread,
  kConcentrate,
};

struct SchedulerConfig {
  int racks = 32;
  int gpus_per_rack = 16;
  /// ToR switch envelope used to charge rack network power.
  PowerEnvelope tor_envelope =
      PowerEnvelope::from_proportionality(Watts{750.0}, 0.10);
  /// Duty share of communication for an occupied rack's ToR (paper §2.2):
  /// occupied ToR power = idle + (max - idle) * communication_ratio.
  double communication_ratio = 0.10;
  /// Whether an empty rack's ToR can be powered off (the §4.1/§4.2 knob).
  bool allow_switch_off = true;
  /// Delay to power a ToR back on when a job lands on an empty rack; jobs
  /// are delayed by this much if their rack was off.
  Seconds switch_wake_time{Seconds::from_milliseconds(100.0)};
};

struct ScheduleResult {
  /// Jobs that could not be placed (not enough total free GPUs at arrival;
  /// no queueing in this model — rejected jobs are counted, not retried).
  std::size_t rejected_jobs = 0;
  std::size_t placed_jobs = 0;
  /// Time-averaged number of racks with at least one job.
  double mean_occupied_racks = 0.0;
  /// Total ToR network energy over the horizon.
  Joules tor_energy{};
  /// Energy if every ToR stayed on at idle the whole time, jobs' active
  /// share included (the no-knob baseline).
  Joules always_on_tor_energy{};
  /// 1 - tor_energy / always_on_tor_energy.
  double tor_energy_savings = 0.0;
  /// Total job-start delay induced by switch wake-ups.
  Seconds total_wake_delay{};
  /// Number of ToR power-on events.
  std::size_t tor_wakeups = 0;
};

/// Simulates placing `jobs` (sorted by arrival; validated) on the cluster
/// under `policy`, until every placed job has finished.
[[nodiscard]] ScheduleResult simulate_schedule(const SchedulerConfig& config,
                                               std::vector<Job> jobs,
                                               PlacementPolicy policy);

/// Deterministic synthetic job trace: Poisson-ish arrivals (exponential
/// inter-arrival with the given mean), GPU demands uniform in
/// [1, max_gpus_per_job], durations exponential with the given mean.
[[nodiscard]] std::vector<Job> make_job_trace(int count,
                                              Seconds mean_interarrival,
                                              Seconds mean_duration,
                                              int max_gpus_per_job,
                                              std::uint64_t seed = 1);

}  // namespace netpp
