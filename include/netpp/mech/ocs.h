// §4.2 "Static Opt. #2: Scheduling Network Jobs" — topology tailoring with
// optical circuit switches.
//
// ML training traffic patterns are known when the job starts, so instead of
// keeping a full fat tree powered, an OCS layer can stitch a job-specific
// topology that uses as few packet switches as possible; the rest are turned
// off (or kept in standby for faster reaction).
//
// `tailor_topology` takes an explicit topology and a demand matrix and
// greedily powers off switches — least-loaded first — as long as every
// demand remains routable and the max-min fair allocation still satisfies
// all demands. This is the practical heuristic version of the paper's "where
// should OCSs be added?" optimization question.
//
// `OcsOverheadModel` answers the reconfiguration-cost side: off-the-shelf
// OCSs reconfigure in tens of milliseconds, which is negligible for jobs
// lasting hours or days (the paper's argument against needing RotorNet/
// Sirius-class nanosecond switching).
#pragma once

#include <span>
#include <vector>

#include "netpp/netsim/fairshare.h"
#include "netpp/topo/builders.h"
#include "netpp/topo/routing.h"
#include "netpp/units.h"

namespace netpp {

/// A steady-state demand between two hosts.
struct TrafficDemand {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  Gbps rate{};

  /// Rejects invalid/equal endpoints and NaN/non-positive rates against
  /// `graph` with a descriptive std::invalid_argument / std::out_of_range.
  void validate(const Graph& graph) const;
};

struct TailorConfig {
  /// Demands are satisfied if each flow's max-min rate reaches this fraction
  /// of its demand (1.0 = exactly; <1 allows slack).
  double satisfaction = 0.999;
  /// Number of ECMP paths considered per demand.
  std::size_t max_ecmp_paths = 8;
  /// Switches in this list are never powered off (e.g. ToRs that are a
  /// host's only attachment are always protected automatically).
  std::vector<NodeId> pinned;
};

struct TailorResult {
  std::vector<NodeId> powered_on;
  std::vector<NodeId> powered_off;
  /// Fraction of switches turned off.
  double switches_off_fraction = 0.0;
  /// Whether the initial (full) topology satisfied the demands at all.
  bool feasible = false;
};

/// Greedy tailoring: route demands on the full topology, then repeatedly try
/// to power off the least-loaded remaining switch, keeping it off only if
/// all demands stay satisfied. Deterministic.
[[nodiscard]] TailorResult tailor_topology(
    const BuiltTopology& topology, const std::vector<TrafficDemand>& demands,
    const TailorConfig& config = TailorConfig());

/// Re-tailoring over a partially failed fabric: like `tailor_topology`, but
/// starts from `base` — a router whose disabled nodes/links are *failed
/// hardware* that tailoring may never power on. Switches enabled in `base`
/// are candidates for powering off; disabled switches stay off. Used by the
/// degraded-mode policy to recompute the powered set after a failure.
/// `result.powered_on`/`powered_off` cover only non-failed switches.
[[nodiscard]] TailorResult tailor_topology_on(
    const Router& base, const BuiltTopology& topology,
    const std::vector<TrafficDemand>& demands,
    const TailorConfig& config = TailorConfig());

/// Checks whether `demands` are satisfiable on the graph as currently
/// enabled in `router` (ECMP routing + max-min fair rates >= satisfaction *
/// demand). Exposed for testing and for reactive re-checks.
[[nodiscard]] bool demands_satisfiable(const Router& router,
                                       const std::vector<TrafficDemand>& demands,
                                       const TailorConfig& config);

/// Variant for degraded fabrics: `link_capacity_factors[l]` scales link l's
/// nominal capacity (1.0 = healthy). Empty means all healthy.
[[nodiscard]] bool demands_satisfiable(
    const Router& router, const std::vector<TrafficDemand>& demands,
    const TailorConfig& config, std::span<const double> link_capacity_factors);

/// Amortized cost of OCS reconfiguration for batch jobs.
class OcsOverheadModel {
 public:
  struct Config {
    Seconds reconfiguration_time{Seconds::from_milliseconds(25.0)};
    Watts ocs_power{50.0};  ///< free-space OCS: mirrors only
    int reconfigurations_per_job = 1;
  };

  OcsOverheadModel() : OcsOverheadModel(Config{}) {}
  explicit OcsOverheadModel(Config config) : config_(config) {}

  /// Fraction of the job time lost to reconfiguration.
  [[nodiscard]] double time_overhead(Seconds job_duration) const;

  /// Net average power saving: `switch_savings` (from tailoring) minus the
  /// OCS devices' own draw.
  [[nodiscard]] Watts net_power_savings(Watts switch_savings,
                                        int num_ocs_devices) const;

  [[nodiscard]] const Config& config() const { return config_; }

 private:
  Config config_;
};

}  // namespace netpp
