// Backend-agnostic load-trace recording for the experiment drivers.
//
// BackendLoadRecorder generalizes NodeLoadRecorder across the simulator
// seam: one per-shard recorder, each attached as its own shard's load
// listener, so every shard samples its switches at its own reallocation
// events (worker-thread safe — an observer only ever touches its shard).
// On the single backend this degenerates to exactly the one-recorder wiring
// the drivers used before the seam, which is what keeps the recorded traces
// bit-identical.
//
// When the sharded backend collapses the core layer into per-shard gateway
// nodes, core switches have no per-switch trace. The recorder instead
// exposes the *aggregate* core signal: each shard's gateway trace, merged
// across shards weighted by gateway capacity — the cross-pod load signal
// core-layer policies (mech/core_parking.h) park against.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "netpp/mech/load_trace.h"
#include "netpp/mech/trace_recorder.h"
#include "netpp/netsim/backend.h"
#include "netpp/topo/graph.h"

namespace netpp {

class BackendLoadRecorder {
 public:
  /// Prepares one NodeLoadRecorder per shard covering the shard-resident
  /// subset of `nodes` (plus the gateway node when the core is collapsed).
  /// Listeners are NOT attached yet — call attach() after the driver's
  /// initial topology mutations, mirroring the pre-seam wiring order.
  BackendLoadRecorder(SimulatorBackend& backend,
                      const std::vector<NodeId>& nodes);

  /// Attaches every shard's load listener and records the t=now() sample.
  void attach();

  /// Whether `node` has a per-node trace (false for core switches once the
  /// core is collapsed).
  [[nodiscard]] bool has_node(NodeId node) const;

  /// The node's recorded samples as a `num_channels`-wide LoadTrace (see
  /// NodeLoadRecorder::load_trace). Throws std::logic_error for a node
  /// without a per-node trace.
  [[nodiscard]] LoadTrace node_trace(NodeId node, int num_channels,
                                     Seconds end) const;

  /// Aggregate core-layer load (single channel, fraction of total gateway
  /// capacity): per-shard gateway traces merged over the union of their
  /// sample times, weighted by each gateway's aggregate capacity. Only
  /// meaningful when the backend collapses the core (throws otherwise).
  [[nodiscard]] LoadTrace core_trace(Seconds end) const;

 private:
  struct ShardRecorder {
    std::unique_ptr<NodeLoadRecorder> recorder;
    const ShardTopology* topo = nullptr;  ///< null: global ids verbatim
    double gateway_capacity_bps = 0.0;
  };

  static constexpr std::uint32_t kNoShard = 0xffffffffu;

  SimulatorBackend& backend_;
  std::vector<ShardRecorder> shards_;
  /// node id -> owning shard (kNoShard for collapsed-core switches).
  std::vector<std::uint32_t> owner_;
};

}  // namespace netpp
