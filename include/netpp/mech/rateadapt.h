// §4.3 "Dynamic Opt. #1: Rate Adaptation".
//
// Evaluates frequency scaling of a switch's packet pipelines over a
// piecewise-constant load trace, at three capability levels:
//
//   kNone         - today's default: everything at nominal frequency;
//   kGlobalAsic   - what some routers support today: ONE clock for the
//                   whole ASIC, set to cover the most loaded pipeline;
//   kPerPipeline  - the paper's proposal: each pipeline is clocked
//                   independently to match its own load.
//
// Optionally, SerDes down-rating (§4.3: "set a 100G-capable interface at
// 10G") scales port lane power to the smallest allowed step that covers the
// load. Policies apply headroom (run slightly faster than the load) and
// hysteresis with a minimum dwell time to avoid clock-flapping; the result
// reports how many frequency transitions the policy incurred.
#pragma once

#include <vector>

#include "netpp/power/switch_model.h"
#include "netpp/units.h"

namespace netpp {

/// Piecewise-constant per-pipeline offered load. `times[i]` is the start of
/// segment i, which holds `pipeline_loads[i]` (one entry per pipeline, each
/// in [0, 1] of a pipeline's nominal capacity) until `times[i+1]` (or `end`
/// for the last segment). times[0] defines the trace start.
struct PipelineLoadTrace {
  std::vector<Seconds> times;
  std::vector<std::vector<double>> pipeline_loads;
  Seconds end{};

  void validate(int num_pipelines) const;
  [[nodiscard]] Seconds duration() const;
};

enum class RateAdaptMode {
  kNone,
  kGlobalAsic,
  kPerPipeline,
};

struct RateAdaptConfig {
  SwitchPowerModel model{};
  /// Run the clock at load * (1 + headroom).
  double headroom = 0.10;
  /// Clocks cannot go below this fraction of nominal.
  double min_frequency = 0.25;
  /// A new target frequency is only applied if it differs from the current
  /// one by more than this (hysteresis band).
  double hysteresis = 0.05;
  /// Down-rate SerDes lanes to the smallest step covering the pipeline's
  /// load. Empty disables down-rating (ports stay at full lanes).
  std::vector<double> lane_steps;  ///< e.g. {0.25, 0.5, 1.0}
};

struct RateAdaptResult {
  Joules energy{};
  Watts average_power{};
  /// 1 - energy / energy(kNone) over the same trace.
  double savings_vs_none = 0.0;
  std::size_t frequency_transitions = 0;
  /// Time-weighted mean frequency across pipelines.
  double mean_frequency = 1.0;
};

/// Simulates one switch over the trace in the given mode.
[[nodiscard]] RateAdaptResult simulate_rate_adaptation(
    const PipelineLoadTrace& trace, const RateAdaptConfig& config,
    RateAdaptMode mode);

}  // namespace netpp
