// §4.3 "Dynamic Opt. #1: Rate Adaptation".
//
// Evaluates frequency scaling of a switch's packet pipelines over a
// piecewise-constant load trace, at three capability levels:
//
//   kNone         - today's default: everything at nominal frequency;
//   kGlobalAsic   - what some routers support today: ONE clock for the
//                   whole ASIC, set to cover the most loaded pipeline;
//   kPerPipeline  - the paper's proposal: each pipeline is clocked
//                   independently to match its own load.
//
// Optionally, SerDes down-rating (§4.3: "set a 100G-capable interface at
// 10G") scales port lane power to the smallest allowed step that covers the
// load. Policies apply headroom (run slightly faster than the load) and
// hysteresis with a minimum dwell time to avoid clock-flapping; the result
// reports how many frequency transitions the policy incurred.
#pragma once

#include <string_view>
#include <vector>

#include "netpp/mech/load_trace.h"
#include "netpp/mech/mechanism.h"
#include "netpp/power/switch_model.h"
#include "netpp/units.h"

namespace netpp {

enum class RateAdaptMode {
  kNone,
  kGlobalAsic,
  kPerPipeline,
};

struct RateAdaptConfig {
  SwitchPowerModel model{};
  /// Run the clock at load * (1 + headroom).
  double headroom = 0.10;
  /// Clocks cannot go below this fraction of nominal.
  double min_frequency = 0.25;
  /// A new target frequency is only applied if it differs from the current
  /// one by more than this (hysteresis band).
  double hysteresis = 0.05;
  /// Down-rate SerDes lanes to the smallest step covering the pipeline's
  /// load. Empty disables down-rating (ports stay at full lanes).
  std::vector<double> lane_steps;  ///< e.g. {0.25, 0.5, 1.0}
};

struct RateAdaptResult {
  Joules energy{};
  Watts average_power{};
  /// 1 - energy / energy(kNone) over the same trace.
  double savings_vs_none = 0.0;
  std::size_t frequency_transitions = 0;
  /// Time-weighted mean frequency across pipelines.
  double mean_frequency = 1.0;
};

namespace detail {

/// Smallest allowed lane step >= `load` (steps are fractions of full
/// lanes); falls back to full lanes when no step covers the load.
[[nodiscard]] double pick_lane_step(const std::vector<double>& steps,
                                    double load);

}  // namespace detail

/// Rate adaptation as a MechanismPolicy (§4.3): per segment, requests a
/// target clock level per pipeline (headroom above the load, floored at
/// min_frequency) through the timeline's hysteresis rules, and optionally
/// down-rates SerDes lanes to the switch-wide mean load step.
class RateAdaptPolicy : public MechanismPolicy {
 public:
  RateAdaptPolicy(RateAdaptConfig config, RateAdaptMode mode);

  [[nodiscard]] std::string_view name() const override;
  [[nodiscard]] PowerStateTimeline make_timeline(
      const LoadTrace& trace) override;
  void observe(const LoadSegment& seg, PowerStateTimeline& timeline) override;

  [[nodiscard]] const RateAdaptConfig& config() const { return config_; }
  [[nodiscard]] RateAdaptMode mode() const { return mode_; }

 private:
  RateAdaptConfig config_;
  RateAdaptMode mode_;
  int pipes_ = 0;
  std::vector<PortState> ports_;      ///< nominal (full-lane) ports
  std::vector<PortState> seg_ports_;  ///< current segment, possibly down-rated
};

/// Simulates one switch over the trace in the given mode.
[[nodiscard]] RateAdaptResult simulate_rate_adaptation(
    const PipelineLoadTrace& trace, const RateAdaptConfig& config,
    RateAdaptMode mode);

}  // namespace netpp
