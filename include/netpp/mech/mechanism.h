// Composable §4 mechanism layer.
//
// Every trace-driven mechanism (rate adaptation, pipeline parking, link
// down-rating, and their compositions) is a MechanismPolicy: it observes
// load segments and emits state decisions onto a shared PowerStateTimeline.
// One driver — `run_mechanism`, stepping a SimEngine — owns the
// time-stepping loop the simulators used to hand-roll five times over:
// segment boundaries, pending wake completions, policy breakpoints,
// capacity-shortfall buffering (bounded buffer -> loss), and the energy /
// transition / residency integration. Every mechanism returns the same
// MechanismReport, which is what makes the §4 optimizations stackable (see
// mech/composite.h) and their savings directly comparable.
#pragma once

#include <array>
#include <limits>
#include <span>
#include <string>
#include <string_view>

#include "netpp/mech/load_trace.h"
#include "netpp/power/state_timeline.h"
#include "netpp/sim/engine.h"
#include "netpp/telemetry/telemetry.h"
#include "netpp/units.h"

namespace netpp {

/// The driver's view of the trace at a decision point.
struct LoadSegment {
  Seconds at{};     ///< decision time (>= start when re-observed mid-segment)
  Seconds start{};  ///< segment start
  Seconds end{};    ///< segment end (next boundary, or the trace end)
  std::size_t index = 0;
  std::span<const double> loads;  ///< one entry per channel
};

/// Common result every mechanism reports.
struct MechanismReport {
  std::string mechanism;
  Seconds duration{};
  Joules energy{};
  Joules baseline_energy{};  ///< do-nothing fabric over the same trace
  /// 1 - energy / baseline_energy (0 when the baseline is empty).
  double savings = 0.0;
  Watts average_power{};
  std::size_t wake_transitions = 0;
  std::size_t park_transitions = 0;
  std::size_t level_transitions = 0;
  [[nodiscard]] std::size_t transitions() const {
    return wake_transitions + park_transitions + level_transitions;
  }
  /// Capacity-shortfall buffering at the indirection layer, when modeled.
  Bits max_buffered{};
  Bits dropped{};
  Seconds max_added_delay{};
  /// Per-state component-seconds (index by PowerState).
  std::array<Seconds, kNumPowerStates> residency{};
  /// residency(kOn) / duration: time-weighted mean powered components.
  double mean_on_components = 0.0;
  /// Time-weighted mean level (frequency/speed) across components.
  double mean_level = 0.0;
};

/// A mechanism: policy decisions over a load trace, states on a timeline.
class MechanismPolicy {
 public:
  virtual ~MechanismPolicy() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Builds the timeline this mechanism runs on: component count,
  /// transition rules, and the actual/baseline power functions.
  [[nodiscard]] virtual PowerStateTimeline make_timeline(
      const LoadTrace& trace) = 0;

  /// Observes the current segment at `seg.at` and emits state decisions.
  /// Called at every decision point (segment starts, wake completions,
  /// policy breakpoints), so implementations must be idempotent at a fixed
  /// point.
  virtual void observe(const LoadSegment& seg, PowerStateTimeline& timeline) = 0;

  /// First policy-specific breakpoint strictly after `t` (+infinity when
  /// none): the driver cuts integration intervals there (e.g. a predictive
  /// schedule's pre-wake commands).
  [[nodiscard]] virtual double next_breakpoint(double t) const {
    (void)t;
    return std::numeric_limits<double>::infinity();
  }

  /// Whether the driver should model capacity-shortfall buffering for this
  /// mechanism (pipeline parking's circuit-switch buffer).
  [[nodiscard]] virtual bool models_buffering() const { return false; }
  /// Serving capacity as a fraction of nominal (only when buffering).
  [[nodiscard]] virtual double capacity_fraction(
      const PowerStateTimeline& timeline) const {
    (void)timeline;
    return 1.0;
  }
  /// Whole-device offered fraction for buffering decisions.
  [[nodiscard]] virtual double offered_fraction(const LoadSegment& seg) const;
  [[nodiscard]] virtual Bits buffer_capacity() const { return Bits{0.0}; }
  /// Nominal device capacity, to convert load fractions to bits.
  [[nodiscard]] virtual double nominal_capacity_bps() const { return 0.0; }

  /// Called after each integrated interval [t0, t1) (policy-side
  /// accounting that needs exact interval durations, e.g. down-rating's
  /// violation time).
  virtual void on_interval(Seconds t0, Seconds t1, const LoadSegment& seg,
                           const PowerStateTimeline& timeline) {
    (void)t0;
    (void)t1;
    (void)seg;
    (void)timeline;
  }

  /// Final hook: adjust/extend the generically-filled report.
  virtual void finish(const LoadTrace& trace,
                      const PowerStateTimeline& timeline,
                      MechanismReport& report) {
    (void)trace;
    (void)timeline;
    (void)report;
  }
};

/// Drives `policy` over `trace` on `engine` (one self-rearming event per
/// integration interval; the engine clock tracks the mechanism time, so
/// other events can co-schedule). The trace must be validated; the engine
/// must be at or before the trace start.
///
/// When `telemetry` is non-null the run is observable without any numeric
/// change: every power-state transition and policy breakpoint becomes a
/// trace event (category "power" / "mech"), the whole run is a "mech" span
/// keyed by the "mech.runs" counter, and the report totals land in the
/// registry under "mech.<name>.*" (transition counters and energy gauges
/// accumulate, so per-switch runs of a composite stack sum up).
[[nodiscard]] MechanismReport run_mechanism(
    SimEngine& engine, const LoadTrace& trace, MechanismPolicy& policy,
    telemetry::Telemetry* telemetry = nullptr);

/// Convenience: runs on a private engine.
[[nodiscard]] MechanismReport run_mechanism(
    const LoadTrace& trace, MechanismPolicy& policy,
    telemetry::Telemetry* telemetry = nullptr);

}  // namespace netpp
