// Phase-based ML training workload model (paper §2.2, Fig. 1).
//
// A training job is a sequence of iterations; each iteration is one
// computation phase followed by one communication phase, with no overlap:
// during computation the GPUs run at full speed and the network idles, and
// vice versa. The model scales linearly with resources:
//   - computation time is inversely proportional to the number of GPUs,
//   - communication time is inversely proportional to the network bandwidth.
// Distribution overhead and latency are neglected (§2.2).
#pragma once

#include <stdexcept>

#include "netpp/units.h"

namespace netpp {

/// One iteration's phase durations.
struct IterationProfile {
  Seconds computation{};
  Seconds communication{};

  [[nodiscard]] constexpr Seconds iteration_time() const {
    return computation + communication;
  }
  /// Fraction of the iteration spent communicating (paper §2.2).
  [[nodiscard]] constexpr double communication_ratio() const {
    const double total = iteration_time().value();
    return total > 0.0 ? communication.value() / total : 0.0;
  }
};

/// A workload anchored at a reference resource point (the baseline cluster),
/// scalable to other GPU counts and bandwidths.
class WorkloadModel {
 public:
  /// `reference` is the iteration profile observed with `reference_gpus`
  /// GPUs and `reference_bandwidth` per-GPU network bandwidth.
  WorkloadModel(IterationProfile reference, double reference_gpus,
                Gbps reference_bandwidth);

  /// The paper's baseline workload: normalized 1 s iteration with a 10%
  /// communication ratio, on 15k GPUs at 400 G each (§2.1).
  static WorkloadModel paper_baseline();

  [[nodiscard]] const IterationProfile& reference() const {
    return reference_;
  }
  [[nodiscard]] double reference_gpus() const { return reference_gpus_; }
  [[nodiscard]] Gbps reference_bandwidth() const {
    return reference_bandwidth_;
  }

  /// Fixed-workload scaling (§3.3, Fig. 3): the job is unchanged; computation
  /// shrinks with more GPUs, communication shrinks with more bandwidth.
  [[nodiscard]] IterationProfile scaled(double gpus, Gbps bandwidth) const;

  /// Fixed-communication-ratio scaling (§3.3, Fig. 4): the communication
  /// volume grows with bandwidth so that the ratio stays at the reference
  /// value; computation still shrinks with more GPUs.
  [[nodiscard]] IterationProfile scaled_fixed_ratio(double gpus) const;

 private:
  IterationProfile reference_;
  double reference_gpus_;
  Gbps reference_bandwidth_;
};

}  // namespace netpp
