// Closed-loop training simulation (paper Fig. 1, simulated rather than
// assumed).
//
// The paper's workload model *postulates* that communication time scales
// with 1/bandwidth and that iterations are compute-then-communicate. This
// module closes the loop in the flow simulator: iteration k's communication
// starts when its compute phase ends, and iteration k+1's compute starts
// only when every collective flow of iteration k has *actually* finished.
// The measured per-iteration communication times validate the analytic
// scaling (tests/bench) and expose effects the closed form hides (ECMP
// collisions stretching the collective).
#pragma once

#include <functional>
#include <vector>

#include "netpp/netsim/flowsim.h"
#include "netpp/traffic/generators.h"
#include "netpp/units.h"

namespace netpp {

struct TrainingLoopConfig {
  Seconds compute_time{0.9};
  Bits volume_per_host{Bits::from_gigabits(10.0)};
  CollectiveKind collective = CollectiveKind::kRing;
  int iterations = 5;
};

/// One completed iteration, as measured in the simulator.
struct IterationRecord {
  int iteration = 0;
  Seconds compute_begin{};
  Seconds comm_begin{};
  Seconds comm_end{};

  [[nodiscard]] Seconds communication_time() const {
    return comm_end - comm_begin;
  }
  [[nodiscard]] Seconds iteration_time() const {
    return comm_end - compute_begin;
  }
  [[nodiscard]] double communication_ratio() const {
    const double t = iteration_time().value();
    return t > 0.0 ? communication_time().value() / t : 0.0;
  }
};

/// Drives a training job through the flow simulator. Installs itself as the
/// simulator's completion listener (the slot must be free) and schedules
/// phases on the simulator's engine. Single job per simulator.
class TrainingLoopSim {
 public:
  /// `sim` and `hosts` must outlive the loop. Requires >= 2 hosts and a
  /// topology where all host pairs used by the collective are connected
  /// (unroutable flows would deadlock the loop; they throw instead).
  TrainingLoopSim(FlowSimulator& sim, std::vector<NodeId> hosts,
                  TrainingLoopConfig config);

  /// Schedules the first compute phase at the engine's current time. Run
  /// the engine afterwards.
  void start();

  /// Completed iterations so far (all of them once the engine drains).
  [[nodiscard]] const std::vector<IterationRecord>& records() const {
    return records_;
  }
  [[nodiscard]] bool finished() const {
    return records_.size() ==
           static_cast<std::size_t>(config_.iterations);
  }

  /// Mean measured communication time across completed iterations.
  [[nodiscard]] Seconds mean_communication_time() const;

 private:
  void begin_compute();
  void begin_communication();
  void on_flow_complete(const FlowRecord& record);

  FlowSimulator& sim_;
  std::vector<NodeId> hosts_;
  TrainingLoopConfig config_;
  std::vector<IterationRecord> records_;
  IterationRecord current_{};
  int current_iteration_ = -1;
  std::size_t outstanding_flows_ = 0;
};

}  // namespace netpp
