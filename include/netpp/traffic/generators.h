// Synthetic traffic generators.
//
// The paper's §4 proposals are evaluated against two traffic regimes it
// discusses:
//   - ML training (§2.2, §4.2): highly predictable phase-structured traffic;
//     compute phases with an idle network alternating with communication
//     bursts (we model the collective as a ring all-reduce: each host sends
//     2(n-1)/n of the gradient volume to its ring successor).
//   - ISP/backbone traffic (§3.4): unpredictable, diurnal, never fully idle
//     — "links are more likely to be underutilized rather than completely
//     unused".
// Generators are pure functions of a seed: they pre-compute deterministic
// flow lists that are then submitted to the FlowSimulator.
#pragma once

#include <cstdint>
#include <vector>

#include "netpp/netsim/flowsim.h"
#include "netpp/sim/random.h"
#include "netpp/topo/graph.h"
#include "netpp/units.h"

namespace netpp {

/// Collective communication pattern used for the gradient exchange.
enum class CollectiveKind {
  /// Ring all-reduce: host i -> host i+1, volume 2(n-1)/n * V per link.
  kRing,
  /// Recursive halving/doubling all-reduce: log2(n) rounds; in round r,
  /// host i exchanges V/2^(r+1)-ish volume with host i XOR 2^r. We emit one
  /// flow per partner per round with the exact per-round volume; total
  /// volume per host matches the ring's 2(n-1)/n * V. Requires n a power
  /// of two.
  kHalvingDoubling,
  /// All-to-all (expert/embedding shuffles): host i sends V/(n-1) to every
  /// other host.
  kAllToAll,
};

/// Phase-structured ML training traffic over a host list.
struct MlTrafficConfig {
  /// Duration of one computation phase (network idle).
  Seconds compute_time{0.9};
  /// Gradient volume exchanged per host per iteration; the collective
  /// determines how it is split into flows (each collective moves the same
  /// 2(n-1)/n * V total per host).
  Bits volume_per_host{Bits::from_gigabits(40.0)};
  CollectiveKind collective = CollectiveKind::kRing;
  /// Scheduled length of the communication window: iteration k's compute
  /// phase begins at start + k * (compute_time + comm_allowance). With the
  /// paper's baseline ratio (10%), allowance = compute_time / 9.
  Seconds comm_allowance{0.1};
  int iterations = 5;
  /// Starting offset of the first computation phase.
  Seconds start{0.0};
};

/// One iteration's phase boundaries (for predictive power policies, which
/// exploit exactly this schedule knowledge — §4.4).
struct PhaseWindow {
  int iteration = 0;
  Seconds compute_begin{};
  Seconds comm_begin{};  ///< == compute_begin + compute_time
};

struct MlTraffic {
  std::vector<FlowSpec> flows;
  std::vector<PhaseWindow> schedule;
};

/// Generates collective traffic: in iteration k, at the end of the compute
/// phase, hosts exchange gradients per the configured collective. Flow tags
/// carry the iteration number. Requires >= 2 hosts (power of two for
/// halving/doubling).
[[nodiscard]] MlTraffic make_ml_training_traffic(
    const std::vector<NodeId>& hosts, const MlTrafficConfig& config);

/// Poisson flow arrivals with bounded-Pareto sizes between uniformly random
/// distinct host pairs.
struct PoissonTrafficConfig {
  double arrivals_per_second = 100.0;
  /// Bounded-Pareto size distribution (heavy-tailed mice/elephants mix).
  double pareto_alpha = 1.2;
  Bits min_size{Bits::from_bytes(10e3)};
  Bits max_size{Bits::from_gigabits(10.0)};
  Seconds duration{10.0};
  std::uint64_t seed = 42;
};

[[nodiscard]] std::vector<FlowSpec> make_poisson_traffic(
    const std::vector<NodeId>& hosts, const PoissonTrafficConfig& config);

/// ISP-style diurnal traffic: Poisson arrivals whose rate follows a sinus
/// over the day (peak at `peak_hour`), sizes bounded-Pareto. Time is
/// compressed: one simulated "day" lasts `day_duration`.
struct DiurnalTrafficConfig {
  double peak_arrivals_per_second = 200.0;
  /// Trough-to-peak ratio in (0, 1]: 0.25 means the night rate is 25% of
  /// the peak rate.
  double trough_ratio = 0.25;
  double peak_hour = 20.0;  ///< of a 24 h cycle
  Seconds day_duration{24.0};  ///< compressed day length in sim time
  int days = 1;
  double pareto_alpha = 1.3;
  Bits min_size{Bits::from_bytes(10e3)};
  Bits max_size{Bits::from_gigabits(4.0)};
  std::uint64_t seed = 7;
};

[[nodiscard]] std::vector<FlowSpec> make_diurnal_traffic(
    const std::vector<NodeId>& hosts, const DiurnalTrafficConfig& config);

}  // namespace netpp
