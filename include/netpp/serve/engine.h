// The warm-state query engine behind netpp_serve.
//
// A QueryEngine loads nothing up front; it lazily builds and then keeps the
// expensive, scenario-level state the canned analyses share, so a batch of
// what-if queries costs a fraction of the equivalent one-shot CLI runs:
//
//   * faults queries fork a warm baseline. The first query for a faults
//     tuple constructs the experiment once (topology, workload, fault
//     schedule, initial tailoring) and captures a state::StateImage of it;
//     every later query forks that image through the snapshot-restoring
//     FaultExperimentRun constructor instead of re-tailoring from scratch.
//   * mech queries share a CompositeCache per scenario (backend, workload),
//     so sweeping stack compositions, OCS counts, horizons, and domain
//     budgets reuses the backend simulation runs and per-stage totals.
//   * identical queries (same cache_key) are answered from a rendered
//     result cache without touching the simulator at all.
//
// Every answer is byte-identical to the equivalent cold run — and therefore
// to the one-shot netpp_cli output, which the equivalence tests pin at the
// process level: forks restore bit-exact state, CompositeCache hits are
// pure-function reuses, and the render path is shared (serve/scenarios.h).
//
// Errors never escape as exceptions: answer() converts ServeError (and
// snapshot-validation failures from a damaged warm baseline, surfaced as
// kCorruptBaseline) into the typed error envelope of serve/protocol.h.
//
// Thread safety: handle()/answer() may be called concurrently; batches fan
// out over a sim::SweepRunner pool. Internal caches are mutex-protected,
// and each mech scenario's CompositeCache serializes its callers, so
// results are independent of thread count and arrival order.
#pragma once

#include <cstddef>
#include <memory>
#include <string>

#include "netpp/serve/json.h"
#include "netpp/serve/query.h"

namespace netpp::serve {

struct EngineConfig {
  /// Worker-thread ceiling for batch (array) requests; 0 means the shared
  /// thread budget (netpp/sim/thread_budget.h).
  std::size_t num_threads = 0;
  /// Answer repeated identical queries from the rendered-result cache.
  bool result_cache = true;
};

/// Warm-state accounting, for the serve benches and --stats reporting.
struct EngineStats {
  std::size_t queries = 0;          ///< queries answered (ok or error)
  std::size_t result_reuses = 0;    ///< answered from the result cache
  std::size_t baselines_built = 0;  ///< warm fault baselines constructed
  std::size_t baseline_forks = 0;   ///< queries answered by forking one
  std::size_t sim_reuses = 0;       ///< backend runs reused (mech caches)
  std::size_t stage_reuses = 0;     ///< stage totals reused (mech caches)
};

class QueryEngine {
 public:
  explicit QueryEngine(EngineConfig config = {});
  ~QueryEngine();
  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// Answers one request: an object is one query, an array is a batch
  /// (answered in order, fanned out over the worker pool). Never throws;
  /// malformed queries become typed error envelopes in place.
  [[nodiscard]] JsonValue handle(const JsonValue& request);

  /// Text in, serialized response out: parses `text` as JSON (kBadJson
  /// envelope if malformed) and dumps handle()'s response on one line.
  [[nodiscard]] std::string handle_text(const std::string& text);

  /// Answers one parsed query with an ok/error envelope. Never throws.
  [[nodiscard]] JsonValue answer(const Query& query);

  /// Eagerly builds the default faults baseline (the one `--save-baseline`
  /// writes), so the first query doesn't pay for it.
  void warm_default_baseline();
  /// Writes the default faults baseline image to `path` (warming it first).
  void save_baseline(const std::string& path);
  /// Installs a baseline image from `path` for the default faults tuple.
  /// The bytes are validated on first fork: a damaged image turns the
  /// queries that touch it into kCorruptBaseline errors, it does not take
  /// the server down.
  void load_baseline(const std::string& path);

  [[nodiscard]] EngineStats stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace netpp::serve
