// The netpp_serve wire protocol: framing, typed errors, response envelopes.
//
// A serve connection is a stream of frames, each a u32 little-endian payload
// length followed by that many bytes of UTF-8 JSON — one query (or one
// batch array of queries) per frame, one response frame back. The --stdin
// pipe mode uses newline-delimited JSON instead of length prefixes; both
// modes share the same JSON schema and the same typed error taxonomy.
//
// Every way a request can be rejected has a stable machine-readable code
// (ErrorCode below), carried by ServeError through the query/engine layers
// and rendered into the error envelope:
//
//   {"ok":false,"id":7,"error":{"code":"out_of_range","field":"mttr_s",
//    "message":"mttr_s must be > 0"}}
//
// so clients can branch on `code`/`field` without parsing prose.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

#include "netpp/serve/json.h"

namespace netpp::serve {

/// Machine-readable rejection taxonomy. The string forms (to_string) are
/// the wire contract; tests pin them.
enum class ErrorCode : std::uint8_t {
  kBadFrame,         ///< unreadable framing: oversize length, mid-frame EOF
  kBadJson,          ///< the payload is not a JSON document
  kBadRequest,       ///< JSON is fine but the request shape is wrong
  kUnknownCommand,   ///< "command" names no query kind
  kUnknownField,     ///< a field the command's schema does not define
  kBadValue,         ///< wrong JSON type or unknown enum string for a field
  kOutOfRange,       ///< a numeric field outside its accepted range
  kBackendMismatch,  ///< inconsistent backend/shard combination
  kCorruptBaseline,  ///< a warm baseline image failed snapshot validation
  kInternal,         ///< unexpected failure while answering
};

/// "bad_frame" / "bad_json" / "bad_request" / "unknown_command" /
/// "unknown_field" / "bad_value" / "out_of_range" / "backend_mismatch" /
/// "corrupt_baseline" / "internal".
[[nodiscard]] const char* to_string(ErrorCode code);

/// A typed rejection. `field` names the offending query field where one
/// exists ("" for request-level errors like bad framing).
class ServeError : public std::runtime_error {
 public:
  ServeError(ErrorCode code, std::string field, const std::string& message)
      : std::runtime_error(message), code_(code), field_(std::move(field)) {}

  [[nodiscard]] ErrorCode code() const { return code_; }
  [[nodiscard]] const std::string& field() const { return field_; }

 private:
  ErrorCode code_;
  std::string field_;
};

/// Response envelopes. `id` echoes the query's "id" member when it carried
/// one (JSON null otherwise) so batched clients can correlate.
[[nodiscard]] JsonValue make_ok_response(const JsonValue& id,
                                         JsonValue result);
[[nodiscard]] JsonValue make_error_response(const JsonValue& id,
                                            ErrorCode code,
                                            std::string_view field,
                                            std::string_view message);

/// Frame limits: a frame longer than this is rejected with kBadFrame before
/// any allocation (a garbage length prefix must not look like a 4 GiB
/// request).
inline constexpr std::size_t kMaxFrameBytes = 16u << 20;

/// Encodes `payload` as a length-prefixed frame (u32 LE + bytes).
[[nodiscard]] std::string encode_frame(std::string_view payload);

/// Reads one frame from `fd`. Returns false on clean EOF at a frame
/// boundary; throws ServeError(kBadFrame) on an oversize length or EOF
/// mid-frame. Retries EINTR.
bool read_frame(int fd, std::string& payload);

/// Writes one length-prefixed frame to `fd`. Throws ServeError(kInternal)
/// if the peer vanishes mid-write.
void write_frame(int fd, std::string_view payload);

}  // namespace netpp::serve
