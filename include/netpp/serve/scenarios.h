// Canned scenarios and report tables shared by netpp_cli and netpp_serve.
//
// The CLI's `cluster`/`savings`/`faults`/`mech` subcommands and the query
// server answer the same questions; this module is the single definition of
// both the scenario construction (topology, workload, fault schedule,
// mechanism config) and the result rendering (the exact Table rows), so a
// serve answer is byte-identical to the equivalent one-shot CLI run by
// construction — the equivalence tests pin it at the process level.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netpp/analysis/report.h"
#include "netpp/cluster/cluster.h"
#include "netpp/faults/experiment.h"
#include "netpp/mech/composite.h"
#include "netpp/netsim/backend.h"
#include "netpp/topo/builders.h"

namespace netpp::serve {

/// The knob set behind the canned scenarios: one field per CLI flag /
/// query field, with the CLI's defaults. Both front ends parse into this
/// struct and hand it to the builders below.
struct ScenarioOptions {
  // cluster / savings analytics
  ClusterConfig cluster;
  double prop = 0.5;
  // faults
  double mtbf_s = 10.0;  ///< 0 disables fault injection
  double mttr_s = 0.5;
  double headroom = 0.0;
  std::uint64_t fault_seed = 1;
  DegradedPolicy policy = DegradedPolicy::kRetailor;
  // mech
  std::string stack = "all";
  int mech_iterations = 4;
  double mech_volume_gbit = 2.0;
  double mech_horizon_s = 4.0;
  int mech_ocs_devices = 4;
  double pod_budget_w = 0.0;   ///< 0 = unbudgeted pod domains
  double core_budget_w = 0.0;  ///< 0 = unbudgeted core domain
  // simulator backend (faults / mech)
  BackendConfig backend{};
  // telemetry sampling cadence (faults, when a bundle is attached)
  double sample_period_s = 0.02;
};

/// The canned `faults` scenario pieces: 4x4 leaf-spine fabric (k=4 fat tree
/// on the sharded backend), ring all-reduce training traffic, topology
/// tailored to the ring demand before the run. Kept as data so snapshot
/// save/restore — and the serve engine's warm-baseline forks — can rebuild
/// the identical shell around a snapshot.
struct CannedFaultScenario {
  BuiltTopology topo;
  std::vector<FlowSpec> workload;
  FaultSchedule schedule;
  FaultExperimentConfig config;
  Seconds fault_horizon{5.0};
};

/// Builds the canned faults scenario for `opt` (`opt.backend` picks the
/// fabric). `tel` lands in config.telemetry and must outlive the run.
[[nodiscard]] CannedFaultScenario make_canned_fault_scenario(
    const ScenarioOptions& opt, telemetry::Telemetry* tel);

/// The canned `mech` scenario: k=4 fat tree at 100 G running
/// phase-structured ML training, a ring all-reduce demand matrix tailoring
/// must keep satisfiable, and the composed stack config for `opt.stack`.
/// config.telemetry is left null; callers attach their own bundle.
struct CannedMechScenario {
  BuiltTopology topo;
  std::vector<FlowSpec> workload;
  std::vector<TrafficDemand> demands;
  CompositeConfig config;
  Seconds horizon{4.0};
};

[[nodiscard]] CannedMechScenario make_canned_mech_scenario(
    const ScenarioOptions& opt);

/// Result tables — the exact rows the CLI prints.
[[nodiscard]] Table cluster_summary_table(const ClusterConfig& config);
[[nodiscard]] Table savings_cell_table(const ClusterConfig& config,
                                       double prop);
[[nodiscard]] Table faults_summary_table(const FaultExperimentResult& result);
[[nodiscard]] Table mech_summary_table(const std::string& stack,
                                       const CompositeReport& report);

}  // namespace netpp::serve
