// Minimal, dependency-free JSON for the serve protocol.
//
// The query server speaks strict JSON: a small recursive-descent parser
// (objects, arrays, strings with escapes, doubles, booleans, null) that
// rejects malformed input with a one-line "Json: ..." diagnostic, and a
// serializer whose output is deterministic (object members keep insertion
// order, integral doubles print without a fraction). No reflection, no
// schema: the query layer (serve/query.h) walks JsonValue by hand, which is
// what lets it produce field-precise typed errors.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace netpp::serve {

enum class JsonKind : std::uint8_t {
  kNull,
  kBool,
  kNumber,
  kString,
  kArray,
  kObject,
};

/// "null" / "boolean" / "number" / "string" / "array" / "object".
[[nodiscard]] const char* to_string(JsonKind kind);

/// A parsed JSON value. Object members preserve insertion order so
/// serialization is deterministic and responses read the way they were
/// built.
class JsonValue {
 public:
  using Member = std::pair<std::string, JsonValue>;

  JsonValue() = default;  // null
  static JsonValue make_bool(bool v);
  static JsonValue make_number(double v);
  static JsonValue make_string(std::string v);
  static JsonValue make_array();
  static JsonValue make_object();

  [[nodiscard]] JsonKind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == JsonKind::kNull; }

  /// Typed accessors; throw std::logic_error on a kind mismatch (the query
  /// layer checks kinds first and reports its own typed errors).
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const std::vector<JsonValue>& as_array() const;
  [[nodiscard]] const std::vector<Member>& as_object() const;

  /// Object lookup; nullptr when absent (or not an object).
  [[nodiscard]] const JsonValue* find(std::string_view key) const;

  /// Builders.
  void push_back(JsonValue v);                      // array
  void set(std::string key, JsonValue v);           // object (append)

  /// Serializes the value on one line (no trailing newline). Strings are
  /// escaped per RFC 8259; numbers print via shortest-round-trip %.17g with
  /// integral values rendered without a fraction.
  [[nodiscard]] std::string dump() const;

 private:
  JsonKind kind_ = JsonKind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<Member> object_;
};

/// Parses exactly one JSON document from `text` (leading/trailing
/// whitespace allowed, anything else after the value rejected). Throws
/// std::invalid_argument("Json: ...") on malformed input.
[[nodiscard]] JsonValue parse_json(std::string_view text);

/// Escapes `s` as a JSON string literal including the quotes.
[[nodiscard]] std::string json_escape(std::string_view s);

}  // namespace netpp::serve
