// Query parsing: strict JSON-object → typed Query, field-precise errors.
//
// A query is a JSON object selecting one canned analysis and overriding its
// knobs, mirroring the netpp_cli flag surface one-to-one:
//
//   {"command":"mech","stack":"dynamic","ocs":8,"output":"csv","id":3}
//
// Commands: "cluster", "savings", "faults", "mech". Every command accepts
// "id" (echoed in the response) and "output" ("csv" | "table" | "metrics");
// the rest of the schema is per-command, and parsing is strict: a field the
// command does not define is rejected with unknown_field, a wrong JSON type
// or unknown enum string with bad_value, a number outside the CLI-accepted
// range with out_of_range, and an inconsistent backend/shard combination
// with backend_mismatch — all as ServeError, rendered into the typed error
// envelope by the engine.
#pragma once

#include <string>

#include "netpp/serve/json.h"
#include "netpp/serve/protocol.h"
#include "netpp/serve/scenarios.h"

namespace netpp::serve {

enum class QueryKind : std::uint8_t { kCluster, kSavings, kFaults, kMech };
enum class QueryOutput : std::uint8_t { kCsv, kTable, kMetrics };

/// "cluster" / "savings" / "faults" / "mech".
[[nodiscard]] const char* to_string(QueryKind kind);
/// "csv" / "table" / "metrics".
[[nodiscard]] const char* to_string(QueryOutput output);

struct Query {
  QueryKind kind = QueryKind::kCluster;
  QueryOutput output = QueryOutput::kCsv;
  /// The query's "id" member, echoed verbatim in the response envelope
  /// (JSON null when the query carried none).
  JsonValue id;
  /// The scenario knobs after applying the query's overrides to the CLI
  /// defaults.
  ScenarioOptions opt;
};

/// Parses one query object. Throws ServeError on any schema violation.
[[nodiscard]] Query parse_query(const JsonValue& request);

/// Canonical result-cache key: two queries with equal keys are answered
/// with byte-identical payloads (the echoed id is not part of the key).
[[nodiscard]] std::string cache_key(const Query& query);

}  // namespace netpp::serve
