// Epoch-versioned ECMP route cache.
//
// Every (src, dst) route lookup in the flow simulator used to run a fresh
// BFS + shortest-path-DAG enumeration, even though host pairs repeat
// constantly and the ECMP set only changes when the topology masks change.
// RouteCache memoizes Router::find_paths results in a flat path pool (one
// contiguous LinkId arena + fixed-stride spans — shortest paths of one pair
// all have the same hop count, so a set is just base/num_paths/hops) and
// fronts it with the Router's topology epoch: Router::set_node_enabled /
// set_link_enabled bump the epoch, and the cache lazily drops everything on
// the first lookup that observes a newer epoch. No eager flush hooks, so it
// composes with dynamic-topology callers (fault injection, parking) that
// toggle devices mid-run.
//
// Fat-tree symmetry: a single-homed host's ECMP set is its uplink, the
// (src-ToR, dst-ToR) set, and the peer's downlink — in exactly the order
// Router enumerates (the DFS's branch decisions are identical once the
// forced first/last hops are peeled). With `Config::symmetry` (default on)
// the cache keys such pairs by their attachment switches, so every host
// pair under the same ToR pair shares one entry and the resident set scales
// with ToR pairs, not host pairs. Lookups return composed views; nothing is
// materialized per host pair.
//
// Not thread-safe: lookups mutate the pool and stats. One cache per
// simulator/thread, like the Router it fronts.
#pragma once

#include <cassert>
#include <cstdint>
#include <optional>
#include <vector>

#include "netpp/state/snapshot.h"
#include "netpp/topo/routing.h"

namespace netpp {

/// Observability counters for the route cache (exposed through
/// FlowSimulator::realloc_stats() and the CLI).
struct RouteCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;          ///< lookups that ran the Router BFS
  std::uint64_t epoch_flushes = 0;   ///< whole-cache drops on epoch change
  std::uint64_t entries = 0;         ///< resident path-set entries
  std::uint64_t pool_bytes = 0;      ///< resident bytes (pool + index)
};

class RouteCache {
 public:
  struct Config {
    /// ECMP fan-out limit per (src, dst) pair; matches
    /// Router::ecmp_paths' `max_paths`.
    std::size_t max_paths = 16;
    /// Key single-homed endpoints by their attachment switch (see file
    /// comment). Purely an occupancy optimization: results are identical.
    bool symmetry = true;
  };

  /// One cached path: the shared middle span plus the caller pair's forced
  /// first/last hop (kInvalidLink when the endpoint is not canonicalized).
  /// Views stay valid until the next lookup (the pool may grow) or topology
  /// change; consume immediately.
  class PathRef {
   public:
    PathRef(const LinkId* mid, std::uint32_t mid_hops, LinkId prefix,
            LinkId suffix)
        : mid_(mid), mid_hops_(mid_hops), prefix_(prefix), suffix_(suffix) {}

    [[nodiscard]] std::size_t hops() const {
      return mid_hops_ + (prefix_ != kInvalidLink ? 1 : 0) +
             (suffix_ != kInvalidLink ? 1 : 0);
    }
    [[nodiscard]] LinkId link(std::size_t i) const {
      if (prefix_ != kInvalidLink) {
        if (i == 0) return prefix_;
        --i;
      }
      if (i < mid_hops_) return mid_[i];
      assert(i == mid_hops_ && suffix_ != kInvalidLink);
      return suffix_;
    }
    /// Materializes the link sequence (tests, compatibility shims).
    [[nodiscard]] std::vector<LinkId> links() const {
      std::vector<LinkId> out;
      out.reserve(hops());
      for (std::size_t i = 0; i < hops(); ++i) out.push_back(link(i));
      return out;
    }

   private:
    const LinkId* mid_;
    std::uint32_t mid_hops_;
    LinkId prefix_;
    LinkId suffix_;
  };

  /// A cached ECMP set. Same validity rules as PathRef.
  class PathSetView {
   public:
    PathSetView(RouteStatus status, const LinkId* base,
                std::uint32_t num_paths, std::uint32_t hops, LinkId prefix,
                LinkId suffix)
        : status_(status), base_(base), num_paths_(num_paths), hops_(hops),
          prefix_(prefix), suffix_(suffix) {}

    [[nodiscard]] RouteStatus status() const { return status_; }
    [[nodiscard]] bool ok() const { return status_ == RouteStatus::kOk; }
    /// Number of ECMP paths (0 when not ok).
    [[nodiscard]] std::size_t size() const { return num_paths_; }
    [[nodiscard]] PathRef path(std::size_t i) const {
      assert(i < num_paths_);
      return PathRef{base_ + i * hops_, hops_, prefix_, suffix_};
    }

   private:
    RouteStatus status_;
    const LinkId* base_;
    std::uint32_t num_paths_;
    std::uint32_t hops_;  ///< middle hops (shortest paths share hop count)
    LinkId prefix_;
    LinkId suffix_;
  };

  /// `router` must outlive the cache.
  RouteCache(const Router& router, Config config);
  explicit RouteCache(const Router& router) : RouteCache(router, Config{}) {}

  /// Cached equivalent of Router::find_paths(src, dst, config.max_paths):
  /// same statuses, same paths, same order.
  [[nodiscard]] PathSetView find_paths(NodeId src, NodeId dst);

  /// Cached equivalent of Router::ecmp_route: hashes (src, dst, flow_id)
  /// into the set — same selection, no Path materialization. nullopt when
  /// disconnected or the endpoints are invalid.
  [[nodiscard]] std::optional<PathRef> route(NodeId src, NodeId dst,
                                             std::uint64_t flow_id);

  /// Materializing shim with Router::find_paths' exact signature semantics
  /// (equivalence tests compare this against a fresh Router).
  [[nodiscard]] RouteResult find_paths_copy(NodeId src, NodeId dst);

  /// Warms the index lines for (src, dst) without performing the lookup:
  /// canonicalizes the pair, computes its Fibonacci-hash slot, and issues a
  /// non-faulting prefetch of the key/slot words. Burst callers (topology
  /// reroutes, stranded retries) sweep their whole batch through this first
  /// so the grouped lookups that follow land on warm lines instead of
  /// serializing one table miss per flow. Never mutates the cache; a stale
  /// epoch simply makes the prefetch a no-op-in-effect.
  void prefetch(NodeId src, NodeId dst) const;

  [[nodiscard]] RouteCacheStats stats() const;
  [[nodiscard]] const Router& router() const { return router_; }

  /// Serializes the full cache contents — table, entries, path pool, epoch,
  /// and counters — so a restored run replays the same hit/miss sequence
  /// (the counters feed metrics that must match bitwise).
  void save_state(state::SnapshotWriter& w) const;
  /// Restores a save_state() image. The attachment maps are structural
  /// (rebuilt by the constructor) and are validated, not overwritten.
  void restore_state(state::SnapshotReader& r);

  /// Cache-vs-router agreement audit: when the cache is current (its epoch
  /// matches the router's), every kOk entry's paths must be walkable on the
  /// live topology — consecutive links share a node, every link is enabled,
  /// and every transit node is enabled (the canonical endpoints are exempt,
  /// matching Router semantics). A stale cache is trivially in agreement
  /// (it flushes on the next lookup). Throws
  /// std::invalid_argument("RouteCache: constraint") on violation.
  void check_agreement() const;

 private:
  struct Entry {
    std::uint32_t begin = 0;      ///< first link in pool_
    std::uint32_t num_paths = 0;
    std::uint32_t hops = 0;       ///< hop count of every path in the set
    RouteStatus status = RouteStatus::kDisconnected;
  };

  /// Where a lookup's key canonicalized to: the cache key pair plus the
  /// forced first/last links peeled off single-homed endpoints.
  struct CanonicalKey {
    NodeId a;
    NodeId b;
    LinkId prefix;
    LinkId suffix;
  };

  void flush_if_stale();
  [[nodiscard]] CanonicalKey canonicalize(NodeId src, NodeId dst) const;
  /// Looks up (a, b) in the open-addressing table; computes and inserts on
  /// miss. Returns the entry index.
  std::uint32_t lookup(NodeId a, NodeId b);
  void insert_key(std::uint64_t key, std::uint32_t entry_index);
  void grow_table();

  const Router& router_;
  Config config_;

  // Single-homed endpoint info, fixed by graph structure: the attachment
  // switch and uplink of every degree-1 node (kInvalid* otherwise).
  std::vector<NodeId> attach_node_;
  std::vector<LinkId> attach_link_;

  // Open-addressing hash table: key (a << 32 | b) -> entry index.
  std::vector<std::uint64_t> keys_;
  std::vector<std::uint32_t> slots_;
  std::size_t occupied_ = 0;

  std::vector<Entry> entries_;
  std::vector<LinkId> pool_;  ///< flat arena: entries' paths back to back

  std::uint64_t epoch_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t epoch_flushes_ = 0;
};

}  // namespace netpp
