// Max-flow and bisection-bandwidth analysis over explicit topologies.
//
// Used to verify structural properties the power analyses rely on — e.g.
// that the fat-tree builder really produces a full-bisection fabric (the
// paper's §4.2 observation that such fabrics are over-provisioned for most
// ML jobs is what makes OCS tailoring attractive) — and to quantify how
// much capacity survives when switches are powered off.
//
// Links are full duplex: each undirected link contributes an independent
// arc of its capacity in each direction. Implementation: Edmonds-Karp.
#pragma once

#include <optional>
#include <vector>

#include "netpp/topo/builders.h"
#include "netpp/topo/graph.h"
#include "netpp/topo/routing.h"
#include "netpp/units.h"

namespace netpp {

/// Max flow from `src` to `dst`. If `router` is given, its disabled nodes
/// and links are excluded (disabled nodes block transit; src/dst always
/// participate).
[[nodiscard]] Gbps max_flow(const Graph& graph, NodeId src, NodeId dst,
                            const Router* router = nullptr);

/// Max aggregate flow from the `sources` set to the `sinks` set
/// (super-source/super-sink construction; sets must be disjoint and
/// non-empty).
[[nodiscard]] Gbps max_flow(const Graph& graph,
                            const std::vector<NodeId>& sources,
                            const std::vector<NodeId>& sinks,
                            const Router* router = nullptr);

/// Bisection bandwidth estimate: hosts split into two halves by index
/// (first half vs second half), set-to-set max flow. For the symmetric
/// builders in this library the index split is a worst-case cut.
[[nodiscard]] Gbps bisection_bandwidth(const BuiltTopology& topology,
                                       const Router* router = nullptr);

}  // namespace netpp
