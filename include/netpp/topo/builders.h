// Topology builders: classic k-ary fat tree, 2-tier leaf-spine, and a
// linear ISP-style backbone. These produce explicit graphs for the flow
// simulator; the closed-form FatTreeModel in core/topomodel covers the
// analytic sizing.
#pragma once

#include "netpp/topo/graph.h"

namespace netpp {

/// Result of a topology build: the graph plus the host list in a canonical
/// order (useful for traffic generators).
struct BuiltTopology {
  Graph graph;
  std::vector<NodeId> hosts;
  std::vector<NodeId> switches;  ///< all switch-kind nodes, tier ascending
};

/// Classic 3-tier k-ary fat tree (Al-Fares et al.): k pods, k^3/4 hosts,
/// k^2/2 edge + k^2/2 aggregation + k^2/4 core switches. `k` must be even
/// and >= 2. Host links run at `host_speed`; inter-switch links at
/// `fabric_speed` and are marked optical.
[[nodiscard]] BuiltTopology build_fat_tree(int k, Gbps host_speed,
                                           Gbps fabric_speed);

/// Convenience: all link speeds equal (the paper's setting — the per-GPU
/// NIC speed matches the fabric port speed).
[[nodiscard]] BuiltTopology build_fat_tree(int k, Gbps speed);

/// 2-tier leaf-spine: `leaves` leaf switches, `spines` spine switches,
/// `hosts_per_leaf` hosts per leaf; every leaf connects to every spine.
[[nodiscard]] BuiltTopology build_leaf_spine(int leaves, int spines,
                                             int hosts_per_leaf,
                                             Gbps host_speed,
                                             Gbps fabric_speed);

/// ISP-style backbone ring of `pops` router nodes with `chords` extra
/// shortcut links, one access host hanging off each PoP (traffic source/
/// sink). Deterministic chord placement (i -> i + pops/2 ... ).
[[nodiscard]] BuiltTopology build_backbone_ring(int pops, int chords,
                                                Gbps link_speed);

}  // namespace netpp
