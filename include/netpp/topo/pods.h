// Pod partition extraction and shard-local topology construction.
//
// The sharded flow simulator (netpp/netsim/sharded.h) splits a multi-pod
// fabric into independent per-pod simulators. The partition is structural,
// not name-based: nodes at or above the core tier form the core layer, and
// pods are the connected components of what remains (aggregation and edge
// switches plus their hosts). This works for any layered topology the
// builders produce and for hand-built graphs with consistent tiers.
//
// A shard's local topology is the union of its pods copied verbatim, plus a
// single *gateway* node standing in for the entire core layer: each
// aggregation switch's core uplinks collapse into one aggregate-capacity
// link to the gateway. Traffic between pods of the same shard transits the
// gateway; traffic leaving the shard terminates at it (the other half of
// the flow runs in the destination shard). The single-shard configuration
// copies the global graph verbatim — same node and link ids, core included —
// which is what pins ShardedFlowSimulator with one shard bit-identical to
// the plain FlowSimulator.
#pragma once

#include <cstddef>
#include <vector>

#include "netpp/topo/graph.h"

namespace netpp {

/// Structural pod partition of a layered topology.
struct PodPartition {
  /// pod_of_node value for core-layer nodes.
  static constexpr int kCore = -1;

  /// Per node: pod index, or kCore for nodes at tier >= core_tier.
  std::vector<int> pod_of_node;
  std::size_t num_pods = 0;
  /// Member nodes of each pod, ascending node id. Pods are numbered by
  /// their smallest member node id, so the numbering is reproducible.
  std::vector<std::vector<NodeId>> pod_nodes;
  /// Links with exactly one core endpoint, ascending link id.
  std::vector<LinkId> boundary_links;
  /// The tier threshold the partition was extracted with.
  int core_tier = 3;

  [[nodiscard]] bool is_core(NodeId n) const {
    return pod_of_node.at(n) == kCore;
  }
};

/// Extracts the pod partition of `graph`: nodes with tier >= core_tier are
/// the core; pods are the connected components of the subgraph induced by
/// the remaining nodes. Core-to-core links are rejected (multi-stage cores
/// have no single-gateway collapse) with std::invalid_argument, as is a
/// graph with no non-core nodes.
[[nodiscard]] PodPartition make_pod_partition(const Graph& graph,
                                              int core_tier = 3);

/// One shard's local topology (see the file comment for the model).
struct ShardTopology {
  Graph graph;
  /// Global node id -> shard-local id (kInvalidNode when not in the shard).
  std::vector<NodeId> local_of_global;
  /// Shard-local node id -> global id (the gateway maps to kInvalidNode).
  std::vector<NodeId> global_of_local;
  /// Global link id -> shard-local id for intra-shard links (kInvalidLink
  /// for links of other shards, boundary links, and core links).
  std::vector<LinkId> local_link_of_global;
  /// The collapsed-core gateway node, kInvalidNode in the verbatim-copy
  /// (single-shard) configuration.
  NodeId gateway = kInvalidNode;

  /// One aggregate link per aggregation switch with core uplinks.
  struct GatewayLink {
    LinkId local_link = kInvalidLink;  ///< agg <-> gateway link in `graph`
    NodeId global_agg = kInvalidNode;  ///< the aggregation switch, global id
    /// The global boundary links this link aggregates, ascending link id.
    std::vector<LinkId> global_links;
    double total_capacity_bps = 0.0;  ///< sum over global_links
  };
  std::vector<GatewayLink> gateway_links;

  [[nodiscard]] bool verbatim() const { return gateway == kInvalidNode; }
};

/// Builds shard `shard`'s local topology under the pod-to-shard assignment
/// `shard_of_pod`. When every pod maps to `shard` the global graph is
/// copied verbatim (ids preserved, no gateway). Otherwise the shard's pods
/// are copied in ascending global id order (nodes, then intra-pod links)
/// and the core collapses into a gateway: one agg <-> gateway link per
/// aggregation switch, carrying the sum of that switch's core-uplink
/// capacities, appended in ascending agg id order.
[[nodiscard]] ShardTopology build_shard_topology(
    const Graph& graph, const PodPartition& partition,
    const std::vector<int>& shard_of_pod, int shard);

/// Contiguous pod-to-shard assignment: `num_pods` pods split into
/// `num_shards` nearly equal consecutive blocks (front blocks get the
/// remainder). Throws std::invalid_argument when num_shards is zero or
/// exceeds num_pods.
[[nodiscard]] std::vector<int> assign_pods_contiguous(std::size_t num_pods,
                                                      std::size_t num_shards);

}  // namespace netpp
