// Explicit network topology graph.
//
// Where the core analysis uses closed-form switch *counts*, the simulators
// (§4 mechanisms) need a real graph: hosts, switches, optical circuit
// switches, and capacitated links. Links are full-duplex; the flow simulator
// accounts each direction separately.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "netpp/units.h"

namespace netpp {

using NodeId = std::uint32_t;
using LinkId = std::uint32_t;

inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);
inline constexpr LinkId kInvalidLink = static_cast<LinkId>(-1);

enum class NodeKind : std::uint8_t {
  kHost,
  kSwitch,
  kOpticalCircuitSwitch,
};

struct Node {
  NodeId id = kInvalidNode;
  NodeKind kind = NodeKind::kHost;
  /// Tier in a layered topology (0 = host, 1 = ToR/leaf, 2 = agg/spine, ...).
  int tier = 0;
  std::string name;
};

struct Link {
  LinkId id = kInvalidLink;
  NodeId a = kInvalidNode;
  NodeId b = kInvalidNode;
  Gbps capacity{};
  bool optical = false;  ///< inter-switch optical link (carries transceivers)

  /// The endpoint that is not `from` (precondition: `from` is an endpoint).
  [[nodiscard]] NodeId other(NodeId from) const { return from == a ? b : a; }
};

/// An adjacency entry: the link and the neighbor it reaches.
struct Adjacency {
  LinkId link = kInvalidLink;
  NodeId neighbor = kInvalidNode;
};

class Graph {
 public:
  NodeId add_node(NodeKind kind, int tier = 0, std::string name = {});
  LinkId add_link(NodeId a, NodeId b, Gbps capacity, bool optical = false);

  [[nodiscard]] std::size_t num_nodes() const { return nodes_.size(); }
  [[nodiscard]] std::size_t num_links() const { return links_.size(); }

  [[nodiscard]] const Node& node(NodeId id) const { return nodes_.at(id); }
  [[nodiscard]] const Link& link(LinkId id) const { return links_.at(id); }
  [[nodiscard]] const std::vector<Node>& nodes() const { return nodes_; }
  [[nodiscard]] const std::vector<Link>& links() const { return links_; }

  [[nodiscard]] std::span<const Adjacency> neighbors(NodeId id) const {
    return adjacency_.at(id);
  }
  [[nodiscard]] std::size_t degree(NodeId id) const {
    return adjacency_.at(id).size();
  }

  /// All node ids of a given kind (convenience for tests/generators).
  [[nodiscard]] std::vector<NodeId> nodes_of_kind(NodeKind kind) const;

  /// All node ids at a given tier.
  [[nodiscard]] std::vector<NodeId> nodes_at_tier(int tier) const;

 private:
  std::vector<Node> nodes_;
  std::vector<Link> links_;
  std::vector<std::vector<Adjacency>> adjacency_;
};

}  // namespace netpp
