// Routing over explicit topologies: BFS shortest paths, ECMP path
// enumeration, and deterministic flow-to-path assignment by hash.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "netpp/topo/graph.h"

namespace netpp {

/// A path as the sequence of links from src to dst (nodes are implied).
struct Path {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  std::vector<LinkId> links;

  [[nodiscard]] std::size_t hops() const { return links.size(); }
  [[nodiscard]] bool empty() const { return links.empty(); }

  /// The node sequence src, ..., dst implied by the links.
  [[nodiscard]] std::vector<NodeId> nodes(const Graph& g) const;
};

/// Why a route lookup produced no usable path.
enum class RouteStatus : std::uint8_t {
  kOk,               ///< at least one path found
  kInvalidEndpoint,  ///< src or dst is not a node of the graph (bad input)
  kDisconnected,     ///< endpoints exist but no enabled path connects them
};

/// Structured routing outcome. Callers on the fault path need to tell "bad
/// input" apart from "disconnected by failure" without catching exceptions.
struct RouteResult {
  RouteStatus status = RouteStatus::kDisconnected;
  std::vector<Path> paths;

  [[nodiscard]] bool ok() const { return status == RouteStatus::kOk; }
};

/// Routing engine with optional link/node masks so that mechanisms can
/// "turn off" switches or links and re-route around them.
class Router {
 public:
  explicit Router(const Graph& graph);

  /// Marks a node usable/unusable (unusable nodes cannot be transited;
  /// endpoints are always allowed).
  void set_node_enabled(NodeId id, bool enabled);
  /// Marks a link usable/unusable.
  void set_link_enabled(LinkId id, bool enabled);

  [[nodiscard]] bool node_enabled(NodeId id) const {
    return node_enabled_.at(id);
  }
  [[nodiscard]] bool link_enabled(LinkId id) const {
    return link_enabled_.at(id);
  }

  /// One shortest path (BFS, hop count), or nullopt if disconnected.
  [[nodiscard]] std::optional<Path> shortest_path(NodeId src,
                                                  NodeId dst) const;

  /// All shortest paths up to `max_paths` (ECMP set), deterministic order.
  [[nodiscard]] std::vector<Path> ecmp_paths(NodeId src, NodeId dst,
                                             std::size_t max_paths = 16) const;

  /// Non-throwing variant of `ecmp_paths`: reports invalid endpoints and
  /// disconnection as distinct statuses instead of exception vs empty vector.
  [[nodiscard]] RouteResult find_paths(NodeId src, NodeId dst,
                                       std::size_t max_paths = 16) const;

  /// Whether any enabled path connects src and dst (false for invalid ids).
  [[nodiscard]] bool connected(NodeId src, NodeId dst) const;

  /// Picks one of the ECMP paths by hashing (src, dst, flow_id) — the
  /// standard 5-tuple-hash stand-in. Returns nullopt if disconnected.
  [[nodiscard]] std::optional<Path> ecmp_route(NodeId src, NodeId dst,
                                               std::uint64_t flow_id) const;

  [[nodiscard]] const Graph& graph() const { return graph_; }

 private:
  const Graph& graph_;
  std::vector<bool> node_enabled_;
  std::vector<bool> link_enabled_;
};

}  // namespace netpp
