// Routing over explicit topologies: BFS shortest paths, ECMP path
// enumeration, and deterministic flow-to-path assignment by hash.
#pragma once

#include <cassert>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <vector>

#include "netpp/topo/graph.h"

namespace netpp {

/// A path as the sequence of links from src to dst (nodes are implied).
struct Path {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  std::vector<LinkId> links;

  [[nodiscard]] std::size_t hops() const { return links.size(); }
  [[nodiscard]] bool empty() const { return links.empty(); }

  /// The node sequence src, ..., dst implied by the links.
  [[nodiscard]] std::vector<NodeId> nodes(const Graph& g) const;
};

/// Why a route lookup produced no usable path.
enum class RouteStatus : std::uint8_t {
  kOk,               ///< at least one path found
  kInvalidEndpoint,  ///< src or dst is not a node of the graph (bad input)
  kDisconnected,     ///< endpoints exist but no enabled path connects them
};

/// Structured routing outcome. Callers on the fault path need to tell "bad
/// input" apart from "disconnected by failure" without catching exceptions.
struct RouteResult {
  RouteStatus status = RouteStatus::kDisconnected;
  std::vector<Path> paths;

  [[nodiscard]] bool ok() const { return status == RouteStatus::kOk; }
};

/// SplitMix-style avalanche over (src, dst, flow_id) — the standard
/// 5-tuple-hash stand-in. Shared by `Router::ecmp_route` and
/// `RouteCache::route` so cached and uncached selection pick the same path.
[[nodiscard]] inline std::uint64_t ecmp_flow_hash(NodeId src, NodeId dst,
                                                  std::uint64_t flow_id) {
  std::uint64_t h = flow_id;
  h ^= (static_cast<std::uint64_t>(src) << 32) | dst;
  h += 0x9e3779b97f4a7c15ULL;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return h;
}

/// Routing engine with optional link/node masks so that mechanisms can
/// "turn off" switches or links and re-route around them.
///
/// Queries reuse an internal scratch workspace (BFS distances/queue), so
/// repeated lookups allocate nothing after warm-up. The flip side: a single
/// Router must not be queried from multiple threads concurrently — give each
/// thread (or each sweep scenario) its own Router, which is what SweepRunner
/// scenarios do anyway.
class Router {
 public:
  explicit Router(const Graph& graph);

  /// Marks a node usable/unusable (unusable nodes cannot be transited;
  /// endpoints are always allowed). Bumps `topology_epoch()` on change.
  void set_node_enabled(NodeId id, bool enabled);
  /// Marks a link usable/unusable. Bumps `topology_epoch()` on change.
  void set_link_enabled(LinkId id, bool enabled);

  [[nodiscard]] bool node_enabled(NodeId id) const {
    return node_enabled_.at(id) != 0;
  }
  [[nodiscard]] bool link_enabled(LinkId id) const {
    return link_enabled_.at(id) != 0;
  }

  /// Unchecked (assert-only) mask accessors for hot loops that already
  /// guarantee the id is in range (BFS inner loops, path re-validation).
  [[nodiscard]] bool node_enabled_unchecked(NodeId id) const {
    assert(id < node_enabled_.size());
    return node_enabled_[id] != 0;
  }
  [[nodiscard]] bool link_enabled_unchecked(LinkId id) const {
    assert(id < link_enabled_.size());
    return link_enabled_[id] != 0;
  }

  /// Monotonic counter bumped every time an enable mask actually changes.
  /// Cached routing state (RouteCache) self-invalidates by comparing epochs
  /// instead of being flushed eagerly on every toggle.
  [[nodiscard]] std::uint64_t topology_epoch() const { return epoch_; }

  /// Raw enable masks (snapshot support).
  [[nodiscard]] const std::vector<std::uint8_t>& node_mask() const {
    return node_enabled_;
  }
  [[nodiscard]] const std::vector<std::uint8_t>& link_mask() const {
    return link_enabled_;
  }

  /// Snapshot restore: overwrites both masks and the epoch verbatim. Mask
  /// sizes must match this router's graph.
  void restore_enablement(const std::vector<std::uint8_t>& nodes,
                          const std::vector<std::uint8_t>& links,
                          std::uint64_t epoch) {
    if (nodes.size() != node_enabled_.size() ||
        links.size() != link_enabled_.size()) {
      throw std::invalid_argument(
          "Router: restored mask sizes do not match the graph");
    }
    node_enabled_ = nodes;
    link_enabled_ = links;
    epoch_ = epoch;
  }

  /// One shortest path (BFS, hop count), or nullopt if disconnected.
  /// Direct early-exit BFS: stops the moment dst is labeled, then walks the
  /// first predecessor chain back — no shortest-path-DAG bookkeeping. The
  /// returned path is identical to `ecmp_paths(src, dst, 1).front()`.
  [[nodiscard]] std::optional<Path> shortest_path(NodeId src,
                                                  NodeId dst) const;

  /// All shortest paths up to `max_paths` (ECMP set), deterministic order.
  [[nodiscard]] std::vector<Path> ecmp_paths(NodeId src, NodeId dst,
                                             std::size_t max_paths = 16) const;

  /// Non-throwing variant of `ecmp_paths`: reports invalid endpoints and
  /// disconnection as distinct statuses instead of exception vs empty vector.
  [[nodiscard]] RouteResult find_paths(NodeId src, NodeId dst,
                                       std::size_t max_paths = 16) const;

  /// Whether any enabled path connects src and dst (false for invalid ids).
  [[nodiscard]] bool connected(NodeId src, NodeId dst) const;

  /// Picks one of the ECMP paths by hashing (src, dst, flow_id) — the
  /// standard 5-tuple-hash stand-in. Returns nullopt if disconnected.
  [[nodiscard]] std::optional<Path> ecmp_route(
      NodeId src, NodeId dst, std::uint64_t flow_id,
      std::size_t max_paths = 16) const;

  [[nodiscard]] const Graph& graph() const { return graph_; }

 private:
  /// BFS from src; fills dist_ for every node at distance < dist_[dst] (plus
  /// dst itself) and stops there — nodes beyond the dst level can never sit
  /// on a shortest path. When `stop_at_dst` additionally stops the instant
  /// dst is labeled (enough for reachability / single-path walkback).
  /// Returns false when dst was not reached.
  bool bfs(NodeId src, NodeId dst, bool stop_at_dst) const;

  const Graph& graph_;
  // uint8 instead of vector<bool>: the BFS inner loop reads these per edge,
  // and byte loads beat bit extraction there.
  std::vector<std::uint8_t> node_enabled_;
  std::vector<std::uint8_t> link_enabled_;
  std::uint64_t epoch_ = 0;

  // Scratch workspace (see class comment): reused across queries so the
  // steady state allocates nothing.
  mutable std::vector<std::uint32_t> dist_;
  mutable std::vector<NodeId> queue_;   // flat FIFO, head index walks forward
  mutable std::vector<LinkId> stack_;   // DFS link stack for enumeration
};

}  // namespace netpp
