// Whole-cluster power model (paper §2.1, §2.3, §3.1).
//
// Composes the device catalog, the fat-tree sizing model, and the phase
// workload model into per-phase and average power figures for an ML training
// cluster: N GPUs, each with a B-Gbps NIC, connected by a full-bisection fat
// tree of 51.2 Tbps switches, with optical transceivers on every
// inter-switch link.
#pragma once

#include <string>

#include "netpp/power/catalog.h"
#include "netpp/power/envelope.h"
#include "netpp/topomodel/fattree.h"
#include "netpp/units.h"

namespace netpp {

/// Which phase of the iteration (paper Fig. 1) power is evaluated for.
enum class Phase {
  kComputation,    ///< GPUs at max, network idle
  kCommunication,  ///< GPUs idle, network at max
};

/// Cluster parameters; defaults are the paper's baseline (§2.1).
struct ClusterConfig {
  double num_gpus = 15000.0;
  Gbps bandwidth_per_gpu{400.0};
  /// Fraction of the iteration spent in the communication phase.
  double communication_ratio = 0.10;
  /// Network power proportionality (applies to switches, NICs, and
  /// transceivers alike). The paper's baseline is 10%.
  double network_proportionality = 0.10;
  /// Device catalog; must outlive the ClusterModel. Null selects the paper
  /// baseline catalog.
  const DeviceCatalog* catalog = nullptr;
};

/// Count and max power of each network component class.
struct NetworkInventory {
  FatTreeSize tree;         ///< switch/port/link accounting
  double nics = 0.0;        ///< one per GPU
  double transceivers = 0.0;

  Watts switch_power{};      ///< total across all switches, at max
  Watts nic_power{};         ///< total across all NICs, at max
  Watts transceiver_power{};  ///< total across all transceivers, at max

  [[nodiscard]] Watts max_power() const {
    return switch_power + nic_power + transceiver_power;
  }
};

/// Power attributed to each component class at one instant. Devices that are
/// idle contribute to `idle` rather than to their own bucket, matching the
/// categories of the paper's Fig. 2a.
struct PowerBreakdown {
  Watts gpu{};          ///< GPUs + server share, when computing
  Watts switches{};     ///< switches, when communicating
  Watts nics{};         ///< NICs, when communicating
  Watts transceivers{};  ///< transceivers, when communicating
  Watts idle{};         ///< idle draw of whichever side is inactive

  [[nodiscard]] Watts total() const {
    return gpu + switches + nics + transceivers + idle;
  }
  [[nodiscard]] Watts network_active() const {
    return switches + nics + transceivers;
  }
};

/// The paper's cluster-level what-if model.
class ClusterModel {
 public:
  explicit ClusterModel(ClusterConfig config);

  [[nodiscard]] const ClusterConfig& config() const { return config_; }
  [[nodiscard]] const DeviceCatalog& catalog() const { return *catalog_; }

  /// Network component counts and max powers.
  [[nodiscard]] const NetworkInventory& network() const { return inventory_; }

  /// Aggregate two-state envelope of the whole network side at the
  /// configured proportionality.
  [[nodiscard]] PowerEnvelope network_envelope() const { return network_env_; }

  /// Aggregate two-state envelope of all GPUs + server shares.
  [[nodiscard]] PowerEnvelope compute_envelope() const { return compute_env_; }

  /// Instantaneous power during one phase, split by component (Fig. 2).
  [[nodiscard]] PowerBreakdown phase_power(Phase phase) const;

  /// Duty-cycle-weighted average over one iteration (Fig. 2 "Average").
  [[nodiscard]] PowerBreakdown average_power() const;

  /// Average total power (compute + network) over one iteration.
  [[nodiscard]] Watts average_total_power() const;

  /// Peak total power (max over the two phases); relevant for power
  /// provisioning discussions (§3.2 "flattening of the peak power demand").
  [[nodiscard]] Watts peak_total_power() const;

  /// Network share of the average total power (~12% for the baseline).
  [[nodiscard]] double network_share_of_average() const;

  /// Energy efficiency of the network side (~11% for the baseline, §3.1):
  /// ideally-proportional energy / actual energy over one iteration.
  [[nodiscard]] double network_energy_efficiency() const;

  /// Energy efficiency of the compute side (~98% for the baseline).
  [[nodiscard]] double compute_energy_efficiency() const;

  /// Convenience: same cluster with a different network proportionality.
  [[nodiscard]] ClusterModel with_network_proportionality(double p) const;

 private:
  ClusterConfig config_;
  const DeviceCatalog* catalog_;
  NetworkInventory inventory_;
  PowerEnvelope network_env_;
  PowerEnvelope compute_env_;
};

}  // namespace netpp
