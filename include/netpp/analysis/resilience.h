// Resilience reporting: how well did the fabric carry traffic through a
// fault schedule, and what did the degraded-mode policy pay for it?
//
// Metrics (all computed from observable simulator/controller state):
//
//   availability            — fraction of flow-lifetime during which flows
//                             could make progress: 1 - (stranded
//                             flow-seconds / total flow-seconds). 1.0 means
//                             no flow ever lacked a path.
//   stranded demand         — integral of (remaining flow volume x time
//                             spent stranded), in gigabit-seconds: how much
//                             demand sat unserviceable, for how long.
//   recovery time p99/mean  — distribution of how long stranded flows
//                             waited for a path (emergency wake latency and
//                             repair times both land here).
//   energy delta            — powered-switch energy vs the always-all-on
//                             fabric; negative means the policy still saved
//                             energy despite waking capacity for faults.
#pragma once

#include <cstdint>
#include <vector>

#include "netpp/units.h"

namespace netpp {

/// Raw observations of one faulty run (see bench_fault_resilience for the
/// canonical way to fill it from FlowSimulator + DegradedModeController).
struct ResilienceInput {
  std::size_t flows_submitted = 0;
  std::size_t flows_completed = 0;
  /// Still stranded when the run ended (these never completed).
  std::size_t flows_stranded_at_end = 0;
  std::uint64_t faults_injected = 0;
  std::uint64_t flows_rerouted = 0;
  std::uint64_t strand_events = 0;
  /// Integral of (remaining bits x stranded time), bit-seconds.
  double stranded_bit_seconds = 0.0;
  /// Sum of all completed flows' completion times, seconds (the denominator
  /// of availability; includes time spent stranded).
  double flow_seconds = 0.0;
  /// Per-resume stranded durations, seconds (unsorted ok).
  std::vector<double> strand_durations;
  /// Integral of the powered-switch count over the run, switch-seconds.
  double powered_switch_seconds = 0.0;
  /// Same integral if every switch stayed on: num_switches x duration.
  double all_on_switch_seconds = 0.0;
  /// Average per-switch draw used to convert switch-seconds to energy.
  Watts switch_power{};
  Seconds duration{};
};

struct ResilienceReport {
  double availability = 1.0;
  double stranded_demand_gbit_seconds = 0.0;
  Seconds mean_recovery{};
  Seconds p99_recovery{};
  /// Fraction of submitted flows that completed.
  double completion_rate = 1.0;
  Joules energy{};
  Joules all_on_energy{};
  /// energy / all_on_energy - 1: negative = saved vs all-on despite faults.
  double energy_delta = 0.0;
  std::uint64_t faults_injected = 0;
  std::uint64_t flows_rerouted = 0;
  std::uint64_t strand_events = 0;
};

/// Linear-interpolated quantile of `values` (q in [0, 1]); 0 when empty.
[[nodiscard]] double sample_quantile(std::vector<double> values, double q);

[[nodiscard]] ResilienceReport build_resilience_report(
    const ResilienceInput& input);

}  // namespace netpp
