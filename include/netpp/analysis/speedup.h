// Performance-speedup analysis under a fixed power budget (paper §3.3,
// Figures 3 and 4).
//
// Data centers are power-limited: every watt the network stops wasting can
// buy more GPUs. Given a bandwidth and a network proportionality, the solver
// finds the GPU count whose cluster draws exactly the fixed budget — the
// network is re-sized for that GPU count, so GPU count and network power are
// coupled and the solution is found by bisection (cluster average power is
// monotone increasing in the GPU count).
//
// Budget semantics: the budget is the *average* power of the baseline
// cluster. This reproduces the paper's qualitative results (see DESIGN.md):
// at poor proportionality lower bandwidths win; 200 G beats 400 G even at
// 50% proportionality; 800/1600 G win only above ~90%.
//
// Two scenarios:
//  - Fixed workload (Fig. 3): communication time scales with 1/bandwidth;
//    speedups are relative to the baseline cluster (400 G @ 10%).
//  - Fixed communication ratio (Fig. 4): the communication volume grows with
//    bandwidth; speedups are relative to zero proportionality at the *same*
//    bandwidth.
#pragma once

#include <optional>
#include <vector>

#include "netpp/cluster/cluster.h"
#include "netpp/units.h"
#include "netpp/workload/phase_model.h"

namespace netpp {

/// Scenario selector for the §3.3 analysis.
enum class BudgetScenario {
  kFixedWorkload,    ///< Fig. 3
  kFixedCommRatio,   ///< Fig. 4
};

/// Result of sizing one cluster under the power budget.
struct BudgetedCluster {
  double num_gpus = 0.0;
  Gbps bandwidth{};
  double network_proportionality = 0.0;
  IterationProfile iteration{};
  Watts average_power{};  ///< should equal the budget (up to tolerance)
};

/// Fixed-power-budget cluster solver.
class BudgetSolver {
 public:
  /// `base` supplies the catalog and is the cluster whose configuration the
  /// baseline/budget is derived from; `workload` anchors the scaling rules.
  BudgetSolver(ClusterConfig base, WorkloadModel workload);

  /// The paper's setup: baseline cluster §2.1, normalized workload.
  static BudgetSolver paper_baseline();

  /// The fixed budget: average power of the baseline cluster.
  [[nodiscard]] Watts budget() const { return budget_; }

  [[nodiscard]] const ClusterConfig& base_config() const { return base_; }
  [[nodiscard]] const WorkloadModel& workload() const { return workload_; }

  /// Average power of a candidate cluster with `gpus` GPUs in the given
  /// scenario (exposed for testing; phase durations set the duty cycle).
  [[nodiscard]] Watts average_power(double gpus, Gbps bandwidth,
                                    double proportionality,
                                    BudgetScenario scenario) const;

  /// Solves for the GPU count that exactly consumes the budget.
  [[nodiscard]] BudgetedCluster solve(Gbps bandwidth, double proportionality,
                                      BudgetScenario scenario) const;

  /// Iteration-time speedup (in fraction, +0.05 == 5% faster) of the solved
  /// cluster relative to `reference_iteration_time`.
  [[nodiscard]] double speedup_vs(const BudgetedCluster& cluster,
                                  Seconds reference_iteration_time) const;

 private:
  ClusterConfig base_;
  WorkloadModel workload_;
  Watts budget_{};
};

/// One point of a Fig. 3 / Fig. 4 series.
struct SpeedupPoint {
  double proportionality = 0.0;
  double speedup = 0.0;  ///< fraction; paper plots percent
  double num_gpus = 0.0;
};

/// One curve (bandwidth) of Fig. 3 / Fig. 4.
struct SpeedupSeries {
  Gbps bandwidth{};
  std::vector<SpeedupPoint> points;
};

/// Fig. 3: fixed workload, speedups vs the baseline cluster (400 G @ 10%).
[[nodiscard]] std::vector<SpeedupSeries> fixed_workload_speedup(
    const BudgetSolver& solver, const std::vector<Gbps>& bandwidths,
    const std::vector<double>& proportionalities);

/// Fig. 4: fixed communication ratio, speedups vs zero proportionality at
/// the same bandwidth.
[[nodiscard]] std::vector<SpeedupSeries> fixed_ratio_speedup(
    const BudgetSolver& solver, const std::vector<Gbps>& bandwidths,
    const std::vector<double>& proportionalities);

/// The crossover the paper's Fig. 3 narrates ("800 and 1600 Gbps ... only
/// at very high proportionality values"): the minimum network
/// proportionality at which `bandwidth` matches the baseline cluster's
/// iteration time in the fixed-workload scenario. Returns nullopt if the
/// bandwidth cannot match the baseline even at 100% proportionality, and
/// 0.0 if it already matches at zero.
[[nodiscard]] std::optional<double> proportionality_to_match_baseline(
    const BudgetSolver& solver, Gbps bandwidth);

}  // namespace netpp
