// Power-savings analysis (paper §3.2, Table 3) and the operating-cost model
// used in the text of §3.2 (electricity + cooling savings in $/year).
#pragma once

#include <vector>

#include "netpp/cluster/cluster.h"
#include "netpp/units.h"

namespace netpp {

/// One cell of Table 3.
struct SavingsCell {
  Gbps bandwidth{};
  double proportionality = 0.0;
  /// Fraction of total average cluster power saved vs the baseline
  /// proportionality at the same bandwidth (Table 3 reports this in %).
  double savings_fraction = 0.0;
  /// Absolute average power reduction.
  Watts absolute_savings{};
};

/// One row of Table 3: a bandwidth and its savings across proportionalities.
struct SavingsRow {
  Gbps bandwidth{};
  std::vector<SavingsCell> cells;
};

/// Computes Table 3: relative total-cluster power savings when the network
/// proportionality improves from `baseline_proportionality` (10% in the
/// paper) to each value in `proportionalities`, for each bandwidth.
/// All other cluster parameters come from `base` (GPU count, ratio, catalog).
[[nodiscard]] std::vector<SavingsRow> savings_table(
    const ClusterConfig& base, const std::vector<Gbps>& bandwidths,
    const std::vector<double>& proportionalities,
    double baseline_proportionality = 0.10);

/// Single savings cell (also usable standalone).
[[nodiscard]] SavingsCell savings_at(const ClusterConfig& base, Gbps bandwidth,
                                     double proportionality,
                                     double baseline_proportionality = 0.10);

/// Dollar and carbon value of an average power reduction (§3.2):
/// electricity at the US commercial rate, the induced cooling-power
/// reduction, and the avoided CO2 (the paper's "sustainable digital
/// future" framing, quantified).
class CostModel {
 public:
  struct Config {
    double usd_per_kwh = 0.13;       ///< US commercial average [11]
    double cooling_overhead = 0.30;  ///< cooling ~30% of cluster power [35]
    double hours_per_year = 24.0 * 365.0;
    /// Grid carbon intensity; ~369 gCO2e/kWh is the 2023 US average.
    double grams_co2_per_kwh = 369.0;
  };

  CostModel() : CostModel(Config{}) {}
  explicit CostModel(Config config) : config_(config) {}

  /// Annual electricity-bill reduction for an average power reduction
  /// (excluding cooling).
  [[nodiscard]] Dollars annual_electricity_savings(Watts reduction) const;

  /// Additional annual savings from reduced cooling load.
  [[nodiscard]] Dollars annual_cooling_savings(Watts reduction) const;

  /// Electricity + cooling.
  [[nodiscard]] Dollars annual_total_savings(Watts reduction) const;

  /// Avoided CO2 emissions per year, in metric tons, including the cooling
  /// share.
  [[nodiscard]] double annual_co2_savings_tons(Watts reduction) const;

  [[nodiscard]] const Config& config() const { return config_; }

 private:
  Config config_;
};

/// Operating-cost framing of one mechanism's measured energy savings: the
/// common currency the composed §4 stack is reported in (netpp_cli mech).
struct MechanismValue {
  Watts average_reduction{};  ///< (baseline - actual) / duration
  double savings_fraction = 0.0;
  Dollars annual_savings{};  ///< electricity + cooling, at this reduction
  double annual_co2_tons = 0.0;
};

/// Converts a (baseline, actual) energy pair over `duration` — e.g. from a
/// MechanismReport — into its sustained annual dollar and carbon value.
/// `duration` must be positive.
[[nodiscard]] MechanismValue mechanism_value(
    Joules baseline, Joules actual, Seconds duration,
    const CostModel& cost = CostModel{});

}  // namespace netpp
