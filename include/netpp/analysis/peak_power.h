// Peak-power analysis (paper §3.2: "There would be other benefits, such as
// the flattening of the peak power demand, which reduces the strain on the
// power delivery system, though those are harder to quantify").
//
// We quantify it: a cluster's peak draw occurs during the computation phase
// (all GPUs at max plus the network's *idle* draw). Improving network
// proportionality lowers that idle draw one-for-one, so every point of
// proportionality flattens the provisioned peak — and conversely shrinks
// the peak-to-average ratio the power delivery system must be built for.
#pragma once

#include <vector>

#include "netpp/cluster/cluster.h"
#include "netpp/units.h"

namespace netpp {

struct PeakPowerPoint {
  double proportionality = 0.0;
  Watts peak{};
  Watts average{};
  /// peak / average — the provisioning headroom the facility must carry.
  double peak_to_average = 0.0;
  /// Fraction of peak power shaved vs the baseline proportionality.
  double peak_reduction = 0.0;
};

/// Sweeps network proportionality and reports peak/average/provisioning
/// figures relative to `base`'s configured proportionality.
[[nodiscard]] std::vector<PeakPowerPoint> peak_power_sweep(
    const ClusterConfig& base, const std::vector<double>& proportionalities);

/// GPUs that the shaved peak headroom could host at the same provisioned
/// power (each extra GPU adds its max power plus the marginal network).
/// A simpler, peak-based counterpart of the §3.3 budget solver.
[[nodiscard]] double extra_gpus_from_peak_headroom(const ClusterConfig& base,
                                                   double proportionality);

}  // namespace netpp
