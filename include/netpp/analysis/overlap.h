// Compute/communication overlap extension (paper §3.4).
//
// The main analysis assumes no overlap: the network idles during the whole
// computation phase. §3.4 notes that "if we relax our assumption and allow
// computation and communication to overlap during training, as is done in
// other training schemes, there is still underutilization".
//
// This model splits one iteration into three intervals:
//
//   compute-only:  Tc - o*Tm   (GPUs max, network idle)
//   overlap:       o*Tm        (GPUs max AND network max)
//   comm-only:     (1-o)*Tm    (GPUs idle, network max)
//
// where o in [0,1] is the fraction of the communication hidden behind
// computation. Overlap shortens the iteration (faster training) and reduces
// the network's idle time — but the network still idles during most of the
// compute phase, so proportionality still pays. The analysis quantifies how
// the Table-3 savings shrink as overlap grows.
#pragma once

#include "netpp/cluster/cluster.h"
#include "netpp/units.h"
#include "netpp/workload/phase_model.h"

namespace netpp {

/// One iteration under partial overlap.
struct OverlappedIteration {
  Seconds compute_only{};
  Seconds overlap{};
  Seconds comm_only{};

  [[nodiscard]] constexpr Seconds iteration_time() const {
    return compute_only + overlap + comm_only;
  }
  /// Fraction of the iteration during which the network is active.
  [[nodiscard]] constexpr double network_active_fraction() const {
    const double t = iteration_time().value();
    return t > 0.0 ? (overlap + comm_only).value() / t : 0.0;
  }
  /// Fraction of the iteration during which the GPUs are active.
  [[nodiscard]] constexpr double compute_active_fraction() const {
    const double t = iteration_time().value();
    return t > 0.0 ? (compute_only + overlap).value() / t : 0.0;
  }
};

class OverlapModel {
 public:
  /// `profile` gives the non-overlapped phase durations (paper Fig. 1);
  /// `overlap_fraction` in [0, 1] is the share of communication hidden
  /// behind computation. Requires overlap*comm <= compute (cannot hide more
  /// communication than there is computation).
  OverlapModel(IterationProfile profile, double overlap_fraction);

  [[nodiscard]] const OverlappedIteration& iteration() const {
    return iteration_;
  }
  [[nodiscard]] double overlap_fraction() const { return overlap_; }

  /// Speedup of the iteration vs the non-overlapped schedule.
  [[nodiscard]] double iteration_speedup() const;

  /// Average total power of `cluster` under this schedule (the cluster's
  /// own communication_ratio is ignored; this schedule governs duty).
  [[nodiscard]] Watts average_power(const ClusterModel& cluster) const;

  /// Network energy efficiency under this schedule (paper §3.1 metric).
  [[nodiscard]] double network_efficiency(const ClusterModel& cluster) const;

  /// Fraction of total average power saved when the network proportionality
  /// improves from the cluster's configured value to `proportionality`.
  [[nodiscard]] double savings_fraction(const ClusterModel& cluster,
                                        double proportionality) const;

 private:
  IterationProfile profile_;
  double overlap_;
  OverlappedIteration iteration_;
};

}  // namespace netpp
