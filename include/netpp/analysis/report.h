// Minimal tabular/series reporting used by the benchmark binaries and
// examples to print paper-style tables and figure series, and to dump CSV
// for external plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace netpp {

/// A rectangular table of strings with a header row, rendered either as an
/// aligned ASCII table or as CSV.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  [[nodiscard]] std::size_t num_rows() const { return rows_.size(); }
  [[nodiscard]] std::size_t num_columns() const { return header_.size(); }
  [[nodiscard]] const std::vector<std::string>& header() const {
    return header_;
  }
  [[nodiscard]] const std::vector<std::string>& row(std::size_t i) const {
    return rows_.at(i);
  }

  /// Aligned, boxed ASCII rendering.
  [[nodiscard]] std::string to_ascii() const;

  /// RFC-4180-ish CSV (quotes fields containing commas/quotes/newlines).
  [[nodiscard]] std::string to_csv() const;

  void write_csv(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` decimal places.
[[nodiscard]] std::string fmt(double value, int digits = 2);

/// Formats a fraction as a percentage string, e.g. 0.047 -> "4.7%".
[[nodiscard]] std::string fmt_percent(double fraction, int digits = 1);

}  // namespace netpp
