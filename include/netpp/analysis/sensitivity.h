// One-at-a-time sensitivity analysis over the paper's modeling assumptions.
//
// The paper's headline numbers (network = 12% of cluster power, 11%
// efficiency, ~5% savings at 50% proportionality, ~9% at 85%) rest on a
// handful of assumptions: the compute-side proportionality (85%), the
// communication ratio (10%), datasheet device powers, and network-sizing
// details. This module perturbs each assumption over a plausible range and
// reports how the headlines move — the robustness check a reviewer would
// ask for.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "netpp/cluster/cluster.h"

namespace netpp {

/// The paper's headline metrics for one cluster configuration.
struct HeadlineMetrics {
  double network_share = 0.0;        ///< network / total average power
  double network_efficiency = 0.0;   ///< §3.1 metric
  double savings_at_50 = 0.0;        ///< vs the config's own baseline prop
  double savings_at_85 = 0.0;
};

/// Computes the headline metrics for a configuration (savings relative to
/// the configuration's own network_proportionality).
[[nodiscard]] HeadlineMetrics headline_metrics(const ClusterConfig& config);

/// One row of a sensitivity sweep: a parameter, the value it took, and the
/// metrics under it.
struct SensitivityPoint {
  std::string parameter;
  double value = 0.0;
  HeadlineMetrics metrics;
};

/// A named parameter sweep: applies `set(value)` to a copy of the base
/// config (possibly with a derived catalog) and evaluates the headlines.
struct SensitivityParameter {
  std::string name;
  std::vector<double> values;
  /// Returns the perturbed config for one value. The function owns any
  /// derived catalog it needs (see make_paper_sensitivity_suite).
  std::function<ClusterConfig(double)> configure;
};

/// Runs all parameters of a suite against the metrics.
[[nodiscard]] std::vector<SensitivityPoint> run_sensitivity(
    const std::vector<SensitivityParameter>& suite);

/// The paper's assumption suite:
///   - compute proportionality 0.70..0.95 (paper: 0.85)
///   - communication ratio 0.05..0.30 (paper: 0.10)
///   - switch max power 525..975 W (paper: 750 W, +-30%)
///   - NIC power scale 0.7..1.3x (Table 2 values)
///   - transceiver power scale 0.7..1.3x
/// Catalogs derived for the sweeps are kept alive by the returned suite.
[[nodiscard]] std::vector<SensitivityParameter> make_paper_sensitivity_suite();

}  // namespace netpp
