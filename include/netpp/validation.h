// Shared input-validation helpers with the repo-wide "TypeName: constraint"
// diagnostic convention.
//
// Every validating entry point (LoadTrace, FaultGenerator, FlowSpec,
// TrafficDemand, TelemetryConfig, ...) throws std::invalid_argument whose
// message leads with the offending type and states the violated constraint,
// e.g. "FlowSpec: size must be finite and positive". The formatting used to
// be hand-assembled at every site with subtly different spellings; these
// helpers are the one place the convention lives.
#pragma once

#include <string_view>

namespace netpp::validation {

/// Throws std::invalid_argument with the message
/// "<type_name>: <constraint>".
[[noreturn]] void fail(std::string_view type_name, std::string_view constraint);

/// Throws "<type_name>: <constraint>" unless `ok`.
inline void require(bool ok, std::string_view type_name,
                    std::string_view constraint) {
  if (!ok) fail(type_name, constraint);
}

/// Requires a finite value (NaN and infinities rejected).
void require_finite(double value, std::string_view type_name,
                    std::string_view constraint);

/// Requires a finite value >= 0.
void require_finite_non_negative(double value, std::string_view type_name,
                                 std::string_view constraint);

/// Requires a finite value in [0, 1] (NaN rejected: isfinite guards the
/// comparison the NaN would otherwise sail through).
void require_fraction(double value, std::string_view type_name,
                      std::string_view constraint);

}  // namespace netpp::validation
