// Structure-of-arrays helpers for the simulation hot paths.
//
// The solver and reallocation pipelines are memory-bound: their per-event
// cost is dominated by streaming index and residual arrays, not arithmetic.
// This header provides the two building blocks they share:
//
//   - AlignedVec<T>: a minimal cache-line-aligned, grow-only workspace
//     buffer for trivially-copyable hot-path data. Unlike std::vector it
//     guarantees 64-byte alignment (vector kernels can use aligned loads on
//     the bulk of the range) and never value-initializes on resize, so
//     re-using a workspace across solves costs exactly the bytes written.
//
//   - Branch-light kernels (div_shares, fill_unfrozen) with an optional
//     explicit SSE2/AVX2 implementation behind NETPP_SIMD, selected at
//     runtime from CPUID. Every path is bit-identical to the scalar loop:
//     the kernels use only IEEE-exact operations (correctly-rounded vdivpd,
//     blends, integer->double conversion), so the solver's results do not
//     depend on the dispatch level. tests/netsim/fairshare_soa_test.cpp
//     pins each compiled path against the reference solver;
//     force_simd_level() exists for exactly that sweep.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <limits>
#include <new>
#include <type_traits>

namespace netpp::soa {

/// Alignment of every AlignedVec allocation: one x86 cache line, and enough
/// for any SSE/AVX2 aligned access.
inline constexpr std::size_t kAlignment = 64;

/// Grow-only aligned buffer for trivially-copyable workspace data.
///
/// Semantics are the subset of std::vector the hot paths need, with two
/// deliberate differences: resize() never shrinks capacity and never
/// initializes new elements (callers own the reset policy — that is the
/// whole point of a sparse-reset workspace), and the storage is always
/// kAlignment-aligned.
template <typename T>
class AlignedVec {
  static_assert(std::is_trivially_copyable_v<T>,
                "AlignedVec is for POD-style workspace data");
  static_assert(std::is_trivially_destructible_v<T>,
                "AlignedVec never runs destructors");

 public:
  AlignedVec() = default;
  ~AlignedVec() { deallocate(data_); }

  AlignedVec(const AlignedVec&) = delete;
  AlignedVec& operator=(const AlignedVec&) = delete;
  AlignedVec(AlignedVec&& other) noexcept
      : data_(other.data_), size_(other.size_), capacity_(other.capacity_) {
    other.data_ = nullptr;
    other.size_ = 0;
    other.capacity_ = 0;
  }
  AlignedVec& operator=(AlignedVec&& other) noexcept {
    if (this != &other) {
      deallocate(data_);
      data_ = other.data_;
      size_ = other.size_;
      capacity_ = other.capacity_;
      other.data_ = nullptr;
      other.size_ = 0;
      other.capacity_ = 0;
    }
    return *this;
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] T* data() { return data_; }
  [[nodiscard]] const T* data() const { return data_; }
  [[nodiscard]] T& operator[](std::size_t i) { return data_[i]; }
  [[nodiscard]] const T& operator[](std::size_t i) const { return data_[i]; }
  [[nodiscard]] T* begin() { return data_; }
  [[nodiscard]] T* end() { return data_ + size_; }
  [[nodiscard]] const T* begin() const { return data_; }
  [[nodiscard]] const T* end() const { return data_ + size_; }
  [[nodiscard]] T& back() { return data_[size_ - 1]; }
  [[nodiscard]] const T& back() const { return data_[size_ - 1]; }

  void reserve(std::size_t n) {
    if (n > capacity_) grow_to(n);
  }

  /// Grows (never shrinks capacity); new elements are UNINITIALIZED.
  void resize(std::size_t n) {
    reserve(n);
    size_ = n;
  }

  void assign(std::size_t n, T value) {
    resize(n);
    for (std::size_t i = 0; i < n; ++i) data_[i] = value;
  }

  void clear() { size_ = 0; }

  void push_back(T value) {
    if (size_ == capacity_) grow_to(size_ + 1);
    data_[size_++] = value;
  }

  void pop_back() { --size_; }

 private:
  void grow_to(std::size_t n) {
    std::size_t cap = capacity_ < 16 ? 16 : capacity_;
    while (cap < n) cap *= 2;
    T* fresh = static_cast<T*>(
        ::operator new(cap * sizeof(T), std::align_val_t{kAlignment}));
    if (size_ != 0) std::memcpy(fresh, data_, size_ * sizeof(T));
    deallocate(data_);
    data_ = fresh;
    capacity_ = cap;
  }

  static void deallocate(T* p) {
    if (p != nullptr) ::operator delete(p, std::align_val_t{kAlignment});
  }

  T* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t capacity_ = 0;
};

// ---------------------------------------------------------------------------
// Runtime-dispatched kernels.
// ---------------------------------------------------------------------------

/// Dispatch levels, ordered by capability. kScalar is always available; the
/// others exist when compiled in (NETPP_SIMD on x86-64) AND the CPU reports
/// support. All levels produce bit-identical results.
enum class SimdLevel : int {
  kScalar = 0,
  kSse2 = 1,
  kAvx2 = 2,
};

[[nodiscard]] const char* to_string(SimdLevel level);

/// Best level this binary + CPU supports (kScalar when NETPP_SIMD is off).
[[nodiscard]] SimdLevel detected_simd_level();

/// Level the kernels currently run at: detected, unless capped by
/// force_simd_level.
[[nodiscard]] SimdLevel active_simd_level();

/// Caps the dispatch at `level` (clamped to detected_simd_level()) and
/// returns the level actually applied. Test hook for sweeping every
/// compiled path; not intended for concurrent use with running solvers.
SimdLevel force_simd_level(SimdLevel level);

/// out[i] = residual[i] / double(active[i]) for i in [0, n).
/// active[i] == 0 divides by zero and yields +inf (callers skip those
/// lanes); the division is IEEE-exact on every path.
void div_shares(const double* residual, const std::uint32_t* active,
                double* out, std::size_t n);

/// The bulk cap-freeze: for i in [0, n), if !frozen[i] { rate[i] = value;
/// frozen[i] = 1; }. `frozen` must hold 0/1 flags (the vector paths store 1
/// unconditionally). Pure blend — bit-identical on every path.
void fill_unfrozen(double* rate, std::uint8_t* frozen, double value,
                   std::size_t n);

/// The progress settle: remaining[i] = max(remaining[i] - rate[i] * dt, 0.0)
/// for i in [0, n). The multiply and subtract stay separate operations
/// (soa.cpp builds with -ffp-contract=off, so no path fuses them into an
/// FMA) and max matches the scalar `next > 0.0 ? next : 0.0` on every edge
/// (NaN, signed zero) — bit-identical on every path.
void settle(double* remaining, const double* rate, double dt, std::size_t n);

/// The completion scan, over lanes with rate[i] > 0.0:
///   *min_quotient = min(remaining[i] / rate[i])  where rate[i] != cap
///   *min_capped   = min(remaining[i])            where rate[i] == cap
/// Both are +inf when no lane qualifies. Qualifying lanes produce no NaN
/// (rate > 0) so the min reductions are order-independent — the vector
/// accumulators match the scalar scan bit for bit.
void completion_scan(const double* remaining, const double* rate, double cap,
                     std::size_t n, double* min_quotient, double* min_capped);

}  // namespace netpp::soa
