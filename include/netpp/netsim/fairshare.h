// Max-min fair bandwidth allocation (progressive filling / water-filling).
//
// The flow-level simulator models TCP-like bandwidth sharing: each active
// flow gets its max-min fair rate given the capacities of the directed links
// it crosses. Progressive filling: repeatedly find the most contended link,
// freeze its flows at the link's equal share, subtract, repeat.
#pragma once

#include <vector>

namespace netpp {

/// One flow's demand: the indices of the (directed) resources it uses.
/// An empty set means the flow is unconstrained (gets +inf -> callers clamp).
struct FairShareFlow {
  std::vector<std::size_t> resources;
  /// Optional per-flow rate cap (e.g. the sender NIC). <= 0 means uncapped.
  double cap = 0.0;
};

/// Computes max-min fair rates.
/// `capacities[r]` is the capacity of resource r (> 0).
/// Returns one rate per flow, in the input order.
[[nodiscard]] std::vector<double> max_min_fair_rates(
    const std::vector<FairShareFlow>& flows,
    const std::vector<double>& capacities);

}  // namespace netpp
