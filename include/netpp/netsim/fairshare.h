// Max-min fair bandwidth allocation (progressive filling / water-filling).
//
// The flow-level simulator models TCP-like bandwidth sharing: each active
// flow gets its max-min fair rate given the capacities of the directed links
// it crosses. Progressive filling: repeatedly find the most contended link,
// freeze its flows at the link's equal share, subtract, repeat.
//
// The solver is built for the simulator's hot path: flows are described as
// views (std::span) over caller-owned resource-index arrays (zero copies),
// the flow->resource incidence is laid out flat in CSR form, and the "find
// the tightest link / smallest cap" steps run over lazy-delete min-heaps
// instead of per-round linear scans. Results are bit-identical to the
// textbook scan-based implementation (kept as a reference in the tests and
// the scale bench): shares are computed with the same expressions in the
// same order, and ties break toward the lowest index exactly as a first-hit
// linear scan does.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace netpp {

/// One flow's demand: the indices of the (directed) resources it uses.
/// An empty set means the flow is unconstrained (gets +inf -> callers clamp).
struct FairShareFlow {
  std::vector<std::size_t> resources;
  /// Optional per-flow rate cap (e.g. the sender NIC). <= 0 means uncapped.
  double cap = 0.0;
};

/// Zero-copy flow description: a view over caller-owned resource indices.
/// The viewed array must stay alive and unchanged for the duration of the
/// solve. (`FlowSimulator` points these at `ActiveFlow::directed_indices`.)
struct FairShareFlowView {
  std::span<const std::size_t> resources;
  /// Optional per-flow rate cap. <= 0 means uncapped.
  double cap = 0.0;
};

/// Reusable max-min solver. Keeping one instance alive across solves reuses
/// all workspace buffers (CSR arrays, heaps, residuals), so a steady-state
/// simulation allocates nothing per event.
class MaxMinSolver {
 public:
  /// Lifetime totals over this instance, for telemetry: how often the
  /// solver ran and how big the problems were (mean problem size is
  /// flows_solved / solves).
  struct SolveStats {
    std::uint64_t solves = 0;
    std::uint64_t flows_solved = 0;
  };
  [[nodiscard]] const SolveStats& stats() const { return stats_; }

  /// Computes max-min fair rates. `capacities[r]` is the capacity of
  /// resource r (>= 0; a zero-capacity resource pins the flows crossing it
  /// to rate 0). Returns one rate per flow, in input order; the
  /// reference stays valid until the next solve() on this instance.
  const std::vector<double>& solve(std::span<const FairShareFlowView> flows,
                                   std::span<const double> capacities);

  /// Sparse-reset variant for repeated small subproblems over a big fabric:
  /// `touched` must list every resource index any flow uses, each exactly
  /// once (order free), and `uniform_cap` (> 0) must equal every flow's
  /// cap. Only the touched entries of the resource-indexed workspace are
  /// reset and capacities are trusted (no NaN scan), so a solve costs
  /// O(flows + touched + incidence) instead of O(total resources). Returns
  /// exactly the doubles solve() would for the same input.
  const std::vector<double>& solve_on(std::span<const FairShareFlowView> flows,
                                      std::span<const double> capacities,
                                      std::span<const std::size_t> touched,
                                      double uniform_cap);

 private:
  struct HeapEntry {
    double key;
    std::size_t idx;
  };

  const std::vector<double>& run(std::span<const FairShareFlowView> flows,
                                 std::span<const double> capacities,
                                 std::span<const std::size_t> touched,
                                 double uniform_cap);

  void freeze(std::span<const FairShareFlowView> flows, std::size_t f,
              double value);

  std::vector<double> rate_;
  std::vector<double> residual_;
  std::vector<std::uint32_t> active_on_;
  std::vector<std::uint8_t> frozen_;
  std::vector<std::size_t> csr_start_;   // per-resource group start
  std::vector<std::size_t> csr_end_;     // per-resource group end (and cursor)
  std::vector<std::size_t> csr_flows_;   // flow ids grouped by resource
  std::vector<std::size_t> touched_all_;  // scratch: full-resource list
  std::vector<HeapEntry> link_heap_;      // (share, resource), lazy-delete
  std::vector<HeapEntry> cap_heap_;       // (cap, flow), lazy-delete
  SolveStats stats_;
};

/// Convenience wrapper over MaxMinSolver for owned-vector callers (tests,
/// one-off analyses). Hot paths should hold a MaxMinSolver and pass views.
[[nodiscard]] std::vector<double> max_min_fair_rates(
    const std::vector<FairShareFlow>& flows,
    const std::vector<double>& capacities);

}  // namespace netpp
