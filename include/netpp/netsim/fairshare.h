// Max-min fair bandwidth allocation (progressive filling / water-filling).
//
// The flow-level simulator models TCP-like bandwidth sharing: each active
// flow gets its max-min fair rate given the capacities of the directed links
// it crosses. Progressive filling: repeatedly find the most contended link,
// freeze its flows at the link's equal share, subtract, repeat.
//
// The solver is built for the simulator's hot path: flows are described as
// views (std::span) over caller-owned resource-index arrays (zero copies),
// every workspace is a contiguous structure-of-arrays buffer (soa.h aligned
// vectors, 32-bit indices), the flow->resource incidence is flattened into
// CSR form in both directions, and the "find the tightest link / smallest
// cap" steps run over lazy-delete min-heaps instead of per-round linear
// scans. The share-seeding and bulk cap-freeze loops dispatch to the soa.h
// kernels (scalar or, with NETPP_SIMD, SSE2/AVX2). Results are bit-identical
// to the textbook scan-based implementation (kept as a reference in the
// tests and the scale bench) on every dispatch path: shares are computed
// with the same IEEE-exact expressions in the same order, and ties break
// toward the lowest index exactly as a first-hit linear scan does.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netpp/netsim/soa.h"

namespace netpp {

/// One flow's demand: the indices of the (directed) resources it uses.
/// An empty set means the flow is unconstrained (gets +inf -> callers clamp).
struct FairShareFlow {
  std::vector<std::size_t> resources;
  /// Optional per-flow rate cap (e.g. the sender NIC). <= 0 means uncapped.
  double cap = 0.0;
};

/// Zero-copy flow description: a view over caller-owned resource indices.
/// The viewed array must stay alive and unchanged for the duration of the
/// solve.
struct FairShareFlowView {
  std::span<const std::size_t> resources;
  /// Optional per-flow rate cap. <= 0 means uncapped.
  double cap = 0.0;
};

/// Like FairShareFlowView but over 32-bit resource indices — the solver's
/// native index width. Hot-path callers (`FlowSimulator`) store their
/// adjacency arenas as uint32_t and use this view to keep the whole solve
/// pipeline on half-width indices.
struct FairShareFlowView32 {
  std::span<const std::uint32_t> resources;
  /// Optional per-flow rate cap. <= 0 means uncapped.
  double cap = 0.0;
};

/// Reusable max-min solver. Keeping one instance alive across solves reuses
/// all workspace buffers (CSR arrays, heaps, residuals), so a steady-state
/// simulation allocates nothing per event.
///
/// Problem-size limit: at most 2^31 - 1 total flow->resource incidences (and
/// flows, and resources) per solve; beyond that solve() throws
/// std::length_error. The bound keeps every index and count in 32 bits
/// (exactly convertible to double on all kernel paths).
class MaxMinSolver {
 public:
  /// Lifetime totals over this instance, for telemetry: how often the
  /// solver ran and how big the problems were (mean problem size is
  /// flows_solved / solves).
  struct SolveStats {
    std::uint64_t solves = 0;
    std::uint64_t flows_solved = 0;
  };
  [[nodiscard]] const SolveStats& stats() const { return stats_; }

  /// Snapshot restore: overwrites the lifetime totals verbatim (the scratch
  /// arenas are rebuilt by the next solve and carry no cross-call state).
  void restore_stats(const SolveStats& s) { stats_ = s; }

  /// Computes max-min fair rates. `capacities[r]` is the capacity of
  /// resource r (>= 0; a zero-capacity resource pins the flows crossing it
  /// to rate 0). Returns one rate per flow, in input order; the view stays
  /// valid until the next solve() on this instance.
  std::span<const double> solve(std::span<const FairShareFlowView> flows,
                                std::span<const double> capacities);
  std::span<const double> solve(std::span<const FairShareFlowView32> flows,
                                std::span<const double> capacities);
  /// Owned-vector overload: ingests FairShareFlow directly (no intermediate
  /// view array) — the max_min_fair_rates wrapper rides on this.
  std::span<const double> solve(std::span<const FairShareFlow> flows,
                                std::span<const double> capacities);

  /// Sparse-reset variant for repeated small subproblems over a big fabric:
  /// `touched` must list every resource index any flow uses, each exactly
  /// once (order free), and `uniform_cap` (> 0) must equal every flow's
  /// cap. Only the touched entries of the resource-indexed workspace are
  /// reset and capacities are trusted (no NaN scan), so a solve costs
  /// O(flows + touched + incidence) instead of O(total resources). Returns
  /// exactly the doubles solve() would for the same input.
  std::span<const double> solve_on(std::span<const FairShareFlowView> flows,
                                   std::span<const double> capacities,
                                   std::span<const std::size_t> touched,
                                   double uniform_cap);
  std::span<const double> solve_on(std::span<const FairShareFlowView32> flows,
                                   std::span<const double> capacities,
                                   std::span<const std::uint32_t> touched,
                                   double uniform_cap);

  /// Zero-copy sparse solve over a pre-flattened incidence: flow f's
  /// resources are arena[start[f] .. start[f+1]) (so start has
  /// num_flows + 1 entries and start[0] == 0). Returns exactly the doubles
  /// solve_on would for per-flow views over the same rows — it just skips
  /// the ingest copy, since the caller (the simulator's binding-closure
  /// walk) already owns the flattened layout. `arena` and `start` must stay
  /// alive and unchanged for the duration of the call. Uniform-cap only,
  /// like solve_on.
  std::span<const double> solve_arena(std::span<const std::uint32_t> arena,
                                      std::span<const std::uint32_t> start,
                                      std::span<const double> capacities,
                                      std::span<const std::uint32_t> touched,
                                      double uniform_cap);

 private:
  struct HeapEntry {
    double key;
    std::uint32_t idx;
    /// Resource version at push time (link heap only). While it still
    /// matches res_ver_[idx] the key is exactly the resource's current
    /// share, so run() accepts the entry without re-dividing.
    std::uint32_t ver;
  };

  /// Flattens the caller's views into the solver's SoA ingest CSR
  /// (flow_start_/flow_res_/flow_cap_) and counts per-resource incidence
  /// into active_on_. Templated only over the view type; everything after
  /// ingestion is index-width-agnostic.
  template <typename ViewT>
  void ingest(std::span<const ViewT> flows, std::size_t num_res, bool uniform,
              double uniform_cap);

  template <typename ViewT>
  std::span<const double> solve_dense(std::span<const ViewT> flows,
                                      std::span<const double> capacities);
  template <typename ViewT>
  std::span<const double> solve_sparse(std::span<const ViewT> flows,
                                       std::span<const double> capacities,
                                       std::span<const std::uint32_t> touched,
                                       double uniform_cap);

  /// The progressive-filling loop over the ingested SoA state. `dense`
  /// means "touched == every resource" (solve()); the touched span is only
  /// read when !dense.
  std::span<const double> run(std::size_t num_flows,
                              std::span<const double> capacities,
                              std::span<const std::uint32_t> touched,
                              bool dense, double uniform_cap);

  void freeze(std::uint32_t f, double value);

  // Flow-indexed SoA workspace.
  soa::AlignedVec<double> rate_;
  soa::AlignedVec<double> flow_cap_;       // per-flow cap (non-uniform runs)
  soa::AlignedVec<std::uint8_t> frozen_;
  // Ingest CSR: flow -> resources, flattened from the caller's views so the
  // filling loop streams one contiguous uint32 array instead of chasing
  // per-flow span pointers.
  soa::AlignedVec<std::uint32_t> flow_start_;  // size num_flows + 1
  soa::AlignedVec<std::uint32_t> flow_res_;    // size = total incidences
  // The incidence run() and freeze() actually read: the ingest CSR above,
  // or the caller's own arena on the solve_arena path (no copy).
  const std::uint32_t* fres_ = nullptr;
  const std::uint32_t* fstart_ = nullptr;
  // Resource-indexed SoA workspace (grow-only, sparse reset over `touched`).
  soa::AlignedVec<double> residual_;        // remaining capacity
  soa::AlignedVec<std::uint32_t> active_on_;  // unfrozen-flow degree
  soa::AlignedVec<std::uint32_t> res_ver_;    // bumped on every freeze touch
  soa::AlignedVec<double> share_;             // seed shares (dense solves)
  // Reverse CSR: resource -> flows, grouped in flow order.
  soa::AlignedVec<std::uint32_t> csr_start_;   // per-resource group start
  soa::AlignedVec<std::uint32_t> csr_cursor_;  // fill cursor / group end
  soa::AlignedVec<std::uint32_t> csr_flows_;   // flow ids grouped by resource
  soa::AlignedVec<std::uint32_t> touched_u32_;  // scratch: converted touched
  soa::AlignedVec<HeapEntry> link_heap_;  // (share, resource), lazy-delete
  soa::AlignedVec<HeapEntry> cap_heap_;   // (cap, flow), lazy-delete
  SolveStats stats_;
};

/// Convenience wrapper over MaxMinSolver for owned-vector callers (tests,
/// one-off analyses). Hot paths should hold a MaxMinSolver and pass views.
[[nodiscard]] std::vector<double> max_min_fair_rates(
    const std::vector<FairShareFlow>& flows,
    const std::vector<double>& capacities);

}  // namespace netpp
