// Event-driven flow-level network simulator.
//
// Flows (src host, dst host, size) arrive over time, are ECMP-routed over
// the topology, and share link bandwidth max-min fairly. On every arrival or
// completion the allocation is recomputed and the earliest completion is
// (re)scheduled. The simulator tracks per-directed-link utilization over
// time and per-switch load, and notifies a listener after every
// reallocation — the hook the §4 power mechanisms attach to.
//
// This is a fluid model (no packets): standard practice for
// utilization/energy studies at cluster scale.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "netpp/netsim/fairshare.h"
#include "netpp/netsim/soa.h"
#include "netpp/sim/engine.h"
#include "netpp/sim/stats.h"
#include "netpp/state/snapshot.h"
#include "netpp/telemetry/telemetry.h"
#include "netpp/topo/graph.h"
#include "netpp/topo/route_cache.h"
#include "netpp/topo/routing.h"
#include "netpp/units.h"

namespace netpp {

using FlowId = std::uint64_t;

/// A flow to inject.
struct FlowSpec {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  Bits size{};
  Seconds start{};
  /// Caller tag carried through to the completion record (e.g. iteration
  /// number, job id).
  std::uint64_t tag = 0;
};

/// Completion record.
struct FlowRecord {
  FlowId id = 0;
  FlowSpec spec;
  Seconds finished{};
  /// Flow completion time (finished - spec.start).
  [[nodiscard]] Seconds fct() const { return finished - spec.start; }
};

/// Directed link index: each undirected Link has two directions.
/// Direction 0 carries a->b traffic, 1 carries b->a.
struct DirectedLink {
  LinkId link = kInvalidLink;
  int direction = 0;

  [[nodiscard]] std::size_t index() const {
    return static_cast<std::size_t>(link) * 2 + direction;
  }
};

class FlowSimulator {
 public:
  struct Config {
    std::size_t max_ecmp_paths = 16;
    /// Per-flow rate cap; 0 disables (flows are then only link-limited).
    Gbps flow_rate_cap{0.0};
    /// Route arrivals, reroutes, and stranded-flow resumes through the
    /// epoch-versioned RouteCache instead of running a fresh BFS per flow.
    /// Path selection is bit-identical either way (same enumeration order,
    /// same flow hash); disable only to cross-check (see
    /// tests/netsim/flowsim_routecache_test.cpp).
    bool use_route_cache = true;
    /// Incremental reallocation: arrivals and departures that provably leave
    /// every other flow's allocation unchanged (all touched links stay
    /// strictly unsaturated) skip the full fair-share re-solve. The
    /// resulting allocation is the same max-min solution; disable only to
    /// cross-check (see tests/netsim/flowsim_incremental_test.cpp).
    bool incremental_reallocation = true;
    /// When a flow finds no route at admission time, park it on the stranded
    /// list (it is retried after every topology recovery) instead of counting
    /// it as permanently unroutable. Fault-injection runs want this on; the
    /// default preserves the historical "drop and count" semantics.
    bool strand_unroutable = false;
    /// Optional telemetry bundle (must outlive the simulator). The
    /// "netsim.*" counters/gauges land in its registry and, when its event
    /// log is enabled, flow/solver/topology events are recorded. Null keeps
    /// the counters in a simulator-private registry (realloc_stats() works
    /// either way). Attach at most one simulator per bundle if per-instance
    /// counter values matter: a shared registry merges same-named series.
    telemetry::Telemetry* telemetry = nullptr;
  };

  /// Observability counters for the reallocation fast paths and the
  /// fault/topology-change machinery.
  struct ReallocStats {
    std::uint64_t full_solves = 0;
    std::uint64_t fast_arrivals = 0;    // admitted at cap, no re-solve
    std::uint64_t fast_departures = 0;  // removed without re-solve
    /// Reallocations (counted in full_solves) resolved on the binding
    /// subset: only flows crossing a link whose equal share sits below the
    /// uniform cap went through the solver; everyone else got the cap.
    std::uint64_t binding_solves = 0;
    /// Total flows handed to the solver across binding_solves (the average
    /// subset size is binding_subset_flows / binding_solves).
    std::uint64_t binding_subset_flows = 0;
    std::uint64_t topology_changes = 0;  // enable/disable/degrade events
    std::uint64_t reroutes = 0;          // flows moved to a surviving path
    std::uint64_t stranded = 0;          // flows with no surviving path
    std::uint64_t resumed = 0;           // stranded flows re-admitted
    /// Route-cache counters (zeros when Config::use_route_cache is off).
    RouteCacheStats route_cache;
  };

  /// `graph`, `router`, and `engine` must outlive the simulator. The router
  /// is shared so that mechanisms can disable nodes/links and have the
  /// simulator route around them (affects flows admitted afterwards).
  FlowSimulator(const Graph& graph, Router& router, SimEngine& engine,
                Config config);
  /// Default configuration.
  FlowSimulator(const Graph& graph, Router& router, SimEngine& engine);
  /// Flushes the point-in-time metrics into the registry (see
  /// flush_metrics) so exports read final values even after the simulator
  /// is gone.
  ~FlowSimulator();

  /// Submits a flow for injection at `spec.start` (>= now). Returns its id.
  /// Rejects NaN/non-finite sizes and start times with
  /// std::invalid_argument.
  FlowId submit(const FlowSpec& spec);

  // --- Dynamic topology (fault injection / degraded-mode policies) ---
  //
  // These mutate the shared Router *and* immediately repair the running
  // simulation: flows whose path crosses a disabled device are re-routed
  // over surviving ECMP paths (or stranded if disconnected), the max-min
  // allocation is recomputed, and stranded flows are retried after every
  // recovery. `realloc_stats()` counts the outcomes.

  /// Fails (enabled=false) or repairs (enabled=true) a node mid-simulation.
  void set_node_enabled(NodeId id, bool enabled);

  /// Fails or repairs a link mid-simulation.
  void set_link_enabled(LinkId id, bool enabled);

  /// Degrades a link to `factor` (in (0, 1]) of its nominal capacity in both
  /// directions; 1.0 restores it. Use set_link_enabled for a full outage.
  void set_link_capacity_factor(LinkId id, double factor);

  [[nodiscard]] double link_capacity_factor(LinkId id) const {
    return link_factor_.at(id);
  }

  /// Flows currently parked because no enabled path connects their
  /// endpoints. They resume (with their remaining volume) on recovery.
  [[nodiscard]] std::size_t stranded_flows() const { return stranded_.size(); }

  /// Integral of (remaining demand x time spent stranded) in bit-seconds up
  /// to `now`, including flows still stranded — the "stranded
  /// demand-seconds" resilience metric.
  [[nodiscard]] double stranded_bit_seconds(Seconds now) const;

  /// Time each resumed flow spent stranded, in seconds (one entry per
  /// resume; recovery-time percentiles are computed from this).
  [[nodiscard]] const std::vector<double>& strand_durations() const {
    return strand_durations_;
  }

  [[nodiscard]] const Router& router() const { return router_; }

  /// Listener called after every reallocation (arrival or completion).
  using LoadListener = std::function<void(Seconds now)>;
  void set_load_listener(LoadListener listener) {
    listener_ = std::move(listener);
  }

  /// Listener called once per completed flow (before the post-completion
  /// reallocation), e.g. to drive closed-loop workloads.
  using CompletionListener = std::function<void(const FlowRecord&)>;
  void set_completion_listener(CompletionListener listener) {
    completion_listener_ = std::move(listener);
  }

  /// Current rate carried by a directed link (sum over flows), in Gbps.
  [[nodiscard]] Gbps directed_link_rate(DirectedLink dl) const;

  /// Current utilization of a directed link in [0, 1].
  [[nodiscard]] double directed_link_utilization(DirectedLink dl) const;

  /// Current load of a node in [0, 1]: total incident traffic (both
  /// directions of all incident links) over total incident capacity.
  [[nodiscard]] double node_load(NodeId id) const;

  /// Time-weighted average utilization of a directed link up to now.
  [[nodiscard]] double average_link_utilization(DirectedLink dl) const;

  [[nodiscard]] std::size_t active_flows() const { return active_.size(); }
  [[nodiscard]] const std::vector<FlowRecord>& completed() const {
    return completed_;
  }
  /// Flows that could not be routed (disconnected src/dst).
  [[nodiscard]] std::size_t unroutable_flows() const { return unroutable_; }

  /// Summary of flow completion times so far.
  [[nodiscard]] const SummaryStat& fct_stats() const { return fct_; }

  /// How often the solver ran vs. how often the incremental fast paths
  /// absorbed an event (route-cache counters included). A thin view: the
  /// counters live in the telemetry registry (Config::telemetry or the
  /// simulator-private one) and are copied out here, so this and a metrics
  /// export of the same run always agree bit-for-bit.
  [[nodiscard]] const ReallocStats& realloc_stats() const;

  /// Current mean utilization across every directed link:
  /// sum(carried) / sum(capacity). O(num links) — sample, don't poll per
  /// event.
  [[nodiscard]] double current_mean_utilization() const;

  /// The sums behind current_mean_utilization(), so a multi-shard driver
  /// can merge utilization exactly instead of averaging ratios.
  struct UtilizationTotals {
    double carried_bps = 0.0;
    double capacity_bps = 0.0;
  };
  [[nodiscard]] UtilizationTotals utilization_totals() const;

  /// Mirrors the point-in-time values (route-cache and solver totals,
  /// active/completed/stranded/unroutable gauges) into the registry.
  /// Called automatically on destruction; call before exporting mid-run.
  void flush_metrics();

  [[nodiscard]] const Graph& graph() const { return graph_; }
  [[nodiscard]] SimEngine& engine() { return engine_; }

  // --- Snapshot / restore (see docs/MODELS.md, "Snapshot format") ---
  //
  // save_state() serializes every piece of order-sensitive simulator state
  // verbatim — active flows with their SoA rate/remaining columns, the
  // link->flow membership arenas including dead blocks, carried-rate sums,
  // the route cache, the shared router's enablement masks, pending
  // injections, and the scheduled completion event's (time, FIFO seq) pair —
  // so a restored run replays the exact same floating-point operations in
  // the exact same order as the uninterrupted run. Call only at an event
  // boundary (never from inside a simulator callback).
  //
  // restore_state() overwrites this simulator (which must have been built
  // over the same graph with the same Config) with the snapshot image and
  // re-registers the pending events on the engine with their original FIFO
  // sequence numbers. The engine's clock must already have been restored
  // (SimEngine::restore_clock) by the orchestrator. check_invariants() runs
  // automatically at the end; corrupt snapshots throw
  // std::invalid_argument("FlowSimulator: ..."/"SnapshotReader: ...").
  //
  // Deliberate exclusions (behavior-neutral, documented in docs/MODELS.md):
  // the binding-walk generation stamps restart at zero (identical results
  // until the 2^32-solve wrap, which the walk already handles), and
  // listeners/event-log attachments are reconstructed by the caller.
  void save_state(state::SnapshotWriter& w) const;
  void restore_state(state::SnapshotReader& r);

  /// Structural self-check, callable at any event boundary: per-link rate
  /// feasibility (carried <= capacity, carried == sum of member rates),
  /// conservation of remaining bits (0 <= remaining <= size), arena /
  /// membership / back-pointer agreement, filtered-list-vs-flag agreement,
  /// and cache-vs-router epoch/enablement agreement. Throws
  /// std::invalid_argument("FlowSimulator: constraint") on violation.
  void check_invariants() const;

  // --- Sharded-driver hooks (see netpp/netsim/sharded.h) ---
  //
  // The sharded driver reconciles the two halves of a cross-shard flow at
  // its bounded-lag barriers: settle each involved shard to the barrier
  // time, read the halves' remaining volumes, raise the faster half to the
  // slower half's value (rate = min of the halves at window granularity),
  // and re-derive the completion event. The hooks are allocation-free and
  // leave rates and the carried-sum bookkeeping untouched, so
  // check_invariants() holds across any raise sequence. Only call them at
  // event boundaries (never from inside a simulator callback).

  /// Settles flow progress to the engine's current time (idempotent; a
  /// second call at the same time is a no-op, so barrier settles compose
  /// with the simulator's own event-driven settles).
  void settle_to_now() { settle_progress(engine_.now()); }

  /// Identity of the active flow at `index`. Indices are positions in the
  /// active-flow columns and stay valid only until the next event.
  [[nodiscard]] FlowId active_flow_id(std::size_t index) const {
    return active_[index].id;
  }
  [[nodiscard]] std::uint64_t active_flow_tag(std::size_t index) const {
    return active_[index].spec.tag;
  }

  /// The remaining-volume column (parallel to active-flow indices), as of
  /// the last settle.
  [[nodiscard]] std::span<const double> remaining_bits() const {
    return {flow_remaining_.data(), active_.size()};
  }

  /// Raises active flow `index`'s remaining volume to `bits` (must not be
  /// below the current value or above the flow's size, modulo the
  /// completion epsilon). Rates are untouched, so per-link feasibility is
  /// preserved; call settle_to_now() first and reschedule_completion()
  /// after the batch of raises.
  void set_remaining_bits(std::size_t index, double bits);

  /// Cancels and re-derives the completion event from the current
  /// remaining/rate columns (the tail of every reallocation), for use after
  /// a set_remaining_bits batch.
  void reschedule_completion() { schedule_next_completion(); }

 private:
  // Cold per-flow identity. The hot per-event scalars — current rate,
  // remaining volume, and the flow's arena block (begin/count into
  // flow_links_) — live in the parallel structure-of-arrays columns next to
  // active_ below, so the settle and completion scans stream dense double
  // arrays (vectorized soa kernels) and the binding-closure walk never
  // drags these structs through cache.
  struct ActiveFlow {
    FlowId id;
    FlowSpec spec;
    Seconds admitted{};
  };

  /// A flow disconnected by failures, waiting for a path to reappear.
  struct StrandedFlow {
    FlowId id;
    FlowSpec spec;
    double remaining_bits;
    Seconds stranded_at{};
  };

  void admit(FlowSpec spec, FlowId id);
  /// Injection-event body: looks up and erases the pending submission for
  /// `id`, then admits it. The indirection (instead of capturing the spec in
  /// the scheduled closure) is what lets save_state() serialize not-yet-
  /// admitted flows and restore_state() re-register their injection events.
  void admit_pending(FlowId id);
  /// Rejects NaN/negative rate caps, zero path budgets, and non-positive
  /// link capacities up front ("FlowSimulator::Config: constraint").
  void validate_config() const;
  void settle_progress(Seconds now);
  void reallocate(Seconds now);
  /// Binding-subset reallocation (uniform cap only): solves max-min on just
  /// the flows that cross a binding link (equal share below the cap) and
  /// hands every other flow exactly the cap. Writes rates only; returns
  /// true when it ran as a seeded (incremental) solve, in which case
  /// bind_sub_links_ lists every link whose carried sum may have moved so
  /// reallocate() can confine the writeback. See reallocate() for why this
  /// is the same allocation.
  bool reallocate_binding_subset(double cap_bps);
  void schedule_next_completion();
  /// Completion (re)scheduling after a fast arrival: the new flow is the
  /// only one whose completion estimate changed and it runs exactly at the
  /// uniform cap, so min(current event time, now + remaining / cap)
  /// replaces the full completion scan — O(1) instead of O(active flows).
  /// The ulp-level slack between a kept event time and a freshly scanned
  /// one is absorbed by complete_due_flows' nothing-due reschedule guard.
  void schedule_completion_for_cap_arrival(std::size_t index);
  void complete_due_flows(Seconds now);
  /// Arrival fast path: if the new flow (already in active_, at index i) can
  /// run at its cap without saturating any link it crosses, no other
  /// allocation moves.
  bool try_fast_arrival(Seconds now, std::size_t i);
  /// Departure fast path: a flow leaving only strictly-unsaturated links
  /// frees no bottleneck, so the remaining allocations stand.
  bool try_fast_departure(Seconds now, std::size_t i);
  void set_directed_rate(Seconds now, std::size_t index, double value);
  /// Overwrites `out` with the directed resource indices of `path` in
  /// traversal order.
  void directed_indices_of(const Path& path,
                           std::vector<std::uint32_t>& out) const;
  /// ECMP-routes (src, dst, flow id) through the cache (or the Router when
  /// the cache is disabled) and overwrites `out` with the path's directed
  /// resource indices. Returns false when disconnected.
  bool route_flow(NodeId src, NodeId dst, FlowId id,
                  std::vector<std::uint32_t>& out);
  /// Whether every link and transit node of flow i's path is enabled.
  [[nodiscard]] bool path_alive(std::size_t i) const;
  /// Flow i's directed resource indices (a view into the arena).
  [[nodiscard]] std::span<const std::uint32_t> flow_links(std::size_t i) const {
    return {flow_links_.data() + flow_lbegin_[i], flow_lcount_[i]};
  }
  /// Flow i's binding-candidate links: flow_links(i) filtered down to the
  /// links whose flag_lt_cap_ flag is set, maintained incrementally (see
  /// set_share_flag). The seeded closure walk streams these directly
  /// instead of re-filtering the full link list per solve.
  [[nodiscard]] std::span<const std::uint32_t> filt_links(std::size_t i) const {
    return {filt_arena_.data() + filt_begin_[i], filt_count_[i]};
  }
  /// Writes flag_lt_cap_[r] and, on a flip, splices link r into or out of
  /// every member flow's filtered list — the lists stay exactly
  /// {l in flow_links(f) : flag_lt_cap_[l]} at all times.
  void set_share_flag(std::uint32_t r, std::uint8_t v);
  /// Appends/removes one link in flow f's filtered list.
  void filt_append(std::uint32_t f, std::uint32_t l);
  void filt_remove(std::uint32_t f, std::uint32_t l);
  /// Rebuilds flow `index`'s filtered list from its link list and the
  /// current flags (store_flow_links tail, after membership enrollment).
  void filt_build(std::uint32_t index);
  /// Repacks the filtered arena when dead blocks dominate.
  void maybe_compact_filt();
  /// Appends a flow to active_ and every parallel SoA column (zero rate, no
  /// links yet).
  void push_active(FlowId id, const FlowSpec& spec, double remaining_bits,
                   Seconds now);
  /// Swap-and-pops flow i out of active_ and every parallel SoA column,
  /// renumbering the moved flow's membership entries.
  void swap_remove_active(std::size_t i);
  /// Appends `links` to the arena, points flow `index`'s SoA block column at
  /// the copy, and enrolls the flow in the per-link membership lists.
  void store_flow_links(std::uint32_t index,
                        const std::vector<std::uint32_t>& links);
  /// Marks flow i's arena block dead (space reclaimed by compaction) and
  /// removes the flow from the per-link membership lists.
  void release_flow_links(std::size_t i);
  /// Rewrites the membership entries of the flow now living at `index` in
  /// active_ (call after its SoA columns moved there).
  void renumber_flow_links(std::uint32_t index);
  /// Repacks the arena when dead blocks dominate; amortized O(1) per event.
  void maybe_compact_links();
  /// Re-validates all paths, reroutes/strands, retries stranded flows, and
  /// recomputes the allocation. Called after every topology mutation.
  void apply_topology_change();
  void retry_stranded(Seconds now);

  const Graph& graph_;
  Router& router_;
  SimEngine& engine_;
  Config config_;

  /// Structure-of-arrays link->flows incidence. Each directed link owns a
  /// block in two parallel 64-byte-aligned uint32 arenas: the member flow
  /// index (into active_) and that member's flow_links_ arena slot (the
  /// back-pointer pair with flow_adj_pos_). Blocks grow by doubling
  /// relocation at the arena tail; abandoned blocks are reclaimed by a
  /// whole-arena repack once dead space dominates the live membership, so
  /// growth stays amortized O(1) per hop. The binding-subset closure walk
  /// and the per-link rate writeback stream flows(r) — contiguous uint32
  /// runs — instead of chasing one heap-allocated vector per link.
  class LinkFlowPool {
   public:
    static constexpr std::uint32_t kNone = 0xFFFFFFFFu;

    void ensure_links(std::size_t n) {
      if (blocks_.size() < n) blocks_.resize(n);
    }
    [[nodiscard]] std::size_t num_links() const { return blocks_.size(); }
    [[nodiscard]] std::uint32_t count(std::size_t r) const {
      return blocks_[r].count;
    }
    [[nodiscard]] bool empty(std::size_t r) const {
      return blocks_[r].count == 0;
    }
    /// The flows on link r, in membership order (arbitrary but stable
    /// between mutations).
    [[nodiscard]] std::span<const std::uint32_t> flows(std::size_t r) const {
      const Block& b = blocks_[r];
      return {flow_of_.data() + b.begin, b.count};
    }
    /// Appends member (flow, arena slot) to link r; returns its position in
    /// the member list.
    std::uint32_t push(std::size_t r, std::uint32_t flow, std::uint32_t slot) {
      if (blocks_[r].count == blocks_[r].cap) grow_block(r);
      Block& b = blocks_[r];
      flow_of_[b.begin + b.count] = flow;
      slot_of_[b.begin + b.count] = slot;
      ++live_;
      return b.count++;
    }
    /// Swap-removes position pos from link r; returns the arena slot of the
    /// member that moved into pos (kNone when pos was the last member), so
    /// the caller can fix its back-pointer.
    std::uint32_t remove(std::size_t r, std::uint32_t pos) {
      Block& b = blocks_[r];
      --b.count;
      --live_;
      if (pos == b.count) return kNone;
      flow_of_[b.begin + pos] = flow_of_[b.begin + b.count];
      slot_of_[b.begin + pos] = slot_of_[b.begin + b.count];
      return slot_of_[b.begin + pos];
    }
    void set_flow(std::size_t r, std::uint32_t pos, std::uint32_t flow) {
      flow_of_[blocks_[r].begin + pos] = flow;
    }
    void set_slot(std::size_t r, std::uint32_t pos, std::uint32_t slot) {
      slot_of_[blocks_[r].begin + pos] = slot;
    }
    [[nodiscard]] std::size_t live() const { return live_; }
    /// Back-pointer read used by the invariant checks.
    [[nodiscard]] std::uint32_t slot_at(std::size_t r, std::uint32_t pos) const {
      return slot_of_[blocks_[r].begin + pos];
    }

    /// Serializes the arenas verbatim — block table (begin/count/cap, dead
    /// space included) and the full flow/slot columns — so post-restore
    /// membership iteration order and relocation timing match the
    /// uninterrupted run exactly.
    void save_state(state::SnapshotWriter& w) const;
    void restore_state(state::SnapshotReader& r);

   private:
    struct Block {
      std::uint32_t begin = 0;
      std::uint32_t count = 0;
      std::uint32_t cap = 0;
    };
    void grow_block(std::size_t r);
    void repack();

    std::vector<Block> blocks_;
    soa::AlignedVec<std::uint32_t> flow_of_;
    soa::AlignedVec<std::uint32_t> slot_of_;
    std::size_t live_ = 0;
  };

  std::vector<ActiveFlow> active_;
  // Hot per-flow scalars, parallel to active_ (structure-of-arrays; see the
  // ActiveFlow comment). Maintained in lockstep at every push and
  // swap-and-pop: rate and remaining feed the soa::settle /
  // soa::completion_scan kernels as dense 64-byte-aligned double streams;
  // begin/count are flow i's block in the flow_links_ arena.
  soa::AlignedVec<double> flow_rate_bps_;
  soa::AlignedVec<double> flow_remaining_;
  soa::AlignedVec<std::uint32_t> flow_lbegin_;
  soa::AlignedVec<std::uint32_t> flow_lcount_;
  // Per-flow filtered link lists (the flagged subset of each flow's links),
  // as blocks in their own arena: begin/count/cap columns parallel to
  // active_. Appends on a 0->1 flag flip relocate a full block to the arena
  // tail with doubled headroom; dead space is reclaimed by
  // maybe_compact_filt. filt_live_ tracks the live total.
  soa::AlignedVec<std::uint32_t> filt_begin_;
  soa::AlignedVec<std::uint32_t> filt_count_;
  soa::AlignedVec<std::uint32_t> filt_cap_;
  soa::AlignedVec<std::uint32_t> filt_arena_;
  std::size_t filt_live_ = 0;
  // Flat arena of every active flow's directed link indices (blocks
  // addressed by the flow_lbegin_/flow_lcount_ columns), 32-bit like the
  // solver's native index width. Departures and reroutes leave dead blocks
  // behind; maybe_compact_links() repacks when they dominate. live_hops_
  // tracks the live total.
  std::vector<std::uint32_t> flow_links_;
  std::vector<std::uint32_t> flow_links_scratch_;
  std::size_t live_hops_ = 0;
  // Persistent link->flows incidence, maintained by store/release/renumber
  // in O(hops) per event instead of rebuilt O(total hops) per solve.
  // flow_adj_pos_ (parallel to flow_links_) is the back-pointer: the hop's
  // position inside its link's member list, making removal and renumbering
  // O(1) per hop.
  LinkFlowPool link_flows_;
  std::vector<std::uint32_t> flow_adj_pos_;
  std::vector<std::uint32_t> adj_pos_scratch_;
  // Links with at least one member, with positions for O(1) removal.
  std::vector<std::uint32_t> touched_links_;
  std::vector<std::uint32_t> touched_pos_;
  // Persistent per-directed-link binding flag: capacity / member count
  // below the uniform cap (the exact division the solver's heap seeding
  // performs). Kept current at every membership or capacity change: the
  // fast paths and the seeded solve refresh the links they touch, full
  // evaluations rebuild every populated link.
  std::vector<std::uint8_t> flag_lt_cap_;
  std::vector<std::uint32_t> route_scratch_;  // route_flow output buffer
  std::vector<FlowRecord> completed_;
  std::vector<StrandedFlow> stranded_;
  std::vector<double> strand_durations_;        // seconds, one per resume
  double stranded_bit_seconds_done_ = 0.0;      // resumed flows' integral
  std::vector<double> directed_capacity_bps_;   // 2 per link, degraded
  std::vector<double> link_factor_;              // capacity factor per link
  std::vector<TimeWeighted> directed_rate_bps_;  // time-weighted history
  std::vector<double> carried_bps_;              // current carried rate

  // Persistent solver workspace: the problem views point straight into the
  // flow_links_ arena (no per-event copies), and the solver reuses its
  // internal buffers across events.
  MaxMinSolver solver_;
  std::vector<FairShareFlowView32> problem_;
  std::vector<double> carried_scratch_;
  // Binding-subset workspace: generation-stamped visit marks for the seeded
  // closure walk (no O(num links) clears per event), the full-mode
  // tight-candidate refinement buffers, and the active indices of the flows
  // handed to the solver.
  std::vector<std::uint8_t> bind_flag_;
  std::vector<double> bind_share0_;
  std::vector<double> bind_slb_;
  std::vector<double> bind_sub_;
  std::vector<double> bind_lb_;
  std::vector<std::uint32_t> bind_flows_;
  // Generation-stamped visit marks: deliberately std::vector (zero-init on
  // resize is load-bearing — a fresh stamp slot must never equal bind_gen_).
  std::vector<std::uint32_t> bind_link_seen_;
  std::vector<std::uint32_t> bind_flow_seen_;
  std::vector<std::uint32_t> bind_stack_;
  // Links whose carried sums can have moved this event — the links of
  // closure flows whose solved rate actually changed, plus the live seed
  // links (membership changed there) — each once: the seeded writeback's
  // work list.
  std::vector<std::uint32_t> bind_sub_seen_;
  std::vector<std::uint32_t> bind_sub_links_;
  // What the solver actually sees: the discovered flows' filtered link
  // lists, flattened into a CSR arena (bind_solver_start_ has one offset
  // per solver row plus the end sentinel, matching solve_arena's layout),
  // plus the deduplicated flagged-link list used as the solver's
  // sparse-reset set.
  std::vector<std::uint32_t> bind_solver_arena_;
  std::vector<std::uint32_t> bind_solver_start_;
  std::vector<std::uint32_t> bind_solver_links_;
  // Flows the walk discovered this event, solver rows plus direct-capped;
  // feeds the telemetry counter (same totals the pre-filtered problem had).
  std::size_t bind_discovered_ = 0;
  std::uint32_t bind_gen_ = 0;
  // Seed links for the next reallocation: the directed links of the flows
  // that arrived/departed since the last solve. When valid, only the flows
  // reachable from these links through binding links are re-solved; every
  // other flow's rate is provably unchanged and kept as cached. Consumed
  // (reset to full) by reallocate().
  std::vector<std::uint32_t> seed_links_;
  bool seed_valid_ = false;
  RouteCache route_cache_;
  // Telemetry instruments. The counters behind ReallocStats live here: each
  // increment site bumps a registry slot (Config::telemetry's registry, or
  // local_metrics_ when detached) and realloc_stats() reads them back.
  struct Instruments {
    telemetry::Counter full_solves;
    telemetry::Counter fast_arrivals;
    telemetry::Counter fast_departures;
    telemetry::Counter binding_solves;
    telemetry::Counter binding_subset_flows;
    telemetry::Counter topology_changes;
    telemetry::Counter reroutes;
    telemetry::Counter stranded;
    telemetry::Counter resumed;
    telemetry::Counter cache_hits;
    telemetry::Counter cache_misses;
    telemetry::Counter cache_epoch_flushes;
    telemetry::Counter solver_solves;
    telemetry::Counter solver_flows;
    telemetry::Gauge active_flows;
    telemetry::Gauge completed_flows;
    telemetry::Gauge stranded_flows;
    telemetry::Gauge unroutable_flows;
    telemetry::Gauge cache_entries;
    telemetry::Gauge cache_pool_bytes;
    telemetry::Histogram fct;
  };
  void init_instruments(telemetry::MetricRegistry& registry);
  void update_flow_gauges();
  std::unique_ptr<telemetry::MetricRegistry> local_metrics_;
  Instruments inst_;
  telemetry::EventLog* events_ = nullptr;
  // Mutable so realloc_stats() can refresh the view from the registry
  // counters without a separate accessor on every call site.
  mutable ReallocStats realloc_stats_;
  SummaryStat fct_;
  std::size_t unroutable_ = 0;
  FlowId next_id_ = 1;
  Seconds last_settle_{};
  std::optional<SimEngine::EventId> completion_event_;
  /// Submitted flows whose injection event has not fired yet, keyed by flow
  /// id. Tracked so snapshots can serialize them and restores re-register
  /// the injection events with their original FIFO sequence numbers.
  struct PendingSubmit {
    FlowSpec spec;
    SimEngine::EventId event = 0;
  };
  std::unordered_map<FlowId, PendingSubmit> pending_submits_;
  LoadListener listener_;
  CompletionListener completion_listener_;
};

}  // namespace netpp
