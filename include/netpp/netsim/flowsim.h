// Event-driven flow-level network simulator.
//
// Flows (src host, dst host, size) arrive over time, are ECMP-routed over
// the topology, and share link bandwidth max-min fairly. On every arrival or
// completion the allocation is recomputed and the earliest completion is
// (re)scheduled. The simulator tracks per-directed-link utilization over
// time and per-switch load, and notifies a listener after every
// reallocation — the hook the §4 power mechanisms attach to.
//
// This is a fluid model (no packets): standard practice for
// utilization/energy studies at cluster scale.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "netpp/netsim/fairshare.h"
#include "netpp/sim/engine.h"
#include "netpp/sim/stats.h"
#include "netpp/telemetry/telemetry.h"
#include "netpp/topo/graph.h"
#include "netpp/topo/route_cache.h"
#include "netpp/topo/routing.h"
#include "netpp/units.h"

namespace netpp {

using FlowId = std::uint64_t;

/// A flow to inject.
struct FlowSpec {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  Bits size{};
  Seconds start{};
  /// Caller tag carried through to the completion record (e.g. iteration
  /// number, job id).
  std::uint64_t tag = 0;
};

/// Completion record.
struct FlowRecord {
  FlowId id = 0;
  FlowSpec spec;
  Seconds finished{};
  /// Flow completion time (finished - spec.start).
  [[nodiscard]] Seconds fct() const { return finished - spec.start; }
};

/// Directed link index: each undirected Link has two directions.
/// Direction 0 carries a->b traffic, 1 carries b->a.
struct DirectedLink {
  LinkId link = kInvalidLink;
  int direction = 0;

  [[nodiscard]] std::size_t index() const {
    return static_cast<std::size_t>(link) * 2 + direction;
  }
};

class FlowSimulator {
 public:
  struct Config {
    std::size_t max_ecmp_paths = 16;
    /// Per-flow rate cap; 0 disables (flows are then only link-limited).
    Gbps flow_rate_cap{0.0};
    /// Route arrivals, reroutes, and stranded-flow resumes through the
    /// epoch-versioned RouteCache instead of running a fresh BFS per flow.
    /// Path selection is bit-identical either way (same enumeration order,
    /// same flow hash); disable only to cross-check (see
    /// tests/netsim/flowsim_routecache_test.cpp).
    bool use_route_cache = true;
    /// Incremental reallocation: arrivals and departures that provably leave
    /// every other flow's allocation unchanged (all touched links stay
    /// strictly unsaturated) skip the full fair-share re-solve. The
    /// resulting allocation is the same max-min solution; disable only to
    /// cross-check (see tests/netsim/flowsim_incremental_test.cpp).
    bool incremental_reallocation = true;
    /// When a flow finds no route at admission time, park it on the stranded
    /// list (it is retried after every topology recovery) instead of counting
    /// it as permanently unroutable. Fault-injection runs want this on; the
    /// default preserves the historical "drop and count" semantics.
    bool strand_unroutable = false;
    /// Optional telemetry bundle (must outlive the simulator). The
    /// "netsim.*" counters/gauges land in its registry and, when its event
    /// log is enabled, flow/solver/topology events are recorded. Null keeps
    /// the counters in a simulator-private registry (realloc_stats() works
    /// either way). Attach at most one simulator per bundle if per-instance
    /// counter values matter: a shared registry merges same-named series.
    telemetry::Telemetry* telemetry = nullptr;
  };

  /// Observability counters for the reallocation fast paths and the
  /// fault/topology-change machinery.
  struct ReallocStats {
    std::uint64_t full_solves = 0;
    std::uint64_t fast_arrivals = 0;    // admitted at cap, no re-solve
    std::uint64_t fast_departures = 0;  // removed without re-solve
    /// Reallocations (counted in full_solves) resolved on the binding
    /// subset: only flows crossing a link whose equal share sits below the
    /// uniform cap went through the solver; everyone else got the cap.
    std::uint64_t binding_solves = 0;
    /// Total flows handed to the solver across binding_solves (the average
    /// subset size is binding_subset_flows / binding_solves).
    std::uint64_t binding_subset_flows = 0;
    std::uint64_t topology_changes = 0;  // enable/disable/degrade events
    std::uint64_t reroutes = 0;          // flows moved to a surviving path
    std::uint64_t stranded = 0;          // flows with no surviving path
    std::uint64_t resumed = 0;           // stranded flows re-admitted
    /// Route-cache counters (zeros when Config::use_route_cache is off).
    RouteCacheStats route_cache;
  };

  /// `graph`, `router`, and `engine` must outlive the simulator. The router
  /// is shared so that mechanisms can disable nodes/links and have the
  /// simulator route around them (affects flows admitted afterwards).
  FlowSimulator(const Graph& graph, Router& router, SimEngine& engine,
                Config config);
  /// Default configuration.
  FlowSimulator(const Graph& graph, Router& router, SimEngine& engine);
  /// Flushes the point-in-time metrics into the registry (see
  /// flush_metrics) so exports read final values even after the simulator
  /// is gone.
  ~FlowSimulator();

  /// Submits a flow for injection at `spec.start` (>= now). Returns its id.
  /// Rejects NaN/non-finite sizes and start times with
  /// std::invalid_argument.
  FlowId submit(const FlowSpec& spec);

  // --- Dynamic topology (fault injection / degraded-mode policies) ---
  //
  // These mutate the shared Router *and* immediately repair the running
  // simulation: flows whose path crosses a disabled device are re-routed
  // over surviving ECMP paths (or stranded if disconnected), the max-min
  // allocation is recomputed, and stranded flows are retried after every
  // recovery. `realloc_stats()` counts the outcomes.

  /// Fails (enabled=false) or repairs (enabled=true) a node mid-simulation.
  void set_node_enabled(NodeId id, bool enabled);

  /// Fails or repairs a link mid-simulation.
  void set_link_enabled(LinkId id, bool enabled);

  /// Degrades a link to `factor` (in (0, 1]) of its nominal capacity in both
  /// directions; 1.0 restores it. Use set_link_enabled for a full outage.
  void set_link_capacity_factor(LinkId id, double factor);

  [[nodiscard]] double link_capacity_factor(LinkId id) const {
    return link_factor_.at(id);
  }

  /// Flows currently parked because no enabled path connects their
  /// endpoints. They resume (with their remaining volume) on recovery.
  [[nodiscard]] std::size_t stranded_flows() const { return stranded_.size(); }

  /// Integral of (remaining demand x time spent stranded) in bit-seconds up
  /// to `now`, including flows still stranded — the "stranded
  /// demand-seconds" resilience metric.
  [[nodiscard]] double stranded_bit_seconds(Seconds now) const;

  /// Time each resumed flow spent stranded, in seconds (one entry per
  /// resume; recovery-time percentiles are computed from this).
  [[nodiscard]] const std::vector<double>& strand_durations() const {
    return strand_durations_;
  }

  [[nodiscard]] const Router& router() const { return router_; }

  /// Listener called after every reallocation (arrival or completion).
  using LoadListener = std::function<void(Seconds now)>;
  void set_load_listener(LoadListener listener) {
    listener_ = std::move(listener);
  }

  /// Listener called once per completed flow (before the post-completion
  /// reallocation), e.g. to drive closed-loop workloads.
  using CompletionListener = std::function<void(const FlowRecord&)>;
  void set_completion_listener(CompletionListener listener) {
    completion_listener_ = std::move(listener);
  }

  /// Current rate carried by a directed link (sum over flows), in Gbps.
  [[nodiscard]] Gbps directed_link_rate(DirectedLink dl) const;

  /// Current utilization of a directed link in [0, 1].
  [[nodiscard]] double directed_link_utilization(DirectedLink dl) const;

  /// Current load of a node in [0, 1]: total incident traffic (both
  /// directions of all incident links) over total incident capacity.
  [[nodiscard]] double node_load(NodeId id) const;

  /// Time-weighted average utilization of a directed link up to now.
  [[nodiscard]] double average_link_utilization(DirectedLink dl) const;

  [[nodiscard]] std::size_t active_flows() const { return active_.size(); }
  [[nodiscard]] const std::vector<FlowRecord>& completed() const {
    return completed_;
  }
  /// Flows that could not be routed (disconnected src/dst).
  [[nodiscard]] std::size_t unroutable_flows() const { return unroutable_; }

  /// Summary of flow completion times so far.
  [[nodiscard]] const SummaryStat& fct_stats() const { return fct_; }

  /// How often the solver ran vs. how often the incremental fast paths
  /// absorbed an event (route-cache counters included). A thin view: the
  /// counters live in the telemetry registry (Config::telemetry or the
  /// simulator-private one) and are copied out here, so this and a metrics
  /// export of the same run always agree bit-for-bit.
  [[nodiscard]] const ReallocStats& realloc_stats() const;

  /// Current mean utilization across every directed link:
  /// sum(carried) / sum(capacity). O(num links) — sample, don't poll per
  /// event.
  [[nodiscard]] double current_mean_utilization() const;

  /// Mirrors the point-in-time values (route-cache and solver totals,
  /// active/completed/stranded/unroutable gauges) into the registry.
  /// Called automatically on destruction; call before exporting mid-run.
  void flush_metrics();

  [[nodiscard]] const Graph& graph() const { return graph_; }
  [[nodiscard]] SimEngine& engine() { return engine_; }

 private:
  struct ActiveFlow {
    FlowId id;
    FlowSpec spec;
    // The flow's fair-share resources (directed link indices in traversal
    // order) live in the shared flow_links_ arena: one contiguous block per
    // flow, so the per-event passes over every flow's links walk hot,
    // dense memory instead of chasing one heap allocation per flow.
    std::uint32_t link_begin = 0;
    std::uint32_t link_count = 0;
    double remaining_bits;
    double rate_bps = 0.0;
    Seconds admitted{};
  };

  /// A flow disconnected by failures, waiting for a path to reappear.
  struct StrandedFlow {
    FlowId id;
    FlowSpec spec;
    double remaining_bits;
    Seconds stranded_at{};
  };

  void admit(FlowSpec spec, FlowId id);
  void settle_progress(Seconds now);
  void reallocate(Seconds now);
  /// Binding-subset reallocation (uniform cap only): solves max-min on just
  /// the flows that cross a binding link (equal share below the cap) and
  /// hands every other flow exactly the cap. Writes rates only; returns
  /// true when it ran as a seeded (incremental) solve, in which case
  /// bind_sub_links_ lists every link whose carried sum may have moved so
  /// reallocate() can confine the writeback. See reallocate() for why this
  /// is the same allocation.
  bool reallocate_binding_subset(double cap_bps);
  void schedule_next_completion();
  void complete_due_flows(Seconds now);
  /// Arrival fast path: if the new flow (already in active_) can run at its
  /// cap without saturating any link it crosses, no other allocation moves.
  bool try_fast_arrival(Seconds now, ActiveFlow& flow);
  /// Departure fast path: a flow leaving only strictly-unsaturated links
  /// frees no bottleneck, so the remaining allocations stand.
  bool try_fast_departure(Seconds now, const ActiveFlow& flow);
  void set_directed_rate(Seconds now, std::size_t index, double value);
  /// Directed resource indices of `path` in traversal order.
  [[nodiscard]] std::vector<std::size_t> directed_indices_of(
      const Path& path) const;
  /// ECMP-routes (src, dst, flow id) through the cache (or the Router when
  /// the cache is disabled) and overwrites `out` with the path's directed
  /// resource indices. Returns false when disconnected.
  bool route_flow(NodeId src, NodeId dst, FlowId id,
                  std::vector<std::size_t>& out);
  /// Whether every link and transit node of the flow's path is enabled.
  [[nodiscard]] bool path_alive(const ActiveFlow& flow) const;
  /// The flow's directed resource indices (a view into the arena).
  [[nodiscard]] std::span<const std::size_t> flow_links(
      const ActiveFlow& flow) const {
    return {flow_links_.data() + flow.link_begin, flow.link_count};
  }
  /// Appends `links` to the arena, points `flow` at the copy, and enrolls
  /// the flow — which will live at `index` in active_ — in the per-link
  /// membership lists.
  void store_flow_links(ActiveFlow& flow, std::uint32_t index,
                        const std::vector<std::size_t>& links);
  /// Marks the flow's arena block dead (space reclaimed by compaction) and
  /// removes the flow from the per-link membership lists.
  void release_flow_links(const ActiveFlow& flow);
  /// Rewrites the flow's membership entries after a swap-and-pop moved it
  /// to `index` in active_.
  void renumber_flow_links(const ActiveFlow& flow, std::uint32_t index);
  /// Repacks the arena when dead blocks dominate; amortized O(1) per event.
  void maybe_compact_links();
  /// Re-validates all paths, reroutes/strands, retries stranded flows, and
  /// recomputes the allocation. Called after every topology mutation.
  void apply_topology_change();
  void retry_stranded(Seconds now);

  const Graph& graph_;
  Router& router_;
  SimEngine& engine_;
  Config config_;

  std::vector<ActiveFlow> active_;
  // Flat arena of every active flow's directed link indices (see
  // ActiveFlow). Departures and reroutes leave dead blocks behind;
  // maybe_compact_links() repacks when they dominate. live_hops_ tracks the
  // live total.
  std::vector<std::size_t> flow_links_;
  std::vector<std::size_t> flow_links_scratch_;
  std::size_t live_hops_ = 0;
  // Persistent link->flows incidence, maintained by store/release/renumber
  // in O(hops) per event instead of rebuilt O(total hops) per solve. Each
  // entry names the member flow (index into active_) and its arena slot;
  // flow_adj_pos_ (parallel to flow_links_) is the back-pointer: the
  // entry's position inside its link's member list, making removal and
  // renumbering O(1) per hop.
  struct LinkFlowRef {
    std::uint32_t flow;
    std::uint32_t slot;
  };
  std::vector<std::vector<LinkFlowRef>> link_flows_;
  std::vector<std::uint32_t> flow_adj_pos_;
  std::vector<std::uint32_t> adj_pos_scratch_;
  // Links with at least one member, with positions for O(1) removal.
  std::vector<std::size_t> touched_links_;
  std::vector<std::uint32_t> touched_pos_;
  // Persistent per-directed-link binding flag: capacity / member count
  // below the uniform cap (the exact division the solver's heap seeding
  // performs). Kept current at every membership or capacity change: the
  // fast paths and the seeded solve refresh the links they touch, full
  // evaluations rebuild every populated link.
  std::vector<std::uint8_t> flag_lt_cap_;
  std::vector<std::size_t> route_scratch_;  // route_flow output buffer
  std::vector<FlowRecord> completed_;
  std::vector<StrandedFlow> stranded_;
  std::vector<double> strand_durations_;        // seconds, one per resume
  double stranded_bit_seconds_done_ = 0.0;      // resumed flows' integral
  std::vector<double> directed_capacity_bps_;   // 2 per link, degraded
  std::vector<double> link_factor_;              // capacity factor per link
  std::vector<TimeWeighted> directed_rate_bps_;  // time-weighted history
  std::vector<double> carried_bps_;              // current carried rate

  // Persistent solver workspace: the problem views point straight into
  // ActiveFlow::directed_indices (no per-event copies), and the solver
  // reuses its internal buffers across events.
  MaxMinSolver solver_;
  std::vector<FairShareFlowView> problem_;
  std::vector<double> carried_scratch_;
  // Binding-subset workspace: generation-stamped visit marks for the seeded
  // closure walk (no O(num links) clears per event), the full-mode
  // tight-candidate refinement buffers, and the active indices of the flows
  // handed to the solver.
  std::vector<std::uint8_t> bind_flag_;
  std::vector<double> bind_share0_;
  std::vector<double> bind_slb_;
  std::vector<double> bind_sub_;
  std::vector<double> bind_lb_;
  std::vector<std::size_t> bind_flows_;
  std::vector<std::uint32_t> bind_link_seen_;
  std::vector<std::uint32_t> bind_flow_seen_;
  std::vector<std::size_t> bind_stack_;
  // Links whose carried sums can have moved this event — the links of
  // closure flows whose solved rate actually changed, plus the live seed
  // links (membership changed there) — each once: the seeded writeback's
  // work list.
  std::vector<std::uint32_t> bind_sub_seen_;
  std::vector<std::size_t> bind_sub_links_;
  // What the solver actually sees: per-flow link lists filtered down to the
  // flagged (binding-candidate) links, flattened into an arena, plus the
  // deduplicated flagged-link list used as the solver's sparse-reset set.
  std::vector<std::size_t> bind_solver_arena_;
  std::vector<std::size_t> bind_solver_links_;
  std::uint32_t bind_gen_ = 0;
  // Seed links for the next reallocation: the directed links of the flows
  // that arrived/departed since the last solve. When valid, only the flows
  // reachable from these links through binding links are re-solved; every
  // other flow's rate is provably unchanged and kept as cached. Consumed
  // (reset to full) by reallocate().
  std::vector<std::size_t> seed_links_;
  bool seed_valid_ = false;
  RouteCache route_cache_;
  // Telemetry instruments. The counters behind ReallocStats live here: each
  // increment site bumps a registry slot (Config::telemetry's registry, or
  // local_metrics_ when detached) and realloc_stats() reads them back.
  struct Instruments {
    telemetry::Counter full_solves;
    telemetry::Counter fast_arrivals;
    telemetry::Counter fast_departures;
    telemetry::Counter binding_solves;
    telemetry::Counter binding_subset_flows;
    telemetry::Counter topology_changes;
    telemetry::Counter reroutes;
    telemetry::Counter stranded;
    telemetry::Counter resumed;
    telemetry::Counter cache_hits;
    telemetry::Counter cache_misses;
    telemetry::Counter cache_epoch_flushes;
    telemetry::Counter solver_solves;
    telemetry::Counter solver_flows;
    telemetry::Gauge active_flows;
    telemetry::Gauge completed_flows;
    telemetry::Gauge stranded_flows;
    telemetry::Gauge unroutable_flows;
    telemetry::Gauge cache_entries;
    telemetry::Gauge cache_pool_bytes;
    telemetry::Histogram fct;
  };
  void init_instruments(telemetry::MetricRegistry& registry);
  void update_flow_gauges();
  std::unique_ptr<telemetry::MetricRegistry> local_metrics_;
  Instruments inst_;
  telemetry::EventLog* events_ = nullptr;
  // Mutable so realloc_stats() can refresh the view from the registry
  // counters without a separate accessor on every call site.
  mutable ReallocStats realloc_stats_;
  SummaryStat fct_;
  std::size_t unroutable_ = 0;
  FlowId next_id_ = 1;
  Seconds last_settle_{};
  std::optional<SimEngine::EventId> completion_event_;
  LoadListener listener_;
  CompletionListener completion_listener_;
};

}  // namespace netpp
