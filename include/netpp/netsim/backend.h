// Simulator-backend seam for the experiment drivers.
//
// The §4 mechanism compositions (mech/composite.h) and the fault experiments
// (faults/experiment.h) used to be welded to the single-engine FlowSimulator.
// SimulatorBackend is the thin interface that lets the same drivers run on
// either the plain simulator or the pod-sharded ShardedFlowSimulator:
// advance the clock, submit flows, inject topology/fault events, schedule
// control-plane callbacks, query results, record loads, snapshot/restore.
//
// The control plane is the part that earns the seam. Experiment logic
// (fault apply/repair, degraded-mode wake completions) is scheduled as
// (time, FIFO seq) events. On the single backend those are events on the
// simulator's own SimEngine — the exact pre-seam behavior, so results stay
// bit-identical. On the sharded backend they live in a driver-side control
// engine: the fabric advances to the next control time in bounded-lag
// windows, then due callbacks fire in seq order at the barrier, where
// cross-shard topology mutation is legal by construction.
//
// Load observation follows the same split: per-shard observers (one
// NodeLoadRecorder per shard, attached via shard_sim()) see every
// reallocation of their own shard, while the backend-level load listener
// fires per reallocation on the single backend and per barrier on the
// sharded one (the windowed view of the same signal).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "netpp/netsim/flowsim.h"
#include "netpp/netsim/sharded.h"
#include "netpp/state/snapshot.h"
#include "netpp/telemetry/metrics.h"
#include "netpp/topo/graph.h"
#include "netpp/topo/pods.h"

namespace netpp {

enum class BackendKind : std::uint8_t { kSingle, kSharded };

/// "single" / "sharded".
[[nodiscard]] const char* to_string(BackendKind kind);

/// How an experiment driver instantiates its simulator.
struct BackendConfig {
  BackendKind kind = BackendKind::kSingle;
  /// Sharded only: shards to partition the fabric into (>= 1). The single
  /// backend requires 1.
  std::size_t num_shards = 1;
  /// Sharded only: worker-thread ceiling (0 = the shared thread budget).
  /// Never affects results.
  std::size_t num_threads = 0;
  /// Sharded only: bounded-lag barrier interval.
  Seconds barrier_interval{0.01};
};

/// Backend-agnostic simulator handle (see the file comment). One experiment
/// run per instance; not thread-safe.
class SimulatorBackend {
 public:
  using ControlFn = std::function<void()>;
  /// Opaque control-event handle, valid until the event fires or is
  /// cancelled (same lifetime discipline as SimEngine::EventId).
  using ControlId = std::uint64_t;
  using LoadListener = std::function<void(Seconds now)>;

  virtual ~SimulatorBackend() = default;

  [[nodiscard]] virtual BackendKind kind() const = 0;
  [[nodiscard]] virtual const Graph& graph() const = 0;

  // --- Time ---

  [[nodiscard]] virtual Seconds now() const = 0;
  /// Advances fabric and control plane to `until` (inclusive).
  virtual void run_until(Seconds until) = 0;
  /// Drains every pending fabric and control event.
  virtual void run() = 0;

  // --- Control plane (experiment logic as (time, seq) events) ---

  virtual ControlId schedule_control_at(Seconds at, ControlFn fn) = 0;
  virtual ControlId schedule_control_after(Seconds delay, ControlFn fn) = 0;
  virtual bool cancel_control(ControlId id) = 0;
  /// (time, seq) of a pending control event, for snapshotting. Throws
  /// std::logic_error on a stale handle.
  [[nodiscard]] virtual Seconds control_time(ControlId id) const = 0;
  [[nodiscard]] virtual std::uint64_t control_seq(ControlId id) const = 0;
  /// Next control FIFO sequence number (monotone event counter).
  [[nodiscard]] virtual std::uint64_t control_next_seq() const = 0;
  /// Snapshot restore: re-registers a control event with its original
  /// (time, seq) so restored events fire in the uninterrupted run's order.
  virtual ControlId restore_control_at(Seconds at, std::uint64_t seq,
                                       ControlFn fn) = 0;

  // --- Flows ---

  virtual FlowId submit(const FlowSpec& spec) = 0;

  // --- Topology / fault state (global ids) ---

  virtual void set_node_enabled(NodeId id, bool enabled) = 0;
  virtual void set_link_enabled(LinkId id, bool enabled) = 0;
  virtual void set_link_capacity_factor(LinkId id, double factor) = 0;
  [[nodiscard]] virtual bool node_enabled(NodeId id) const = 0;
  [[nodiscard]] virtual bool link_enabled(LinkId id) const = 0;
  [[nodiscard]] virtual double link_capacity_factor(LinkId id) const = 0;

  // --- Results / telemetry ---

  [[nodiscard]] virtual const std::vector<FlowRecord>& completed() const = 0;
  [[nodiscard]] virtual const SummaryStat& fct_stats() const = 0;
  [[nodiscard]] virtual std::size_t active_flows() const = 0;
  [[nodiscard]] virtual std::size_t stranded_flows() const = 0;
  [[nodiscard]] virtual std::size_t unroutable_flows() const = 0;
  [[nodiscard]] virtual FlowSimulator::ReallocStats realloc_stats() const = 0;
  [[nodiscard]] virtual double stranded_bit_seconds(Seconds now) const = 0;
  /// Resume durations (sharded: concatenated in shard order).
  [[nodiscard]] virtual std::vector<double> strand_durations() const = 0;
  [[nodiscard]] virtual double current_mean_utilization() const = 0;
  virtual void flush_metrics() = 0;
  /// The fabric's own metric samples when they are not visible in the
  /// caller's registry: empty on the single backend (whose simulator writes
  /// straight into Config::telemetry), the merged per-shard registries on
  /// the sharded one.
  [[nodiscard]] virtual std::vector<telemetry::MetricSample> sim_metrics()
      const = 0;

  /// Backend-level load signal: per reallocation (single) or per barrier
  /// (sharded). Use shard_sim() observers for exact per-event sampling.
  virtual void set_load_listener(LoadListener listener) = 0;

  // --- Per-shard observation (load-trace recording) ---

  /// Number of shard simulators behind this backend (1 for single).
  [[nodiscard]] virtual std::size_t shard_count() const = 0;
  /// Mutable shard simulator, for attaching per-shard observers. Observers
  /// fire on worker threads inside sharded windows and must touch only
  /// their own shard.
  [[nodiscard]] virtual FlowSimulator& shard_sim(std::size_t s) = 0;
  /// Shard-local topology (id maps + gateway), or nullptr when the shard
  /// runs on the global graph verbatim (single backend).
  [[nodiscard]] virtual const ShardTopology* shard_topology(
      std::size_t s) const = 0;
  /// Whether the core layer is collapsed into per-shard gateways (true on
  /// the sharded backend with more than one shard). When collapsed, core
  /// switches have no per-switch load trace — only the aggregate gateway
  /// signal — so core power policies must work from aggregate load.
  [[nodiscard]] virtual bool core_collapsed() const = 0;

  // --- Snapshot / restore ---

  /// Serializes the fabric (FlowSimulator / ShardedFlowSimulator image).
  /// Control events are the *owners'* responsibility: components record
  /// their pending (time, seq) pairs and re-register via
  /// restore_control_at(), exactly the SimEngine snapshot discipline.
  virtual void save_sim(state::SnapshotWriter& w) const = 0;
  virtual void restore_sim(state::SnapshotReader& r) = 0;
  /// Drops pending control events and resets the control FIFO counter (and,
  /// on the single backend, the shared engine clock). Call before
  /// restore_sim().
  virtual void restore_clock(Seconds now, std::uint64_t control_next_seq) = 0;
  virtual void check_invariants() const = 0;
};

/// Builds the configured backend over `graph` (which must outlive it).
/// `sim_config` is the per-simulator configuration; on the sharded backend
/// its telemetry handle must be null (each shard owns a private registry —
/// read sim_metrics() instead). Throws std::invalid_argument on an invalid
/// combination (single with num_shards != 1, unpartitionable graph, ...).
[[nodiscard]] std::unique_ptr<SimulatorBackend> make_backend(
    const Graph& graph, const BackendConfig& config,
    const FlowSimulator::Config& sim_config);

}  // namespace netpp
