// Whole-fabric energy accounting on top of the flow simulator.
//
// Attaches a power model to every network device of a simulated topology —
// switches, host NICs, and the optical transceivers on inter-switch links —
// and integrates their energy as the simulation runs. Two device power
// modes:
//
//   kTwoState   — the paper's §2.3 model: a device draws idle power when it
//                 carries no traffic and max power when it does (envelope
//                 from the configured proportionality). This is the mode to
//                 cross-validate the analytic ClusterModel against.
//   kComponent  — switches use the component-level SwitchPowerModel at
//                 their instantaneous load (linear in utilization); NICs and
//                 transceivers stay two-state.
//
// Attach via `FlowSimulator::set_load_listener(tracker.listener())` (or
// chain it from your own listener) before submitting flows.
#pragma once

#include <vector>

#include "netpp/mech/mechanism.h"
#include "netpp/netsim/flowsim.h"
#include "netpp/power/envelope.h"
#include "netpp/power/switch_model.h"
#include "netpp/sim/energy.h"

namespace netpp {

enum class DevicePowerMode {
  kTwoState,
  kComponent,
};

class FabricEnergyTracker {
 public:
  struct Config {
    /// Applies to switches, NICs, and transceivers alike (paper §2.3.2).
    double network_proportionality = 0.10;
    Watts switch_max{750.0};
    Watts nic_max{8.6};
    Watts transceiver_max{4.0};
    DevicePowerMode mode = DevicePowerMode::kTwoState;
    /// Used for switches in kComponent mode.
    SwitchPowerModel component_model{};
  };

  /// `sim` must outlive the tracker. Hosts get one NIC each; every optical
  /// link gets two transceivers; every switch-kind node gets a switch meter.
  FabricEnergyTracker(const FlowSimulator& sim, Config config);

  /// Re-evaluates all device powers at `now`. Call on every reallocation.
  void on_load_change(Seconds now);

  /// Adapter for FlowSimulator::set_load_listener.
  [[nodiscard]] FlowSimulator::LoadListener listener();

  [[nodiscard]] Joules network_energy(Seconds until) const;
  [[nodiscard]] Watts average_network_power(Seconds until) const;

  /// Per component class.
  [[nodiscard]] Joules switch_energy(Seconds until) const;
  [[nodiscard]] Joules nic_energy(Seconds until) const;
  [[nodiscard]] Joules transceiver_energy(Seconds until) const;

  /// Paper §3.1 energy-efficiency metric over the whole fabric:
  /// ideally-proportional energy / actual energy.
  [[nodiscard]] double network_energy_efficiency(Seconds until) const;

  /// Max power if every device ran at max simultaneously.
  [[nodiscard]] Watts max_network_power() const;

  /// The fabric's energy accounting in the mechanism layer's common
  /// currency: baseline = every device at max power over the window, so the
  /// tracker's results line up next to MechanismPolicy runs. `until` must
  /// be positive.
  [[nodiscard]] MechanismReport report(Seconds until) const;

  [[nodiscard]] const Config& config() const { return config_; }

 private:
  struct Device {
    enum class Kind { kSwitch, kNic, kTransceiver } kind;
    /// Switch: the node. NIC: the host node. Transceiver: an endpoint of
    /// `link` (two Device entries per optical link).
    NodeId node = kInvalidNode;
    LinkId link = kInvalidLink;
    EnergyMeter meter;
  };

  [[nodiscard]] double device_load(const Device& device) const;
  [[nodiscard]] Watts device_power(const Device& device, double load) const;
  [[nodiscard]] Joules energy_of_kind(Device::Kind kind, Seconds until) const;

  const FlowSimulator& sim_;
  Config config_;
  PowerEnvelope switch_env_;
  PowerEnvelope nic_env_;
  PowerEnvelope transceiver_env_;
  std::vector<Device> devices_;
};

}  // namespace netpp
