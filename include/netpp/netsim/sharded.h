// Pod-sharded flow simulation for multi-pod datacenter scale.
//
// ShardedFlowSimulator partitions a layered fabric by pod (topo/pods.h) and
// runs one complete FlowSimulator per shard — its own shard-local graph,
// Router, RouteCache, SimEngine, solver arenas, and telemetry registry — so
// the per-event costs that dominate at scale (completion scans, solver
// closures, route BFS) touch one pod group's state instead of the whole
// fabric. Shards advance in bounded-lag windows under one global clock:
// workers run each shard's event loop to the next barrier, then a serial
// barrier phase drains completions and reconciles cross-shard flows.
//
// Cross-shard flows are split at the shard boundary into an ingress half
// (src -> gateway in the source shard) and an egress half (gateway -> dst in
// the destination shard); the gateway is a single node standing in for the
// collapsed core layer, reachable over per-agg links carrying the aggregate
// capacity of that agg's core uplinks. At every barrier the two halves are
// reconciled by min-progress: the half that ran ahead is pulled back to the
// slower half's remaining volume, which is exactly "the flow's end-to-end
// rate is the min of its halves" at window granularity. The flow completes
// when both halves have; its completion time is the later of the two.
//
// Determinism: workers only ever run disjoint shards inside a window, and
// everything that crosses shards — completion draining, half reconciliation,
// fault routing — happens in the serial barrier phase in fixed shard /
// submission order. Results are therefore bit-identical regardless of the
// worker-thread count (the SweepRunner discipline). With one shard the
// local topology is a verbatim copy of the global graph and no flow is ever
// split, so the single-shard configuration is bit-identical to a plain
// FlowSimulator driven over the same submissions (pinned by
// tests/netsim/flowsim_sharded_test.cpp).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "netpp/netsim/flowsim.h"
#include "netpp/sim/engine.h"
#include "netpp/state/snapshot.h"
#include "netpp/telemetry/telemetry.h"
#include "netpp/topo/graph.h"
#include "netpp/topo/pods.h"
#include "netpp/topo/routing.h"

namespace netpp {

class ShardedFlowSimulator {
 public:
  struct Config {
    /// Shards to partition the fabric into. Pods are assigned contiguously
    /// (assign_pods_contiguous); must be in [1, num_pods].
    std::size_t num_shards = 1;
    /// Worker-thread ceiling for the window phase; 0 draws everything the
    /// shared thread budget (netpp/sim/thread_budget.h) allows. Never
    /// affects results, only wall-clock.
    std::size_t num_threads = 0;
    /// Bounded-lag window: barriers sit on the multiples of this interval
    /// (plus every run_until() boundary). Smaller windows track cross-shard
    /// rate coupling more tightly; larger windows amortize barrier cost.
    Seconds barrier_interval{0.01};
    /// Per-shard simulator configuration. `telemetry` must stay null: each
    /// shard owns a private registry (merged_metrics() merges them); a
    /// shared bundle would race under worker threads.
    FlowSimulator::Config shard;
  };

  /// `graph` must outlive the simulator. Throws std::invalid_argument for
  /// an unpartitionable graph or an out-of-range shard count.
  ShardedFlowSimulator(const Graph& graph, Config config);

  /// Submits a flow between global host ids for injection at `spec.start`
  /// (>= now(); legal between run_until calls, not from callbacks). Returns
  /// the driver-level flow id. spec.tag is the caller's tag, carried into
  /// the completion record.
  FlowId submit(const FlowSpec& spec);

  /// Advances every shard to `until` in bounded-lag windows.
  void run_until(Seconds until);

  /// Drains every pending event. Multi-shard fabrics advance one grid
  /// window at a time so no barrier ever lands on a data-dependent event
  /// time; a lone shard runs its engine dry and lands now() on the final
  /// event, matching the plain FlowSimulator.
  void run();

  /// The global clock (the last barrier time).
  [[nodiscard]] Seconds now() const { return now_; }

  // --- Dynamic topology (global ids; legal between run_until calls) ---
  //
  // Pod-local devices route to the owning shard's simulator. Core switches
  // and boundary links have no per-shard counterpart once the core is
  // collapsed; their failures rescale the owning agg's gateway-link
  // capacity to the surviving fraction of its core uplinks (a full outage
  // disables the gateway link).

  void set_node_enabled(NodeId id, bool enabled);
  void set_link_enabled(LinkId id, bool enabled);
  void set_link_capacity_factor(LinkId id, double factor);

  /// Global-id fault-state queries, the read side of the setters above.
  /// Core switches and boundary links answer from the driver's own fault
  /// state once the core is collapsed; pod-local devices answer from the
  /// owning shard's router/simulator.
  [[nodiscard]] bool node_enabled(NodeId id) const;
  [[nodiscard]] bool link_enabled(LinkId id) const;
  [[nodiscard]] double link_capacity_factor(LinkId id) const;

  // --- Results ---

  /// Completed user flows, in barrier-drain order (deterministic). Records
  /// carry the original global spec and driver flow ids; a cross-shard
  /// flow's finish time is the later of its halves'.
  [[nodiscard]] const std::vector<FlowRecord>& completed() const {
    return completed_;
  }
  [[nodiscard]] const SummaryStat& fct_stats() const { return fct_; }
  /// Shard-resident active flows, summed (a cross-shard flow counts once
  /// per live half).
  [[nodiscard]] std::size_t active_flows() const;
  /// User flows submitted but not yet completed (pending, active, or
  /// stranded).
  [[nodiscard]] std::size_t flows_in_flight() const {
    return flows_.size() - completed_.size();
  }
  [[nodiscard]] std::size_t stranded_flows() const;
  [[nodiscard]] std::size_t unroutable_flows() const;
  /// Reallocation / fault counters summed across shards.
  [[nodiscard]] FlowSimulator::ReallocStats realloc_stats() const;
  /// Stranded demand integral (bit-seconds) summed across shards.
  [[nodiscard]] double stranded_bit_seconds(Seconds now) const;
  /// Every shard's resume durations concatenated in shard order.
  [[nodiscard]] std::vector<double> strand_durations() const;
  /// Mean utilization across every shard-local directed link, merged from
  /// the per-shard carried/capacity sums (not an average of ratios). With
  /// one shard this is exactly the plain simulator's value.
  [[nodiscard]] double current_mean_utilization() const;
  /// Absolute time of the earliest pending event across every shard engine,
  /// +infinity when all are drained. Meaningful between run_until calls.
  [[nodiscard]] double next_event_time();

  [[nodiscard]] std::size_t num_shards() const { return shards_.size(); }
  [[nodiscard]] const FlowSimulator& shard(std::size_t s) const {
    return *shards_[s]->sim;
  }
  /// Mutable per-shard simulator access for wiring per-shard observers
  /// (load-trace recorders). An observer attached here fires on a worker
  /// thread inside the window phase and must touch only its own shard.
  [[nodiscard]] FlowSimulator& shard_mutable(std::size_t s) {
    return *shards_[s]->sim;
  }
  [[nodiscard]] const ShardTopology& shard_topology(std::size_t s) const {
    return shards_[s]->topo;
  }
  [[nodiscard]] const PodPartition& partition() const { return partition_; }

  /// Every shard's metric registry merged into one sample list: counters,
  /// gauges, and histogram buckets sum per metric name. Counter values are
  /// re-derived from the exact-integer merged counts (no double-sum drift)
  /// and the result is sorted by metric name, so the export is byte-stable
  /// across shard counts. The per-shard registries stay intact; this is the
  /// export view.
  [[nodiscard]] std::vector<telemetry::MetricSample> merged_metrics() const;

  /// Listener called after every barrier (completions drained, cross flows
  /// reconciled) with the barrier time — the sharded analogue of
  /// FlowSimulator's load listener, at window granularity.
  using BarrierListener = std::function<void(Seconds)>;
  void set_barrier_listener(BarrierListener listener) {
    barrier_listener_ = std::move(listener);
  }

  // --- Snapshot / restore ---
  //
  // Same discipline as FlowSimulator::save_state: call only at a barrier
  // (which is the only time the caller holds the clock anyway). The image
  // is one driver section — global clock and barrier cursor, the user-flow
  // table with cross-half bookkeeping, fault state — followed by each
  // shard's engine clock and full FlowSimulator image in shard order.
  // restore_state overwrites an identically configured simulator over the
  // same graph; a resumed run is bit-identical to the uninterrupted one
  // (checked by tools/chaos_replay).
  void save_state(state::SnapshotWriter& w) const;
  void restore_state(state::SnapshotReader& r);

  /// Runs every shard's structural audit plus the driver's own cross-flow
  /// bookkeeping checks. Throws std::invalid_argument on violation.
  void check_invariants() const;

 private:
  /// One user-visible flow. Cross-shard flows track both halves; intra
  /// flows complete directly off the owning shard's record.
  struct FlowEntry {
    FlowSpec spec;  // global ids, caller tag
    FlowId id = 0;  // driver-level flow id
    std::uint32_t src_shard = 0;
    std::uint32_t dst_shard = 0;  // == src_shard for intra flows
    /// Half finish times, < 0 while pending (cross flows only).
    double finished_src = -1.0;
    double finished_dst = -1.0;
    bool completed = false;
    /// Barrier scratch (valid when the stamp matches barrier_gen_).
    std::uint32_t seen_src = 0;
    std::uint32_t seen_dst = 0;
    std::uint32_t index_src = 0;
    std::uint32_t index_dst = 0;
    double remaining_src = 0.0;
    double remaining_dst = 0.0;

    [[nodiscard]] bool cross() const { return src_shard != dst_shard; }
  };

  struct Shard {
    ShardTopology topo;
    std::unique_ptr<Router> router;
    std::unique_ptr<SimEngine> engine;
    std::unique_ptr<telemetry::Telemetry> telemetry;
    std::unique_ptr<FlowSimulator> sim;
    /// completed() entries already drained by a barrier.
    std::size_t completed_cursor = 0;
    /// Live (submitted, not yet drained-complete) cross halves resident in
    /// this shard; the barrier skips the settle + scan when zero.
    std::size_t live_cross_halves = 0;
  };

  /// Per-boundary-link fault state (global boundary links only).
  struct BoundaryState {
    bool enabled = true;
    double factor = 1.0;
  };

  [[nodiscard]] std::uint32_t shard_of_node(NodeId global) const;
  void advance_shards(Seconds target);
  void barrier_sync();
  void drain_completions();
  void reconcile_cross_flows();
  void complete_entry(FlowEntry& entry, double finished);
  /// Recomputes and applies one gateway link's effective capacity from the
  /// boundary/core fault state.
  void refresh_gateway_link(std::size_t shard, std::size_t gl_index);
  void refresh_agg_of_boundary_link(LinkId global_link);

  const Graph& graph_;
  Config config_;
  PodPartition partition_;
  std::vector<int> shard_of_pod_;
  std::vector<std::unique_ptr<Shard>> shards_;

  /// Boundary-link and core-switch fault state (S > 1 only; with one shard
  /// faults pass straight through to the verbatim-copy simulator).
  std::unordered_map<LinkId, BoundaryState> boundary_state_;
  std::unordered_map<NodeId, bool> core_enabled_;
  /// Boundary link -> (shard, gateway-link index) of the owning agg.
  std::unordered_map<LinkId, std::pair<std::uint32_t, std::uint32_t>>
      gateway_of_boundary_;
  /// Gateway links currently disabled because their effective capacity hit
  /// zero (keyed by (shard << 32) | gl_index).
  std::unordered_map<std::uint64_t, bool> gateway_link_disabled_;

  std::vector<FlowEntry> flows_;
  std::vector<FlowRecord> completed_;
  SummaryStat fct_;
  FlowId next_id_ = 1;
  Seconds now_{};
  /// Completed barrier count on the barrier_interval grid (the next grid
  /// barrier sits at (grid_cursor_ + 1) * barrier_interval).
  std::uint64_t grid_cursor_ = 0;
  std::uint32_t barrier_gen_ = 0;
  BarrierListener barrier_listener_;
};

}  // namespace netpp
