// Degraded-mode policies: what a power-proportional fabric does when
// hardware fails while capacity is parked.
//
// OCS topology tailoring (§4.2) powers switches off to fit the demand —
// which removes exactly the spare paths a failure would need. This
// controller closes the loop:
//
//   kNone            — baseline: parked capacity is never recalled; flows
//                      strand until the failed device is repaired.
//   kEmergencyWakeAll — any failure that leaves the (headroom-inflated)
//                      demands unsatisfiable wakes *every* parked switch
//                      after `wake_latency` (panic mode: maximal spare
//                      capacity, maximal power).
//   kRetailor        — re-run topology tailoring over the surviving fabric:
//                      wake only the parked switches the new solution needs
//                      (after `wake_latency`), park the ones it does not.
//
// `min_headroom` is the energy-vs-resilience guardrail: tailoring must keep
// the demands satisfiable even if they grew by this fraction, so the parked
// set always leaves spare capacity. 0 reproduces the §4.2 exact-fit
// behavior; larger values keep more switches on (less savings, faster
// recovery).
#pragma once

#include <cstdint>
#include <vector>

#include "netpp/faults/injector.h"
#include "netpp/mech/ocs.h"
#include "netpp/netsim/backend.h"
#include "netpp/sim/stats.h"
#include "netpp/topo/builders.h"

namespace netpp {

enum class DegradedPolicy : std::uint8_t {
  kNone,
  kEmergencyWakeAll,
  kRetailor,
};

struct DegradedModeConfig {
  DegradedPolicy policy = DegradedPolicy::kRetailor;
  TailorConfig tailor{};
  /// Demands are inflated by (1 + min_headroom) whenever the powered set is
  /// chosen, trading energy for spare capacity. Must be >= 0.
  double min_headroom = 0.0;
  /// Time to power a parked switch back on (OCS reconfig + switch boot).
  Seconds wake_latency{Seconds::from_milliseconds(50.0)};
  /// Re-tailor (re-park surplus switches) after each repair.
  bool retailor_on_recovery = true;
};

/// Owns the powered/parked bookkeeping for one simulated fabric. Attach its
/// `listener()` to a FaultInjector; call `tailor_initial()` before the run
/// to park the no-fault surplus.
class DegradedModeController {
 public:
  /// All references must outlive the controller. `demands` is the job's
  /// steady-state demand matrix (the tailoring input).
  DegradedModeController(SimulatorBackend& backend,
                         const BuiltTopology& topology,
                         std::vector<TrafficDemand> demands,
                         DegradedModeConfig config);

  /// Tailors the healthy fabric and parks the surplus switches (through the
  /// simulator, so it is safe mid-run too). Returns the tailoring result.
  TailorResult tailor_initial();

  /// Adapter for FaultInjector::set_listener.
  [[nodiscard]] FaultInjector::Listener listener();

  /// Applies the policy to one failure/repair event.
  void on_event(const FaultSpec& fault, bool recovery);

  /// Switches currently powered (enabled and not failed).
  [[nodiscard]] std::size_t powered_switches() const;

  /// Integral of the powered-switch count over sim time up to `until` —
  /// multiply by a per-switch power to get the energy the policy spent.
  [[nodiscard]] double powered_switch_seconds(Seconds until) const;

  /// Emergency wakes issued (scheduled wake-ups of parked switches).
  [[nodiscard]] std::size_t emergency_wakes() const {
    return emergency_wakes_;
  }

  /// Re-tailoring passes run (on failure or recovery).
  [[nodiscard]] std::size_t retailor_passes() const {
    return retailor_passes_;
  }

  [[nodiscard]] const DegradedModeConfig& config() const { return config_; }

  /// Optional event log (must outlive the controller): records emergency
  /// wakes, re-tailoring passes, and park/wake decisions as instants.
  void set_event_log(telemetry::EventLog* log) { events_ = log; }

  /// Optional registry gauge mirroring the powered-switch count; updated on
  /// every power change (the sampler tracks it for the watts time series).
  void set_powered_gauge(telemetry::Gauge gauge) {
    powered_gauge_ = gauge;
    note_power_change();
  }

  /// Serializes the controller's power bookkeeping: failed/desired/pending
  /// masks, the powered-count integrator, and the (time, FIFO seq) of every
  /// in-flight wake event. Call at an event boundary.
  void save_state(state::SnapshotWriter& w) const;
  /// Restores into a controller built over the same topology; re-registers
  /// the pending wake events with their original FIFO sequence numbers (the
  /// backend clock must already be restored). Runs check_invariants().
  void restore_state(state::SnapshotReader& r);
  /// Cross-checks the wake bookkeeping (every pending flag has exactly one
  /// scheduled wake) and that the powered-count integrator's current value
  /// matches the simulator's live enablement. Throws
  /// std::invalid_argument("DegradedModeController: constraint").
  void check_invariants() const;

 private:
  /// Demands scaled by (1 + min_headroom).
  [[nodiscard]] std::vector<TrafficDemand> inflated_demands() const;
  /// A router with exactly the failed devices masked (parked switches
  /// enabled), i.e. the hardware that could be powered right now.
  [[nodiscard]] Router surviving_router() const;
  /// A router mirroring the backend's live enablement (failures + parks).
  [[nodiscard]] Router live_router() const;
  /// Whether the live fabric (failures + parked switches + degraded links)
  /// still satisfies the headroom-inflated demands.
  [[nodiscard]] bool live_fabric_satisfiable() const;
  void park_now(NodeId sw);
  void wake_later(NodeId sw);
  /// Wake-event body: clears the pending record for `sw` and powers it on
  /// unless the wake was overtaken (re-parked or failed while booting). A
  /// named member (not an anonymous closure) so restores can re-register
  /// pending wakes verbatim.
  void complete_wake(NodeId sw);
  void retailor_and_apply();
  void wake_all_parked();
  void note_power_change();

  SimulatorBackend& backend_;
  const BuiltTopology& topology_;
  std::vector<TrafficDemand> demands_;
  DegradedModeConfig config_;

  std::vector<bool> failed_node_;
  std::vector<bool> failed_link_;
  /// The controller's target power state per node; a parked switch is a
  /// non-failed switch with desired_on_ == false.
  std::vector<bool> desired_on_;
  /// Wake already scheduled (a repeat failure must not double-schedule).
  std::vector<bool> wake_pending_;
  /// The scheduled wake event per pending switch (parallel bookkeeping to
  /// wake_pending_), kept so snapshots can serialize in-flight wakes.
  struct PendingWake {
    NodeId sw = kInvalidNode;
    SimulatorBackend::ControlId event = 0;
  };
  std::vector<PendingWake> pending_wakes_;
  TimeWeighted powered_count_;
  telemetry::EventLog* events_ = nullptr;
  telemetry::Gauge powered_gauge_;
  std::size_t emergency_wakes_ = 0;
  std::size_t retailor_passes_ = 0;
};

}  // namespace netpp
