// One-call fault-resilience experiment: topology + workload + fault schedule
// + degraded-mode policy -> ResilienceReport.
//
// This is the harness behind bench_fault_resilience, the `netpp_cli faults`
// subcommand, and the integration tests: it wires a simulator backend
// (single FlowSimulator or pod-sharded, per FaultExperimentConfig::backend),
// an optional initial tailoring pass, a FaultInjector, and a
// DegradedModeController together, runs the backend dry, and folds the
// observable state into a ResilienceInput/ResilienceReport. Everything is a
// pure function of its inputs (seeded faults, deterministic simulator), so
// two calls with the same arguments are bit-identical — including across
// sharded worker-thread counts.
#pragma once

#include <vector>

#include <memory>

#include "netpp/analysis/resilience.h"
#include "netpp/faults/degraded_mode.h"
#include "netpp/faults/fault_model.h"
#include "netpp/faults/injector.h"
#include "netpp/mech/ocs.h"
#include "netpp/netsim/backend.h"
#include "netpp/netsim/flowsim.h"
#include "netpp/topo/builders.h"

namespace netpp {

struct FaultExperimentConfig {
  /// Run the initial tailoring pass and park the surplus switches before the
  /// workload starts (the power-proportional operating point). When false,
  /// the whole fabric stays powered.
  bool tailor = false;
  /// Degraded-mode policy applied on faults (tailor config, headroom, wake
  /// latency live here too).
  DegradedModeConfig degraded{};
  /// Demand matrix used for tailoring / satisfiability checks. May be empty
  /// when `tailor` is false and the policy is kNone.
  std::vector<TrafficDemand> demands;
  /// Per-switch draw used to convert powered-switch-seconds to energy.
  Watts switch_power{350.0};
  FlowSimulator::Config sim{};
  /// Which simulator runs the experiment. The default single backend is
  /// bit-identical to the pre-seam harness; the sharded backend fires the
  /// fault/wake control events at bounded-lag barriers. On the sharded
  /// backend the per-shard simulators keep private registries (read the
  /// backend's sim_metrics()), while faults.* metrics still land in
  /// `telemetry` below.
  BackendConfig backend{};
  /// Optional telemetry bundle (must outlive the call). When set, the
  /// simulator/injector/controller share its registry and event log, the
  /// sampler (if a period is configured) records the fault-experiment time
  /// series (active/stranded flows, powered switches, fabric watts, mean
  /// utilization), and end-of-run totals land under "faults.*".
  telemetry::Telemetry* telemetry = nullptr;
};

struct FaultExperimentResult {
  ResilienceReport report;
  /// The initial tailoring outcome (feasible=false when `tailor` is off).
  TailorResult tailoring;
  FlowSimulator::ReallocStats realloc;
  std::size_t emergency_wakes = 0;
  std::size_t retailor_passes = 0;
  /// Switches still powered when the run ended.
  std::size_t powered_at_end = 0;
  /// Engine time when the run drained (last completion, repair, or wake).
  Seconds end{};
  /// Flow-completion-time summary of the run.
  SummaryStat fct;
};

/// Runs `workload` over `topology` while `schedule` fails/repairs devices.
/// `schedule` may be empty (the no-fault baseline). The simulator strands
/// unroutable flows so they can resume on recovery.
[[nodiscard]] FaultExperimentResult run_fault_experiment(
    const BuiltTopology& topology, const std::vector<FlowSpec>& workload,
    const FaultSchedule& schedule, const FaultExperimentConfig& config);

/// The resumable form of run_fault_experiment: owns the engine, router,
/// simulator, injector, and controller for one experiment, and can stop at
/// any event boundary, serialize everything, and later continue from a
/// restored snapshot — with the hard guarantee that the resumed run is
/// bit-identical to the uninterrupted one.
///
///   // straight-line
///   FaultExperimentRun a{topology, workload, schedule, config};
///   a.run();
///   auto result = a.finish();
///
///   // save mid-run, restore into a fresh object, continue
///   FaultExperimentRun b{topology, workload, schedule, config};
///   b.run_until(t);
///   state::SnapshotWriter w; b.save_state(w);
///   state::SnapshotReader r{w.take()};
///   FaultExperimentRun c{topology, workload, schedule, config, r};
///   c.run();  // finish() now bit-matches `result`
///
/// The restoring constructor must receive the same topology, workload,
/// schedule, and config the snapshot was taken with; mismatches are rejected
/// with std::invalid_argument, never undefined behavior.
class FaultExperimentRun {
 public:
  /// Fresh run: wires telemetry, runs the initial tailoring pass (when
  /// configured), arms the injector, and submits the workload. The topology
  /// and telemetry bundle must outlive the run.
  FaultExperimentRun(const BuiltTopology& topology,
                     const std::vector<FlowSpec>& workload,
                     const FaultSchedule& schedule,
                     const FaultExperimentConfig& config);

  /// Restored run: builds the same shell, then restores every component
  /// (engine clock first) from `r` and audits the invariants.
  FaultExperimentRun(const BuiltTopology& topology,
                     const std::vector<FlowSpec>& workload,
                     const FaultSchedule& schedule,
                     const FaultExperimentConfig& config,
                     state::SnapshotReader& r);

  FaultExperimentRun(const FaultExperimentRun&) = delete;
  FaultExperimentRun& operator=(const FaultExperimentRun&) = delete;

  /// Advances the backend to `until` (an event boundary: no callback is
  /// ever interrupted mid-flight).
  void run_until(Seconds until) { backend_->run_until(until); }
  /// Drains the backend (runs the experiment to the end).
  void run() { backend_->run(); }

  /// Serializes the whole experiment: orchestrator header, simulator,
  /// injector, controller, and (when a telemetry bundle is attached) the
  /// metric registry and sampler. Call at an event boundary.
  void save_state(state::SnapshotWriter& w) const;

  /// Folds the observable state into the experiment result (and refreshes
  /// the end-of-run telemetry metrics when a bundle is attached). Call
  /// after run(); calling mid-run reports the state so far.
  [[nodiscard]] FaultExperimentResult finish();

  [[nodiscard]] SimulatorBackend& backend() { return *backend_; }
  [[nodiscard]] const SimulatorBackend& backend() const { return *backend_; }
  /// Shard 0's simulator — the whole fabric on the single backend (the
  /// pre-seam accessor the tests and the state auditor use).
  [[nodiscard]] FlowSimulator& sim() { return backend_->shard_sim(0); }
  [[nodiscard]] DegradedModeController& controller() { return controller_; }
  [[nodiscard]] FaultInjector& injector() { return injector_; }
  [[nodiscard]] const TailorResult& tailoring() const { return tailoring_; }

  /// Runs every component's invariant audit (backend, controller); also
  /// invoked automatically at the end of a restore.
  void check_invariants() const;

 private:
  /// Shell shared by both constructors (member wiring, telemetry hookup).
  FaultExperimentRun(const BuiltTopology& topology,
                     const std::vector<FlowSpec>& workload,
                     const FaultSchedule& schedule,
                     const FaultExperimentConfig& config, bool fresh);
  void wire_telemetry();

  const BuiltTopology& topology_;
  FaultExperimentConfig config_;
  std::size_t flows_submitted_ = 0;
  std::unique_ptr<SimulatorBackend> backend_;
  DegradedModeController controller_;
  FaultInjector injector_;
  TailorResult tailoring_;
};

}  // namespace netpp
