// One-call fault-resilience experiment: topology + workload + fault schedule
// + degraded-mode policy -> ResilienceReport.
//
// This is the harness behind bench_fault_resilience, the `netpp_cli faults`
// subcommand, and the integration tests: it wires a FlowSimulator, an
// optional initial tailoring pass, a FaultInjector, and a
// DegradedModeController together, runs the engine dry, and folds the
// observable state into a ResilienceInput/ResilienceReport. Everything is a
// pure function of its inputs (seeded faults, deterministic simulator), so
// two calls with the same arguments are bit-identical.
#pragma once

#include <vector>

#include "netpp/analysis/resilience.h"
#include "netpp/faults/degraded_mode.h"
#include "netpp/faults/fault_model.h"
#include "netpp/faults/injector.h"
#include "netpp/mech/ocs.h"
#include "netpp/netsim/flowsim.h"
#include "netpp/topo/builders.h"

namespace netpp {

struct FaultExperimentConfig {
  /// Run the initial tailoring pass and park the surplus switches before the
  /// workload starts (the power-proportional operating point). When false,
  /// the whole fabric stays powered.
  bool tailor = false;
  /// Degraded-mode policy applied on faults (tailor config, headroom, wake
  /// latency live here too).
  DegradedModeConfig degraded{};
  /// Demand matrix used for tailoring / satisfiability checks. May be empty
  /// when `tailor` is false and the policy is kNone.
  std::vector<TrafficDemand> demands;
  /// Per-switch draw used to convert powered-switch-seconds to energy.
  Watts switch_power{350.0};
  FlowSimulator::Config sim{};
  /// Optional telemetry bundle (must outlive the call). When set, the
  /// simulator/injector/controller share its registry and event log, the
  /// sampler (if a period is configured) records the fault-experiment time
  /// series (active/stranded flows, powered switches, fabric watts, mean
  /// utilization), and end-of-run totals land under "faults.*".
  telemetry::Telemetry* telemetry = nullptr;
};

struct FaultExperimentResult {
  ResilienceReport report;
  /// The initial tailoring outcome (feasible=false when `tailor` is off).
  TailorResult tailoring;
  FlowSimulator::ReallocStats realloc;
  std::size_t emergency_wakes = 0;
  std::size_t retailor_passes = 0;
  /// Switches still powered when the run ended.
  std::size_t powered_at_end = 0;
  /// Engine time when the run drained (last completion, repair, or wake).
  Seconds end{};
  /// Flow-completion-time summary of the run.
  SummaryStat fct;
};

/// Runs `workload` over `topology` while `schedule` fails/repairs devices.
/// `schedule` may be empty (the no-fault baseline). The simulator strands
/// unroutable flows so they can resume on recovery.
[[nodiscard]] FaultExperimentResult run_fault_experiment(
    const BuiltTopology& topology, const std::vector<FlowSpec>& workload,
    const FaultSchedule& schedule, const FaultExperimentConfig& config);

}  // namespace netpp
