// Fault injector: binds a FaultSchedule to a running simulator backend.
//
// `arm()` schedules every failure and repair as control-plane events on the
// backend (netsim/backend.h). A failure applies the fault through the
// backend's dynamic topology API (so affected flows are re-routed or
// stranded immediately); a repair restores the device to the enablement
// state it had before the fault — a switch that was parked by a power
// mechanism stays parked after its repair unless a policy decides otherwise.
// On the single backend the control events ride the simulator's own engine
// (bit-identical to the pre-seam injector); on the sharded backend they
// fire at bounded-lag barriers, where cross-shard mutation is legal.
//
// Degraded-mode policies (emergency wake, re-tailoring — see
// faults/degraded_mode.h) attach as a listener and run after each
// failure/repair has been applied.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "netpp/faults/fault_model.h"
#include "netpp/netsim/backend.h"
#include "netpp/state/snapshot.h"

namespace netpp {

class FaultInjector {
 public:
  /// Called after a fault (recovery=false) or repair (recovery=true) has
  /// been applied to the simulator.
  using Listener = std::function<void(const FaultSpec&, bool recovery)>;

  /// One applied fault, with what it did to the traffic.
  struct Outcome {
    FaultSpec spec;
    /// Flows moved to a surviving path by this fault.
    std::uint64_t flows_rerouted = 0;
    /// Flows left with no path by this fault.
    std::uint64_t flows_stranded = 0;
  };

  /// `backend` must outlive the injector. The schedule is copied and
  /// validated against the backend's graph.
  FaultInjector(SimulatorBackend& backend, FaultSchedule schedule);

  /// Schedules all failure/repair events. Call once, before running the
  /// engine past the first failure time.
  void arm();

  void set_listener(Listener listener) { listener_ = std::move(listener); }

  /// Optional event log (must outlive the injector): each fault becomes an
  /// async span from application to repair, named after its kind.
  void set_event_log(telemetry::EventLog* log) { events_ = log; }

  /// Applied faults in application order.
  [[nodiscard]] const std::vector<Outcome>& log() const { return log_; }

  /// Faults applied so far (repairs not counted).
  [[nodiscard]] std::size_t faults_applied() const { return log_.size(); }

  [[nodiscard]] const FaultSchedule& schedule() const { return schedule_; }

  /// Serializes the injection progress: per-fault applied/repaired flags,
  /// the (time, FIFO seq) of every not-yet-fired failure/repair event, the
  /// pre-fault enablement map, and the application log. Call at an event
  /// boundary on an armed injector.
  void save_state(state::SnapshotWriter& w) const;
  /// Restores into a freshly constructed (un-armed) injector over the same
  /// schedule; re-registers the pending failure/repair events with their
  /// original FIFO sequence numbers (the backend clock must already be
  /// restored). The injector counts as armed afterwards.
  void restore_state(state::SnapshotReader& r);

 private:
  void apply(std::size_t index);
  void repair(std::size_t index);

  /// Event bookkeeping for one fault: the scheduled handles and whether each
  /// side already fired — what a snapshot needs to re-register exactly the
  /// still-pending events.
  struct Scheduled {
    SimulatorBackend::ControlId apply_event = 0;
    SimulatorBackend::ControlId repair_event = 0;
    bool applied = false;
    bool repaired = false;
  };

  SimulatorBackend& backend_;
  FaultSchedule schedule_;
  /// Device enablement before each fault, restored on repair.
  std::vector<bool> was_enabled_;
  std::vector<double> prior_factor_;
  std::vector<Scheduled> scheduled_;
  std::vector<Outcome> log_;
  Listener listener_;
  telemetry::EventLog* events_ = nullptr;
  bool armed_ = false;
};

}  // namespace netpp
