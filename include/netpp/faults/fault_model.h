// Fault model: what can break, when, and for how long.
//
// The §4 mechanisms all shrink the powered network to fit demand — which
// also shrinks path diversity and spare capacity. To answer the operator's
// "what happens when a link or switch dies while half the fabric is
// parked?", this header models failures as explicit, schedulable events:
//
//   kLinkDown      — a link carries nothing until repaired;
//   kSwitchDown    — a switch cannot transit traffic until repaired;
//   kLinkDegraded  — a link runs at a fraction of its capacity (flaky
//                    optics, FEC storms) until repaired.
//
// `FaultGenerator` draws a deterministic schedule from per-device-class
// exponential MTBF/MTTR (the standard renewal model), seeded per device so
// the trace is independent of iteration order and reusable across sweeps.
#pragma once

#include <cstdint>
#include <vector>

#include "netpp/topo/graph.h"
#include "netpp/units.h"

namespace netpp {

enum class FaultKind : std::uint8_t {
  kLinkDown,
  kSwitchDown,
  kLinkDegraded,
};

/// One failure with its recovery time.
struct FaultSpec {
  FaultKind kind = FaultKind::kLinkDown;
  NodeId node = kInvalidNode;  ///< kSwitchDown: the failed switch
  LinkId link = kInvalidLink;  ///< link faults: the failed link
  Seconds at{};                ///< failure instant
  Seconds recover_at{};        ///< repair instant (> at)
  /// kLinkDegraded: surviving fraction of nominal capacity, in (0, 1).
  double capacity_factor = 1.0;
};

/// A time-ordered list of faults. Devices never overlap themselves (each
/// device's faults form a renewal process); distinct devices may fail
/// concurrently.
struct FaultSchedule {
  std::vector<FaultSpec> faults;

  [[nodiscard]] bool empty() const { return faults.empty(); }
  [[nodiscard]] std::size_t size() const { return faults.size(); }

  /// Rejects unsorted events, non-positive repair times, out-of-range
  /// capacity factors, and device ids outside `graph`.
  void validate(const Graph& graph) const;
};

/// Exponential MTBF/MTTR parameters for one device class.
struct DeviceReliability {
  /// Mean time between failures; <= 0 disables failures for the class.
  Seconds mtbf{};
  /// Mean time to repair (must be > 0 when the class can fail).
  Seconds mttr{};
};

struct FaultGeneratorConfig {
  /// Switch-kind nodes (hosts never fail; they are traffic endpoints).
  DeviceReliability switches{Seconds{0.0}, Seconds{10.0}};
  DeviceReliability links{Seconds{0.0}, Seconds{10.0}};
  /// Fraction of link faults that degrade capacity instead of a full
  /// outage, in [0, 1].
  double degraded_fraction = 0.0;
  /// Capacity factor a degraded link drops to, in (0, 1).
  double degraded_capacity_factor = 0.25;
  /// Faults are generated in [0, horizon); repairs may land after it.
  Seconds horizon{};
  std::uint64_t seed = 0x9e3779b97f4a7c15ULL;
};

/// Deterministic fault-schedule generator. Each device gets an independent
/// Rng stream derived from (seed, device class, device id), so adding or
/// removing devices never perturbs the others' fault times.
class FaultGenerator {
 public:
  explicit FaultGenerator(FaultGeneratorConfig config);

  /// Draws the schedule for all switch-kind nodes and all links of `graph`,
  /// sorted by failure time (ties broken by device id).
  [[nodiscard]] FaultSchedule generate(const Graph& graph) const;

  [[nodiscard]] const FaultGeneratorConfig& config() const { return config_; }

 private:
  FaultGeneratorConfig config_;
};

}  // namespace netpp
