// Exporters: Chrome trace_event JSON (loadable in Perfetto and
// chrome://tracing), a self-describing JSON metrics dump, and CSV for the
// sampled time series. All return the serialized document as a string;
// write_file() is the shared "save it" helper with one-line diagnostics.
#pragma once

#include <string>
#include <vector>

#include "netpp/telemetry/event_log.h"
#include "netpp/telemetry/metrics.h"
#include "netpp/telemetry/sampler.h"

namespace netpp::telemetry {

/// Serializes the event log (and, when given, the sampler's series as
/// counter tracks) into Chrome trace_event JSON. Sim-time seconds map to
/// trace microseconds; each category gets its own named thread track and
/// span begin/end pairs are matched per (category, id) so overlapping spans
/// render as separate slices.
[[nodiscard]] std::string to_chrome_trace_json(
    const EventLog& log, const TimeSeriesSampler* sampler = nullptr);

/// Serializes every registered metric into a self-describing JSON document:
/// {"netpp_metrics_version": 1, "metrics": [{"name", "kind", "unit",
/// "help", "value", ...}]}. Histograms carry count/sum/min/max plus
/// bounds/buckets arrays.
[[nodiscard]] std::string to_metrics_json(const MetricRegistry& registry);

/// Same document over already-snapshotted samples — the form merged
/// multi-registry sources produce (e.g. ShardedFlowSimulator's
/// merged_metrics()). Counters serialize from the exact integer `count`
/// field, so a sum of per-shard counters never round-trips through a
/// double; sample order is preserved verbatim.
[[nodiscard]] std::string to_metrics_json(
    const std::vector<MetricSample>& samples);

/// Serializes the sampler's rows as CSV: header "time_s,<series...>", one
/// row per sample.
[[nodiscard]] std::string to_csv(const TimeSeriesSampler& sampler);

/// Writes `contents` to `path`. On failure returns false and sets `error`
/// to a one-line diagnostic naming the path.
bool write_file(const std::string& path, const std::string& contents,
                std::string& error);

}  // namespace netpp::telemetry
