// Time-series sampler: snapshots a chosen set of registry gauges at a
// sim-time cadence, producing aligned (time, value...) rows for the CSV and
// Chrome counter-track exporters.
//
// Two ways to drive it:
//  - Event-driven (preferred inside experiments): call maybe_sample(now)
//    from an existing simulation hook (e.g. FlowSimulator's load listener).
//    A row is taken at most once per period; the simulation's event horizon
//    is never extended, so attaching the sampler cannot change any
//    simulated result.
//  - Self-arming (standalone demos): arm(engine, until) schedules its own
//    sampling events every period up to `until`.
//
// The sampler reads gauge slots owned by the MetricRegistry, which must
// outlive it (the Telemetry bundle guarantees this).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "netpp/sim/engine.h"
#include "netpp/state/snapshot.h"
#include "netpp/telemetry/metrics.h"
#include "netpp/units.h"

namespace netpp::telemetry {

class TimeSeriesSampler {
 public:
  explicit TimeSeriesSampler(MetricRegistry& registry) : registry_(registry) {}
  TimeSeriesSampler(const TimeSeriesSampler&) = delete;
  TimeSeriesSampler& operator=(const TimeSeriesSampler&) = delete;

  /// Sampling period; <= 0 disables the sampler (maybe_sample becomes a
  /// no-op). Must be set before the first sample.
  void set_period(Seconds period);
  [[nodiscard]] Seconds period() const { return period_; }
  [[nodiscard]] bool enabled() const { return period_.value() > 0.0; }

  /// Adds the named registry gauge (registering it if needed) to the
  /// sampled set. Tracking the same name twice is a no-op.
  void track(const std::string& gauge_name, const std::string& unit = "",
             const std::string& help = "");

  /// Whether maybe_sample(now) would take a row — lets callers compute
  /// expensive gauge inputs (per-link scans) only when a row is due.
  [[nodiscard]] bool due(Seconds now) const {
    return period_.value() > 0.0 &&
           (times_.empty() || now.value() >= next_due_);
  }

  /// Takes a row if at least one period elapsed since the last row (always
  /// samples the first call). Cheap when not due: two compares.
  void maybe_sample(Seconds now) {
    if (due(now)) sample(now);
  }

  /// Unconditionally takes a row at `now`.
  void sample(Seconds now);

  /// Schedules self-rearming sampling events on `engine` every period until
  /// `until` (inclusive of the start, exclusive of times past `until`).
  /// The engine must outlive the run. Requires a positive period.
  void arm(SimEngine& engine, Seconds until);

  [[nodiscard]] const std::vector<Seconds>& times() const { return times_; }
  [[nodiscard]] std::size_t num_series() const { return series_.size(); }
  [[nodiscard]] const std::string& series_name(std::size_t i) const {
    return series_[i].name;
  }
  /// Sampled values of series `i`, aligned with times().
  [[nodiscard]] const std::vector<double>& series_values(std::size_t i) const {
    return series_[i].values;
  }

  /// Serializes period, cadence state, and every series' rows. Only the
  /// event-driven mode round-trips; an armed sampler's self-rearming events
  /// are not snapshotted.
  void save_state(state::SnapshotWriter& w) const;
  /// Restores a save_state() image; re-tracks each series by name against
  /// this sampler's registry.
  void restore_state(state::SnapshotReader& r);

 private:
  struct Series {
    std::string name;
    Gauge gauge;
    std::vector<double> values;
  };

  MetricRegistry& registry_;
  Seconds period_{0.0};
  double next_due_ = 0.0;
  std::vector<Seconds> times_;
  std::vector<Series> series_;
};

}  // namespace netpp::telemetry
