// Typed metric registry: named Counter/Gauge/Histogram instruments.
//
// The registry owns the storage (slots with stable addresses); instruments
// are cheap value-type handles that bump the slot directly — one pointer
// indirection per update, no hashing, no heap work, no locks. A
// default-constructed handle is detached (the "null sink"): every update is
// a tested-branch no-op, so instrumented code runs unchanged whether or not
// telemetry is attached.
//
// Registration is idempotent per (name, kind): asking for an existing
// instrument returns a handle to the same slot, so several components (or
// several simulator instances in one experiment) can share one series.
// Asking for an existing name with a different kind throws.
//
// Not thread-safe: one registry belongs to one experiment thread, matching
// SimEngine. Parallel sweeps give each scenario its own registry.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "netpp/state/snapshot.h"

namespace netpp::telemetry {

enum class MetricKind { kCounter, kGauge, kHistogram };

/// Returns "counter" / "gauge" / "histogram".
[[nodiscard]] const char* to_string(MetricKind kind);

namespace detail {

struct CounterSlot {
  std::uint64_t value = 0;
};

struct GaugeSlot {
  double value = 0.0;
};

struct HistogramSlot {
  /// Upper bounds of the buckets, strictly increasing; an implicit final
  /// bucket catches everything above bounds.back().
  std::vector<double> bounds;
  std::vector<std::uint64_t> buckets;  // bounds.size() + 1 entries
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  // valid only when count > 0
  double max = 0.0;  // valid only when count > 0
};

}  // namespace detail

/// Monotonically increasing counter handle.
class Counter {
 public:
  Counter() = default;

  void inc(std::uint64_t n = 1) {
    if (slot_ != nullptr) slot_->value += n;
  }
  /// Overwrites the value — for mirroring an externally maintained counter
  /// (e.g. RouteCacheStats) into the registry. The series stays monotone as
  /// long as the source is.
  void set(std::uint64_t value) {
    if (slot_ != nullptr) slot_->value = value;
  }
  [[nodiscard]] std::uint64_t value() const {
    return slot_ != nullptr ? slot_->value : 0;
  }
  [[nodiscard]] bool attached() const { return slot_ != nullptr; }

 private:
  friend class MetricRegistry;
  explicit Counter(detail::CounterSlot* slot) : slot_(slot) {}
  detail::CounterSlot* slot_ = nullptr;
};

/// Point-in-time value handle.
class Gauge {
 public:
  Gauge() = default;

  void set(double value) {
    if (slot_ != nullptr) slot_->value = value;
  }
  void add(double delta) {
    if (slot_ != nullptr) slot_->value += delta;
  }
  [[nodiscard]] double value() const {
    return slot_ != nullptr ? slot_->value : 0.0;
  }
  [[nodiscard]] bool attached() const { return slot_ != nullptr; }

 private:
  friend class MetricRegistry;
  friend class TimeSeriesSampler;
  explicit Gauge(detail::GaugeSlot* slot) : slot_(slot) {}
  detail::GaugeSlot* slot_ = nullptr;
};

/// Fixed-bucket histogram handle (count/sum/min/max plus bucket counts).
class Histogram {
 public:
  Histogram() = default;

  void observe(double value) {
    if (slot_ == nullptr) return;
    if (slot_->count == 0 || value < slot_->min) slot_->min = value;
    if (slot_->count == 0 || value > slot_->max) slot_->max = value;
    ++slot_->count;
    slot_->sum += value;
    std::size_t b = 0;
    while (b < slot_->bounds.size() && value > slot_->bounds[b]) ++b;
    ++slot_->buckets[b];
  }
  [[nodiscard]] std::uint64_t count() const {
    return slot_ != nullptr ? slot_->count : 0;
  }
  [[nodiscard]] double sum() const {
    return slot_ != nullptr ? slot_->sum : 0.0;
  }
  [[nodiscard]] bool attached() const { return slot_ != nullptr; }

 private:
  friend class MetricRegistry;
  explicit Histogram(detail::HistogramSlot* slot) : slot_(slot) {}
  detail::HistogramSlot* slot_ = nullptr;
};

/// A metric's full state, as read by snapshot() and the exporters.
struct MetricSample {
  std::string name;
  std::string unit;  // free-form: "flows", "joules", "seconds", ...
  std::string help;
  MetricKind kind = MetricKind::kCounter;
  /// Counter value (as double) or gauge value; for histograms, the sum.
  double value = 0.0;
  /// Histogram detail (empty bounds/buckets for scalar kinds).
  std::uint64_t count = 0;
  double min = 0.0;
  double max = 0.0;
  std::vector<double> bounds;
  std::vector<std::uint64_t> buckets;
};

class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /// Registers (or finds) a counter named `name`. Unit/help are recorded on
  /// first registration and kept thereafter.
  Counter counter(const std::string& name, const std::string& unit = "",
                  const std::string& help = "");
  Gauge gauge(const std::string& name, const std::string& unit = "",
              const std::string& help = "");
  /// Registers a histogram with the given strictly-increasing bucket upper
  /// bounds (an overflow bucket is added automatically). On re-registration
  /// the existing bounds win; passing different bounds throws.
  Histogram histogram(const std::string& name, std::vector<double> bounds,
                      const std::string& unit = "",
                      const std::string& help = "");

  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  /// Reads every registered metric, in registration order.
  [[nodiscard]] std::vector<MetricSample> snapshot() const;

  /// Convenience lookups for tests and views; throw std::out_of_range when
  /// the name is absent or of a different kind.
  [[nodiscard]] std::uint64_t counter_value(const std::string& name) const;
  [[nodiscard]] double gauge_value(const std::string& name) const;

  /// Serializes every metric (identity + values) in registration order.
  void save_state(state::SnapshotWriter& w) const;
  /// Restores a save_state() image: finds-or-creates each metric in saved
  /// order and overwrites its value(s). Instruments already registered keep
  /// their slots (handles stay valid); kind or histogram-bound mismatches
  /// throw the usual "MetricRegistry: ..." errors.
  void restore_state(state::SnapshotReader& r);

 private:
  struct Entry {
    std::string name;
    std::string unit;
    std::string help;
    MetricKind kind;
    detail::CounterSlot counter;
    detail::GaugeSlot gauge;
    detail::HistogramSlot histogram;
  };

  Entry& find_or_create(const std::string& name, MetricKind kind,
                        const std::string& unit, const std::string& help);
  [[nodiscard]] const Entry& find(const std::string& name,
                                  MetricKind kind) const;

  // deque: slot addresses must survive registration of later metrics.
  std::deque<Entry> entries_;
  std::unordered_map<std::string, Entry*> index_;
};

}  // namespace netpp::telemetry
