// The telemetry bundle: one MetricRegistry + EventLog + TimeSeriesSampler
// with aligned lifetimes, configured once and handed by pointer to the
// layers being instrumented (FlowSimulator, fault experiments, mechanism
// drivers). A null Telemetry* everywhere means "no telemetry": instruments
// are detached handles and event recording is branch-out no-ops.
#pragma once

#include "netpp/telemetry/event_log.h"
#include "netpp/telemetry/metrics.h"
#include "netpp/telemetry/sampler.h"
#include "netpp/units.h"

namespace netpp::telemetry {

struct TelemetryConfig {
  /// Record the structured event log (spans/instants).
  bool events = true;
  /// Time-series sampling cadence; 0 disables sampling.
  Seconds sample_period{0.0};

  /// Throws std::invalid_argument ("TelemetryConfig: ...") on bad values.
  void validate() const;
};

class Telemetry {
 public:
  explicit Telemetry(TelemetryConfig config = {});

  [[nodiscard]] const TelemetryConfig& config() const { return config_; }

  [[nodiscard]] MetricRegistry& metrics() { return metrics_; }
  [[nodiscard]] const MetricRegistry& metrics() const { return metrics_; }
  [[nodiscard]] EventLog& events() { return events_; }
  [[nodiscard]] const EventLog& events() const { return events_; }
  [[nodiscard]] TimeSeriesSampler& sampler() { return sampler_; }
  [[nodiscard]] const TimeSeriesSampler& sampler() const { return sampler_; }

 private:
  TelemetryConfig config_;
  MetricRegistry metrics_;
  EventLog events_;
  TimeSeriesSampler sampler_;
};

}  // namespace netpp::telemetry
