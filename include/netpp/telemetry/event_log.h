// Structured event log: timestamped instants and (possibly overlapping)
// spans keyed on sim-time, recorded as flat PODs and exported to Chrome
// trace_event JSON (Perfetto / chrome://tracing) after the run.
//
// The log is disabled by default; every record call starts with one branch
// on the enabled flag, so instrumented hot paths cost nothing measurable
// when tracing is off. Names and categories are `const char*` and must
// point at string literals (or anything outliving the log) — recording
// never copies or allocates beyond the event vector's amortized growth.
//
// Spans are "async" in trace_event terms: begin/end pairs matched by
// (category, id), so overlapping spans (two concurrent link faults, many
// in-flight flows) render as separate slices. Callers supply the id from a
// natural key (flow id, fault index).
#pragma once

#include <cstdint>
#include <vector>

#include "netpp/units.h"

namespace netpp::telemetry {

struct TraceEvent {
  const char* category;        // literal, e.g. "faults"
  const char* name;            // literal, e.g. "fault.switch_down"
  char phase;                  // 'i' instant, 'b'/'e' async span begin/end
  Seconds at{};                // sim-time
  std::uint64_t id = 0;        // span correlation id ('b'/'e' only)
  const char* arg_name = nullptr;  // optional single numeric argument
  double arg_value = 0.0;
};

class EventLog {
 public:
  EventLog() = default;
  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  void set_enabled(bool enabled) { enabled_ = enabled; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  void instant(const char* category, const char* name, Seconds at) {
    if (!enabled_) return;
    events_.push_back({category, name, 'i', at, 0, nullptr, 0.0});
  }
  void instant(const char* category, const char* name, Seconds at,
               const char* arg_name, double arg_value) {
    if (!enabled_) return;
    events_.push_back({category, name, 'i', at, 0, arg_name, arg_value});
  }
  void begin_span(const char* category, const char* name, Seconds at,
                  std::uint64_t id) {
    if (!enabled_) return;
    events_.push_back({category, name, 'b', at, id, nullptr, 0.0});
  }
  void begin_span(const char* category, const char* name, Seconds at,
                  std::uint64_t id, const char* arg_name, double arg_value) {
    if (!enabled_) return;
    events_.push_back({category, name, 'b', at, id, arg_name, arg_value});
  }
  void end_span(const char* category, const char* name, Seconds at,
                std::uint64_t id) {
    if (!enabled_) return;
    events_.push_back({category, name, 'e', at, id, nullptr, 0.0});
  }

  [[nodiscard]] const std::vector<TraceEvent>& events() const {
    return events_;
  }
  [[nodiscard]] std::size_t size() const { return events_.size(); }
  void clear() { events_.clear(); }

 private:
  bool enabled_ = false;
  std::vector<TraceEvent> events_;
};

}  // namespace netpp::telemetry
