// Parallel scenario sweeps.
//
// Every bench/what-if binary is a sweep: run N independent scenario
// configurations, collect one result per scenario, print them in order.
// SweepRunner fans those scenarios out over a std::thread pool while
// keeping runs bit-reproducible: each scenario gets its own Rng seeded as a
// pure function of (base_seed, scenario index), and results land in a
// pre-sized vector slot per scenario, so neither thread count nor
// scheduling order can change any output.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "netpp/sim/random.h"

namespace netpp {

struct SweepConfig {
  /// Worker-thread ceiling; 0 means the shared thread budget
  /// (netpp/sim/thread_budget.h — NETPP_THREAD_BUDGET, else hardware
  /// concurrency). Each run additionally leases its workers from that
  /// budget, so nested pools degrade gracefully instead of oversubscribing.
  std::size_t num_threads = 0;
  /// Base seed all per-scenario seeds derive from.
  std::uint64_t base_seed = 0x9e3779b97f4a7c15ULL;
};

class SweepRunner {
 public:
  /// Called after each scenario finishes, as (scenarios done so far, total).
  /// Invocations are serialized (one at a time, in completion order — not
  /// index order) and run on worker threads, so keep it cheap: progress
  /// lines to stderr, a counter bump. Results are unaffected.
  using ProgressCallback =
      std::function<void(std::size_t done, std::size_t total)>;

  explicit SweepRunner(SweepConfig config = {});

  void set_progress_callback(ProgressCallback callback) {
    progress_ = std::move(callback);
  }

  /// The seed scenario `index` runs with: SplitMix64 over (base_seed,
  /// index), independent of thread count and execution order.
  [[nodiscard]] std::uint64_t scenario_seed(std::size_t index) const;

  /// Runs `task(index)` for every index in [0, n) across the pool. Blocks
  /// until all scenarios finish. If tasks throw, the exception from the
  /// smallest failing index is rethrown after the pool drains.
  void run_indexed(std::size_t n,
                   const std::function<void(std::size_t)>& task);

  /// Runs `task(index, rng)` for every index in [0, n) and returns the
  /// results in index order. `rng` is deterministically seeded per scenario.
  template <typename R>
  std::vector<R> map(std::size_t n,
                     const std::function<R(std::size_t, Rng&)>& task) {
    std::vector<R> results(n);
    run_indexed(n, [&](std::size_t index) {
      Rng rng{scenario_seed(index)};
      results[index] = task(index, rng);
    });
    return results;
  }

  [[nodiscard]] std::size_t num_threads() const { return num_threads_; }

 private:
  std::size_t num_threads_;
  std::uint64_t base_seed_;
  ProgressCallback progress_;
};

}  // namespace netpp
