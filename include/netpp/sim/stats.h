// Online statistics for simulations: scalar summaries, time-weighted means
// (for utilization/power traces), and fixed-bin histograms with quantile
// queries (for latency distributions).
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "netpp/units.h"

namespace netpp {

/// Scalar summary: count / mean / variance (Welford) / min / max.
class SummaryStat {
 public:
  void add(double x);

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;  ///< sample variance (n-1)
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }

  /// Raw Welford accumulator (snapshot support; not derivable bitwise from
  /// variance()).
  [[nodiscard]] double m2() const { return m2_; }
  /// Raw extrema including the +/-inf empty-state sentinels (min()/max()
  /// report 0 when empty, which is not bitwise restorable).
  [[nodiscard]] double raw_min() const { return min_; }
  [[nodiscard]] double raw_max() const { return max_; }

  /// Snapshot restore: overwrites every accumulator verbatim.
  void restore(std::uint64_t n, double mean, double m2, double sum, double min,
               double max) {
    n_ = n;
    mean_ = mean;
    m2_ = m2;
    sum_ = sum;
    min_ = min;
    max_ = max;
  }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Piecewise-constant signal integrated over time: record value changes and
/// query the time-weighted average (e.g. link utilization, power draw).
class TimeWeighted {
 public:
  /// Starts the signal at `initial` at time `start`.
  explicit TimeWeighted(double initial = 0.0, Seconds start = Seconds{0.0});

  /// Records that the signal changed to `value` at time `at` (monotone
  /// non-decreasing across calls).
  void set(Seconds at, double value);

  [[nodiscard]] double current() const { return value_; }

  /// Integral of the signal from start to `until` (must be >= last change).
  [[nodiscard]] double integral(Seconds until) const;

  /// Time-weighted mean over [start, until].
  [[nodiscard]] double average(Seconds until) const;

  [[nodiscard]] Seconds last_change() const { return last_; }
  [[nodiscard]] Seconds start() const { return start_; }
  /// Integral accumulated through last_change() (snapshot support).
  [[nodiscard]] double accumulated() const { return integral_; }

  /// Snapshot restore: overwrites the signal state verbatim.
  void restore(Seconds start, Seconds last, double value, double integral) {
    start_ = start;
    last_ = last;
    value_ = value;
    integral_ = integral;
  }

 private:
  Seconds start_;
  Seconds last_;
  double value_;
  double integral_ = 0.0;
};

/// Fixed-bin histogram over [lo, hi) with overflow/underflow buckets and
/// linear-interpolated quantiles.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);

  [[nodiscard]] std::uint64_t count() const { return total_; }
  [[nodiscard]] std::uint64_t underflow() const { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const { return overflow_; }
  [[nodiscard]] std::uint64_t bin_count(std::size_t i) const {
    return bins_.at(i);
  }
  [[nodiscard]] std::size_t num_bins() const { return bins_.size(); }

  /// q in [0, 1]; linear interpolation inside the containing bin. Values in
  /// the under/overflow buckets clamp to lo/hi.
  [[nodiscard]] double quantile(double q) const;

  /// Snapshot restore: `bins` must match the constructed bin count.
  void restore(const std::vector<std::uint64_t>& bins, std::uint64_t underflow,
               std::uint64_t overflow, std::uint64_t total);

 private:
  double lo_, hi_, width_;
  std::vector<std::uint64_t> bins_;
  std::uint64_t underflow_ = 0, overflow_ = 0, total_ = 0;
};

}  // namespace netpp
