// Deterministic random number generation for simulations.
//
// xoshiro256** seeded via SplitMix64 — fast, high-quality, and fully
// reproducible across platforms (unlike std::default_random_engine, whose
// distributions are implementation-defined). All distribution sampling is
// implemented here so that identical seeds yield identical traces on every
// toolchain.
#pragma once

#include <array>
#include <cstdint>

namespace netpp {

/// xoshiro256** PRNG with SplitMix64 seeding.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Exponential with the given rate (mean 1/rate).
  double exponential(double rate);

  /// Standard normal via Box-Muller (no state caching; deterministic).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Bounded Pareto with shape `alpha` on [lo, hi] — heavy-tailed flow
  /// sizes.
  double bounded_pareto(double alpha, double lo, double hi);

  /// Poisson-distributed count with the given mean (Knuth for small means,
  /// normal approximation above 64).
  std::uint64_t poisson(double mean);

  /// Bernoulli trial.
  bool bernoulli(double p);

  /// Creates an independent child stream (for per-component determinism).
  Rng split();

  /// Raw xoshiro256** state (snapshot support).
  [[nodiscard]] const std::array<std::uint64_t, 4>& state() const {
    return s_;
  }
  /// Snapshot restore: overwrites the generator state verbatim.
  void set_state(const std::array<std::uint64_t, 4>& s) { s_ = s; }

 private:
  std::array<std::uint64_t, 4> s_{};
};

}  // namespace netpp
