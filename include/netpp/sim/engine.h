// Discrete-event simulation engine.
//
// A minimal, deterministic event-queue engine used by the flow-level network
// simulator and the §4 mechanism models. Events are closures scheduled at
// absolute simulated times; ties are broken by insertion order (FIFO), which
// keeps runs reproducible.
//
// Internals are built for high event churn (the flow simulator schedules and
// cancels a completion candidate per rate change): the priority queue holds
// small POD entries (time, FIFO seq, slot) while the callbacks live in a
// slot table recycled through a free list, and cancellation is an O(1)
// generation check instead of a hash-set erase. Event handles encode
// (generation, slot); a handle goes stale as soon as its event fires or is
// cancelled, and the generation tag keeps recycled slots from resurrecting
// stale handles.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "netpp/units.h"

namespace netpp {

/// Discrete-event engine. Not thread-safe; one engine per simulation.
class SimEngine {
 public:
  using Callback = std::function<void()>;
  /// Opaque handle used to cancel a scheduled event. Valid until the event
  /// fires or is cancelled.
  using EventId = std::uint64_t;

  SimEngine() = default;
  SimEngine(const SimEngine&) = delete;
  SimEngine& operator=(const SimEngine&) = delete;

  /// Current simulated time. Starts at 0.
  [[nodiscard]] Seconds now() const { return now_; }

  /// Schedules `fn` to run at absolute time `at` (>= now).
  EventId schedule_at(Seconds at, Callback fn);

  /// Schedules `fn` to run `delay` (>= 0) after the current time.
  EventId schedule_after(Seconds delay, Callback fn);

  /// Cancels a pending event. Returns false if it already fired or was
  /// cancelled before.
  bool cancel(EventId id);

  /// Absolute time of a pending event. Throws std::logic_error on a stale
  /// handle. Snapshot support: components record (time, seq) of their
  /// pending events so a restore can re-register them verbatim.
  [[nodiscard]] Seconds event_time(EventId id) const;

  /// FIFO tie-break sequence number of a pending event. Throws
  /// std::logic_error on a stale handle.
  [[nodiscard]] std::uint64_t event_seq(EventId id) const;

  /// Next FIFO sequence number to be assigned (monotone event counter).
  [[nodiscard]] std::uint64_t next_seq() const { return next_seq_; }

  /// Snapshot restore: drops every pending event and resets the clock and
  /// the FIFO counter to the snapshotted values. Components re-register
  /// their pending events afterwards via restore_event_at().
  void restore_clock(Seconds now, std::uint64_t next_seq);

  /// Snapshot restore: schedules `fn` at `at` with the original FIFO
  /// sequence number `seq` (< next_seq()), so restored events fire in
  /// exactly the order of the uninterrupted run regardless of the order
  /// components re-register them in.
  EventId restore_event_at(Seconds at, std::uint64_t seq, Callback fn);

  /// Runs until the queue drains. Returns the number of events executed.
  std::size_t run();

  /// Runs events up to and including time `until`; the clock is left at
  /// `until` even if the queue drained earlier. Returns events executed.
  std::size_t run_until(Seconds until);

  /// Executes the single next event, if any. Returns whether one ran.
  bool step();

  [[nodiscard]] bool empty() const { return live_ == 0; }
  [[nodiscard]] std::size_t pending_events() const { return live_; }

  /// Absolute time of the next live event, or +infinity when the queue is
  /// empty. Prunes stale (cancelled/superseded) queue entries as a side
  /// effect, which is why this is non-const; the live event set is
  /// untouched.
  [[nodiscard]] double next_event_time();

 private:
  struct Entry {
    double at;
    std::uint64_t seq;  // FIFO tie-break
    std::uint32_t slot;
    std::uint32_t gen;
    bool operator>(const Entry& other) const {
      if (at != other.at) return at > other.at;
      return seq > other.seq;
    }
  };
  struct Slot {
    Callback fn;
    double at = 0.0;         // scheduled time (for snapshotting)
    std::uint64_t seq = 0;   // FIFO tie-break (for snapshotting)
    std::uint32_t gen = 0;   // bumped on every (re)allocation of the slot
    bool live = false;
  };

  bool pop_and_run();
  const Slot& checked_slot(EventId id) const;
  EventId push_event(double at, std::uint64_t seq, Callback fn);

  Seconds now_{};
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::size_t live_ = 0;  // scheduled, not yet fired/cancelled
};

}  // namespace netpp
