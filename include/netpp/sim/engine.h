// Discrete-event simulation engine.
//
// A minimal, deterministic event-queue engine used by the flow-level network
// simulator and the §4 mechanism models. Events are closures scheduled at
// absolute simulated times; ties are broken by insertion order (FIFO), which
// keeps runs reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "netpp/units.h"

namespace netpp {

/// Discrete-event engine. Not thread-safe; one engine per simulation.
class SimEngine {
 public:
  using Callback = std::function<void()>;
  /// Handle used to cancel a scheduled event. Valid until the event fires.
  using EventId = std::uint64_t;

  SimEngine() = default;
  SimEngine(const SimEngine&) = delete;
  SimEngine& operator=(const SimEngine&) = delete;

  /// Current simulated time. Starts at 0.
  [[nodiscard]] Seconds now() const { return now_; }

  /// Schedules `fn` to run at absolute time `at` (>= now).
  EventId schedule_at(Seconds at, Callback fn);

  /// Schedules `fn` to run `delay` (>= 0) after the current time.
  EventId schedule_after(Seconds delay, Callback fn);

  /// Cancels a pending event. Returns false if it already fired or was
  /// cancelled before.
  bool cancel(EventId id);

  /// Runs until the queue drains. Returns the number of events executed.
  std::size_t run();

  /// Runs events up to and including time `until`; the clock is left at
  /// `until` even if the queue drained earlier. Returns events executed.
  std::size_t run_until(Seconds until);

  /// Executes the single next event, if any. Returns whether one ran.
  bool step();

  [[nodiscard]] bool empty() const { return pending_.empty(); }
  [[nodiscard]] std::size_t pending_events() const { return pending_.size(); }

 private:
  struct Entry {
    double at;
    std::uint64_t seq;  // FIFO tie-break and cancellation handle
    Callback fn;
    bool operator>(const Entry& other) const {
      if (at != other.at) return at > other.at;
      return seq > other.seq;
    }
  };

  bool pop_and_run();

  Seconds now_{};
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
  std::unordered_set<EventId> pending_;  // scheduled, not yet fired/cancelled
};

}  // namespace netpp
