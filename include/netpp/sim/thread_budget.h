// Process-wide worker-thread budget.
//
// Several components spin up worker pools: SweepRunner fans scenarios out,
// ShardedFlowSimulator runs shard windows on workers. When they nest — a
// sweep whose scenarios each run a sharded simulation — independently sized
// pools oversubscribe the machine (threads^2). This header is the single
// knob both draw from: a budget of concurrent workers (default: hardware
// concurrency, overridable programmatically or via NETPP_THREAD_BUDGET),
// and an RAII lease that carves a share out of it.
//
// Leases only size pools; they never change results. Every pool built on
// top of this (SweepRunner, the sharded barrier loop) is bit-deterministic
// in its worker count by construction, so a smaller grant under contention
// affects wall-clock only.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <thread>

namespace netpp::thread_budget {

namespace detail {

inline std::atomic<std::size_t>& configured() {
  static std::atomic<std::size_t> value{0};  // 0 = unset, use the default
  return value;
}

inline std::atomic<std::size_t>& leased() {
  static std::atomic<std::size_t> value{0};
  return value;
}

inline std::size_t default_pool_size() {
  static const std::size_t value = [] {
    if (const char* env = std::getenv("NETPP_THREAD_BUDGET")) {
      const long parsed = std::strtol(env, nullptr, 10);
      if (parsed > 0) return static_cast<std::size_t>(parsed);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return static_cast<std::size_t>(hw > 0 ? hw : 1);
  }();
  return value;
}

}  // namespace detail

/// Sets the process-wide budget of concurrent workers. 0 restores the
/// default (NETPP_THREAD_BUDGET, else hardware concurrency).
inline void set_pool_size(std::size_t n) {
  detail::configured().store(n, std::memory_order_relaxed);
}

/// The configured budget.
[[nodiscard]] inline std::size_t pool_size() {
  const std::size_t configured =
      detail::configured().load(std::memory_order_relaxed);
  return configured != 0 ? configured : detail::default_pool_size();
}

/// Workers currently leased across the process.
[[nodiscard]] inline std::size_t in_use() {
  return detail::leased().load(std::memory_order_relaxed);
}

/// RAII share of the budget. Requests `requested` workers (0 = everything
/// available) and is granted min(requested, budget - in_use), floored at 1
/// so a fully-leased budget degrades nested components to inline execution
/// instead of deadlocking them.
class ThreadLease {
 public:
  explicit ThreadLease(std::size_t requested) {
    auto& leased = detail::leased();
    const std::size_t budget = pool_size();
    std::size_t current = leased.load(std::memory_order_relaxed);
    for (;;) {
      const std::size_t available =
          budget > current ? budget - current : 0;
      std::size_t want = requested == 0 ? available
                                        : (requested < available ? requested
                                                                 : available);
      if (want == 0) want = 1;  // degrade to inline, never to zero workers
      if (leased.compare_exchange_weak(current, current + want,
                                       std::memory_order_relaxed)) {
        granted_ = want;
        return;
      }
    }
  }
  ~ThreadLease() {
    detail::leased().fetch_sub(granted_, std::memory_order_relaxed);
  }
  ThreadLease(const ThreadLease&) = delete;
  ThreadLease& operator=(const ThreadLease&) = delete;

  [[nodiscard]] std::size_t granted() const { return granted_; }

 private:
  std::size_t granted_ = 0;
};

}  // namespace netpp::thread_budget
