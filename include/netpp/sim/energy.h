// Energy accounting for simulated devices.
//
// An EnergyMeter integrates a device's instantaneous power draw over
// simulated time. Devices report power-state changes (e.g. "pipeline 2 went
// to sleep at t=1.25 s"); the meter accumulates joules and exposes the
// energy-efficiency metric of paper §3.1 (ideal-proportional energy over
// actual energy).
#pragma once

#include <string>
#include <vector>

#include "netpp/power/envelope.h"
#include "netpp/sim/stats.h"
#include "netpp/units.h"

namespace netpp {

/// Integrates one device's power over time.
class EnergyMeter {
 public:
  /// `max_power` is the device's nameplate max, used for the efficiency
  /// metric; the meter starts at `initial_power` at time `start`.
  EnergyMeter(Watts max_power, Watts initial_power,
              Seconds start = Seconds{0.0});

  /// Records a new instantaneous power draw at time `at` (monotone).
  void set_power(Seconds at, Watts power);

  /// Records useful work: the device was actively serving load `load`
  /// (in [0,1] of capacity) starting at `at`. Used for the efficiency
  /// denominator; optional.
  void set_load(Seconds at, double load);

  [[nodiscard]] Watts current_power() const {
    return Watts{power_.current()};
  }
  [[nodiscard]] double current_load() const { return load_.current(); }

  /// Total energy consumed up to `until`.
  [[nodiscard]] Joules energy(Seconds until) const;

  /// Average power over the metered interval.
  [[nodiscard]] Watts average_power(Seconds until) const;

  /// Time-weighted average load over the metered interval.
  [[nodiscard]] double average_load(Seconds until) const;

  /// Paper §3.1 energy efficiency: energy an ideally proportional device
  /// (max_power at load, zero when idle) would have used, over the actual
  /// energy. 1.0 when no energy was consumed.
  [[nodiscard]] double efficiency(Seconds until) const;

  [[nodiscard]] Watts max_power() const { return max_power_; }

 private:
  Watts max_power_;
  TimeWeighted power_;
  TimeWeighted load_;
};

/// Named collection of meters — a "power rail" view of a simulated system.
class EnergyLedger {
 public:
  /// Adds a meter and returns its index.
  std::size_t add(std::string name, Watts max_power, Watts initial_power,
                  Seconds start = Seconds{0.0});

  [[nodiscard]] EnergyMeter& meter(std::size_t idx) {
    return meters_.at(idx).meter;
  }
  [[nodiscard]] const EnergyMeter& meter(std::size_t idx) const {
    return meters_.at(idx).meter;
  }
  [[nodiscard]] const std::string& name(std::size_t idx) const {
    return meters_.at(idx).name;
  }
  [[nodiscard]] std::size_t size() const { return meters_.size(); }

  /// Sum of all meters' energy up to `until`.
  [[nodiscard]] Joules total_energy(Seconds until) const;

  /// Sum of all meters' average power up to `until`.
  [[nodiscard]] Watts total_average_power(Seconds until) const;

 private:
  struct Entry {
    std::string name;
    EnergyMeter meter;
  };
  std::vector<Entry> meters_;
};

}  // namespace netpp
