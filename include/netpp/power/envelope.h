// Two-state power envelopes and power proportionality (paper §2.3).
//
// The paper models every device as being either `idle` or running at `max`
// power; power proportionality is defined (eq. 1) as
//
//     proportionality = (max_power - idle_power) / max_power
//
// i.e. 1.0 for an ideally proportional device (zero idle draw) and 0.0 for a
// device that draws full power regardless of load. `PowerEnvelope` captures
// the (max, idle) pair; `at_load` additionally provides the standard linear
// interpolation used by the flow-level simulator for partially loaded
// devices.
#pragma once

#include <stdexcept>

#include "netpp/units.h"

namespace netpp {

/// A device's two-state power envelope.
class PowerEnvelope {
 public:
  constexpr PowerEnvelope() = default;

  /// Constructs from explicit max/idle powers.
  /// Requires 0 <= idle <= max.
  constexpr PowerEnvelope(Watts max_power, Watts idle_power)
      : max_(max_power), idle_(idle_power) {
    if (idle_.value() < 0.0 || max_.value() < idle_.value()) {
      throw std::invalid_argument(
          "PowerEnvelope requires 0 <= idle_power <= max_power");
    }
  }

  /// Constructs from a max power and a proportionality in [0, 1]
  /// (paper eq. 1 solved for idle power).
  static constexpr PowerEnvelope from_proportionality(Watts max_power,
                                                      double proportionality) {
    if (proportionality < 0.0 || proportionality > 1.0) {
      throw std::invalid_argument("proportionality must be in [0, 1]");
    }
    return PowerEnvelope{max_power, max_power * (1.0 - proportionality)};
  }

  [[nodiscard]] constexpr Watts max_power() const { return max_; }
  [[nodiscard]] constexpr Watts idle_power() const { return idle_; }

  /// Paper eq. 1. A zero-max envelope is conventionally fully proportional.
  [[nodiscard]] constexpr double proportionality() const {
    if (max_.value() == 0.0) return 1.0;
    return (max_ - idle_) / max_;
  }

  /// Linear power-vs-load interpolation: idle at load 0, max at load 1.
  /// `load` is clamped to [0, 1].
  [[nodiscard]] constexpr Watts at_load(double load) const {
    if (load < 0.0) load = 0.0;
    if (load > 1.0) load = 1.0;
    return idle_ + (max_ - idle_) * load;
  }

  /// Duty-cycle average: fraction `active` of the time at max, rest idle.
  [[nodiscard]] constexpr Watts duty_cycle_average(double active) const {
    return at_load(active);
  }

  /// Envelope of `n` identical devices.
  [[nodiscard]] constexpr PowerEnvelope scaled(double n) const {
    return PowerEnvelope{max_ * n, idle_ * n};
  }

  /// Sum of two envelopes (devices operated in lockstep).
  friend constexpr PowerEnvelope operator+(const PowerEnvelope& a,
                                           const PowerEnvelope& b) {
    return PowerEnvelope{a.max_ + b.max_, a.idle_ + b.idle_};
  }

  constexpr bool operator==(const PowerEnvelope&) const = default;

 private:
  Watts max_{};
  Watts idle_{};
};

/// Energy efficiency of a duty-cycled device (paper §3.1).
///
/// Defined as the energy an ideally power-proportional device (same max
/// power, zero idle power) would consume over the duty cycle, divided by the
/// energy the actual device consumes. The paper's baseline network — active
/// 10% of the time with 10% proportionality — scores ~11%.
[[nodiscard]] constexpr double energy_efficiency(const PowerEnvelope& env,
                                                 double active_fraction) {
  const Watts actual = env.duty_cycle_average(active_fraction);
  if (actual.value() == 0.0) return 1.0;
  const Watts ideal = env.max_power() * active_fraction;
  return ideal / actual;
}

}  // namespace netpp
