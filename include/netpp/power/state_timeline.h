// Unified power-state timeline: the one time-stepping substrate every §4
// mechanism model integrates on.
//
// A PowerStateTimeline tracks a set of *components* (pipelines, links,
// ports — whatever a mechanism gates) as piecewise-constant state tracks:
// each component is in one PowerState and carries a continuous `level`
// (clock frequency, lane fraction, configured speed) and a bookkeeping
// `load`. Mechanism policies request transitions; the timeline owns the
// transition semantics the mechanisms used to hand-roll separately:
//
//   - wake latency: kOff/kSleep -> kOn passes through kWaking for
//     `TransitionRules::wake_latency` (pending wakes are cancelable);
//   - min-dwell: downward level moves are honored only after the current
//     level has been sufficient for `min_dwell` (down-rating's dwell);
//   - hysteresis: downward level moves inside `level_hysteresis` are
//     ignored; upward moves always apply (load must be served).
//
// One integrator serves every mechanism: `advance_to` accumulates actual
// and baseline energy (via pluggable power functions evaluated over the
// tracks), per-state residency (component-seconds), and the mean-level
// integral, then completes wakes that came due. Keeping a single
// accumulation path is what makes mechanism results composable — and
// comparable bit-for-bit with the pre-refactor simulators (see
// tests/mech/golden_equivalence_test.cpp).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "netpp/state/snapshot.h"
#include "netpp/units.h"

namespace netpp {

enum class PowerState : std::uint8_t {
  kOff = 0,    ///< powered off entirely (leakage gone)
  kSleep = 1,  ///< low-power idle (EEE LPI): fast wake, residual draw
  kWaking = 2, ///< transitioning to kOn; draws idle power, serves nothing
  kOn = 3,     ///< powered and serving
};
inline constexpr int kNumPowerStates = 4;

/// One component's piecewise-constant power state.
struct ComponentTrack {
  PowerState state = PowerState::kOn;
  /// Continuous knob: clock frequency / lane fraction / configured speed.
  /// Unit is mechanism-defined; only the timeline's dwell/hysteresis rules
  /// and the mean-level integral interpret it.
  double level = 1.0;
  /// Offered load bookkeeping for the power functions; not interpreted by
  /// the timeline itself.
  double load = 0.0;
};

/// Transition semantics shared by every mechanism on this timeline.
struct TransitionRules {
  Seconds wake_latency{0.0};
  Seconds min_dwell{0.0};
  double level_hysteresis = 0.0;
};

class PowerStateTimeline {
 public:
  /// Evaluates instantaneous power over the current tracks. The actual
  /// power function prices the states as the mechanism configured them; the
  /// optional baseline function prices the do-nothing fabric for savings.
  using PowerFn = std::function<Watts(std::span<const ComponentTrack>)>;

  PowerStateTimeline(int num_components, TransitionRules rules,
                     Seconds start = Seconds{0.0});

  /// Installs the energy integrands. Either may be empty (no integration).
  void set_power_model(PowerFn actual, PowerFn baseline = {});

  /// Observer for applied state changes, called as (component, from, to,
  /// at). Fires on wake requests (to kWaking or directly to kOn), wake
  /// completions (kWaking -> kOn), parks, and wake cancellations; level
  /// moves are not state changes. Purely observational: it must not call
  /// back into the timeline. Telemetry event logs attach here — the
  /// timeline stays independent of the telemetry layer.
  using TransitionListener =
      std::function<void(int, PowerState, PowerState, Seconds)>;
  void set_transition_listener(TransitionListener listener) {
    transition_listener_ = std::move(listener);
  }

  [[nodiscard]] int num_components() const {
    return static_cast<int>(tracks_.size());
  }
  [[nodiscard]] const ComponentTrack& track(int component) const {
    return tracks_[static_cast<std::size_t>(component)];
  }
  [[nodiscard]] std::span<const ComponentTrack> tracks() const {
    return tracks_;
  }
  [[nodiscard]] const TransitionRules& rules() const { return rules_; }
  [[nodiscard]] Seconds now() const { return Seconds{now_}; }

  /// Number of components currently in `state` (kWaking components are
  /// counted in kWaking, not kOn).
  [[nodiscard]] int count(PowerState state) const;
  /// count(kOn) + count(kWaking): capacity that is on or committed.
  [[nodiscard]] int provisioned() const;

  /// Updates a component's load bookkeeping (no transition, no counters).
  void set_load(int component, double load);
  /// Initializes a component's level directly (no counters, no dwell/
  /// hysteresis); use before integration starts, e.g. for a nominal speed.
  void set_level(int component, double level);

  // --- Transitions -------------------------------------------------------
  //
  // `request_on`/`wake_one` count a wake; `request_off`/`park_one` count a
  // park; `request_level` counts a level transition when applied. Pending
  // wakes complete inside `advance_to` (completion does not re-count).

  /// Powers `component` on. From kOff/kSleep with a non-zero wake latency
  /// the component enters kWaking and completes at now + wake_latency;
  /// with zero latency it is kOn immediately.
  void request_on(int component);
  /// Wakes the lowest-index kOff component; returns it, or -1 if none.
  int wake_one();
  /// Sends `component` to kOff (or kSleep). Immediate.
  void request_off(int component, PowerState target = PowerState::kOff);
  /// Parks the highest-index kOn component; returns it, or -1 if none.
  int park_one();
  /// Cancels the most recently requested, not-yet-complete wake (the
  /// component returns to kOff) and un-counts it. Returns whether one was
  /// pending.
  bool cancel_last_wake();

  /// Requests a level change under the dwell/hysteresis rules:
  /// upward always applies; equal refreshes the dwell anchor; downward
  /// applies only when the move exceeds `level_hysteresis` AND the current
  /// level has been more than sufficient for `min_dwell`. Returns whether
  /// the level changed (a counted level transition).
  bool request_level(int component, double level);

  /// Earliest pending wake completion, or +infinity when none is pending.
  [[nodiscard]] double next_event() const;

  // --- Integration -------------------------------------------------------

  /// Integrates energy, residency, and the level integral over
  /// [now, t), then completes wakes due at `t` (deadline <= t + 1e-15) and
  /// advances the clock. `t` must be >= now.
  void advance_to(Seconds t);

  [[nodiscard]] Joules energy() const { return Joules{energy_j_}; }
  [[nodiscard]] Joules baseline_energy() const {
    return Joules{baseline_j_};
  }
  /// Component-seconds spent in `state`.
  [[nodiscard]] Seconds residency(PowerState state) const {
    return Seconds{residency_[static_cast<std::size_t>(state)]};
  }
  /// Integral of the across-component mean level over time.
  [[nodiscard]] double mean_level_time() const { return level_time_; }

  [[nodiscard]] std::size_t wake_transitions() const { return wakes_; }
  [[nodiscard]] std::size_t park_transitions() const { return parks_; }
  [[nodiscard]] std::size_t level_transitions() const {
    return level_changes_;
  }
  [[nodiscard]] std::size_t transitions() const {
    return wakes_ + parks_ + level_changes_;
  }

  /// Trace start time (integration origin; snapshot/invariant support).
  [[nodiscard]] Seconds start() const { return Seconds{start_}; }

  // --- Snapshot / audit --------------------------------------------------

  /// Serializes tracks, pending wakes, integrators, and counters. The power
  /// functions and transition listener are not serialized — the owner
  /// re-installs them after restore.
  void save_state(state::SnapshotWriter& w) const;
  /// Restores a save_state() image into a timeline constructed with the
  /// same component count and transition rules; audits invariants before
  /// accepting. Throws std::invalid_argument("PowerStateTimeline: ...") on
  /// mismatch or corruption.
  void restore_state(state::SnapshotReader& r);
  /// Audits internal consistency (valid states, finite integrators,
  /// residency sums covering [start, now], pending wakes referencing waking
  /// components). Throws std::invalid_argument("PowerStateTimeline: ...")
  /// on violation. Called automatically by restore_state().
  void check_invariants() const;

 private:
  struct PendingWake {
    int component;
    double deadline;
  };

  TransitionRules rules_;
  std::vector<ComponentTrack> tracks_;
  std::vector<double> dwell_anchor_;  ///< per-component dwell reference time
  std::vector<PendingWake> pending_;  ///< in request order
  PowerFn power_fn_;
  PowerFn baseline_fn_;
  TransitionListener transition_listener_;

  double start_ = 0.0;
  double now_ = 0.0;
  double energy_j_ = 0.0;
  double baseline_j_ = 0.0;
  std::array<double, kNumPowerStates> residency_{};
  double level_time_ = 0.0;
  std::size_t wakes_ = 0;
  std::size_t parks_ = 0;
  std::size_t level_changes_ = 0;
};

}  // namespace netpp
