// Component-level switch power model.
//
// The cluster analysis treats a switch as a two-state envelope; the §4
// mechanism simulators need to know *where* the watts go so that knobs can
// gate them. Following the decomposition in router power studies the paper
// cites (Vishwanath et al., the IMC'25 router-energy model, Juniper's
// pipeline power-gating posts), a switch's max power splits into:
//
//   - chassis: fans, PSUs, control-plane CPU — always on, not gateable by
//     data-plane mechanisms;
//   - packet pipelines: leakage (goes away only when a pipeline is powered
//     off), clock-tree power (scales with frequency), and switching power
//     (scales with frequency x utilization);
//   - SerDes/ports: per-port power, gateable per port, scalable by the
//     fraction of active lanes (down-rating, §4.3).
//
// The default fractions are chosen so that a fully-on idle switch draws 90%
// of max — the paper's 10% baseline proportionality.
#pragma once

#include <stdexcept>
#include <vector>

#include "netpp/units.h"

namespace netpp {

struct SwitchPowerConfig {
  Watts max_power{750.0};  ///< paper Table 1 (51.2 Tbps switch)
  int num_pipelines = 4;
  int num_ports = 64;

  // Top-level split (must sum to 1).
  double chassis_fraction = 0.30;
  double pipelines_fraction = 0.40;
  double serdes_fraction = 0.30;

  // Within one pipeline (must sum to 1).
  double pipeline_leakage_fraction = 0.40;   ///< gone only when powered off
  double pipeline_clock_fraction = 0.35;     ///< ~ frequency
  double pipeline_switching_fraction = 0.25;  ///< ~ frequency x utilization
};

/// The power state of one pipeline.
struct PipelineState {
  bool powered = true;
  /// Clock frequency as a fraction of nominal, in (0, 1]. Ignored when the
  /// pipeline is powered off.
  double frequency = 1.0;
  /// Offered load as a fraction of the pipeline's capacity *at nominal
  /// frequency*, in [0, 1]. Utilization relative to the scaled clock is
  /// load/frequency (a pipeline at half clock and half load is fully busy).
  double load = 0.0;
};

/// The power state of one port's SerDes.
struct PortState {
  bool powered = true;
  /// Fraction of the port's SerDes lanes that are active (down-rating a
  /// 400 G port to 100 G keeps 1/4 of the lanes), in (0, 1].
  double lane_fraction = 1.0;
};

class SwitchPowerModel {
 public:
  SwitchPowerModel() : SwitchPowerModel(SwitchPowerConfig{}) {}
  explicit SwitchPowerModel(SwitchPowerConfig config);

  [[nodiscard]] const SwitchPowerConfig& config() const { return config_; }

  [[nodiscard]] Watts chassis_power() const;

  /// Power of one pipeline in the given state. `state.load` must not exceed
  /// `state.frequency` (a slowed pipeline cannot serve more than its clock).
  [[nodiscard]] Watts pipeline_power(const PipelineState& state) const;

  /// Power of one port in the given state.
  [[nodiscard]] Watts port_power(const PortState& state) const;

  /// Total switch power for explicit per-pipeline / per-port states.
  /// Sizes must match the config.
  [[nodiscard]] Watts total_power(const std::vector<PipelineState>& pipelines,
                                  const std::vector<PortState>& ports) const;

  /// Convenience: all components on at nominal frequency, uniform load.
  [[nodiscard]] Watts at_uniform_load(double load) const;

  /// Idle (all on, zero load) and max (all on, full load) powers, and the
  /// resulting envelope proportionality (~10% with default fractions).
  [[nodiscard]] Watts idle_power() const { return at_uniform_load(0.0); }
  [[nodiscard]] Watts max_power() const { return at_uniform_load(1.0); }
  [[nodiscard]] double proportionality() const;

 private:
  SwitchPowerConfig config_;
  Watts per_pipeline_max_{};
  Watts per_port_max_{};
};

}  // namespace netpp
