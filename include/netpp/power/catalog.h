// Device power catalog (paper §2.3, Tables 1 and 2).
//
// The catalog maps datasheet-style device entries to power draws:
//   - Nvidia H100 NVL GPU: 400 W, plus 800 W of server overhead shared by
//     8 GPUs => 500 W max per GPU; modern servers are ~85% power
//     proportional => 75 W idle per GPU.
//   - 51.2 Tbps switch: 750 W (Alibaba HPN number).
//   - NICs (ConnectX-7 family) and optical transceivers per port speed,
//     Table 2, with the paper's extrapolation rule for speeds beyond the
//     datasheet range.
//
// Extrapolation: the paper says "linearly extrapolated from the closest
// available one", but its starred values (38.6 W / 58.8 W NICs at 800 G /
// 1600 G) match a *geometric* extension of the last observed per-doubling
// ratio (25.4/16.7 = 1.521): 25.4 * 1.521 = 38.6, * 1.521 again = 58.8.
// PowerTable implements that rule (log-log-linear continuation), which
// reproduces the paper's numbers exactly; see DESIGN.md.
#pragma once

#include <map>
#include <optional>

#include "netpp/power/envelope.h"
#include "netpp/units.h"

namespace netpp {

/// Monotone speed -> power lookup with interpolation and geometric
/// extrapolation, used for NIC and transceiver tables.
class PowerTable {
 public:
  PowerTable() = default;

  /// Builds a table from (speed, power) points. At least one point required;
  /// speeds must be positive and strictly increasing once sorted (duplicate
  /// speeds are rejected).
  explicit PowerTable(std::map<double, double> gbps_to_watts);

  /// Power draw at `speed`.
  ///  - exact entry: returned as-is;
  ///  - between entries: geometric (log-log linear) interpolation;
  ///  - above the table: geometric continuation of the last segment's
  ///    per-doubling ratio (the paper's starred-value rule);
  ///  - below the table: geometric continuation of the first segment
  ///    (single-entry tables scale linearly with speed).
  [[nodiscard]] Watts at(Gbps speed) const;

  /// Exact datasheet entry, if `speed` is one of the table's points.
  [[nodiscard]] std::optional<Watts> exact(Gbps speed) const;

  [[nodiscard]] bool empty() const { return points_.empty(); }
  [[nodiscard]] std::size_t size() const { return points_.size(); }

 private:
  std::map<double, double> points_;  // Gbps -> W
};

/// Kinds of network-side devices tracked by the cluster model.
enum class NetworkDeviceKind {
  kSwitch,
  kNic,
  kTransceiver,
};

/// The full device catalog used by the analysis. Immutable after creation.
class DeviceCatalog {
 public:
  struct Config {
    Watts gpu_max{400.0};                // Nvidia H100 NVL (Table 1)
    Watts server_overhead{800.0};        // CPUs, RAM, storage, fans (§2.3.1)
    int gpus_per_server = 8;             // §2.1
    double compute_proportionality = 0.85;  // modern servers [4]

    Watts switch_max{750.0};             // 51.2 Tbps switch (Table 1)
    Gbps switch_capacity = Gbps::from_tbps(51.2);

    std::map<double, double> nic_watts = {
        {100.0, 8.6}, {200.0, 16.7}, {400.0, 25.4}};  // Table 2 (measured)
    std::map<double, double> transceiver_watts = {
        {100.0, 4.0},  {200.0, 6.5},   {400.0, 10.0},
        {800.0, 16.5}, {1600.0, 27.27}};  // Table 2
  };

  DeviceCatalog() : DeviceCatalog(Config{}) {}
  explicit DeviceCatalog(Config config);

  /// The paper's baseline catalog (all defaults above).
  static const DeviceCatalog& paper_baseline();

  /// Max power of one GPU including its share of server overhead (500 W for
  /// the baseline).
  [[nodiscard]] Watts gpu_max_power() const { return gpu_max_; }

  /// Two-state envelope of one GPU+server-share at the configured compute
  /// proportionality (500 W max / 75 W idle for the baseline).
  [[nodiscard]] PowerEnvelope gpu_envelope() const { return gpu_envelope_; }

  [[nodiscard]] double compute_proportionality() const {
    return config_.compute_proportionality;
  }

  [[nodiscard]] Watts switch_max_power() const { return config_.switch_max; }
  [[nodiscard]] Gbps switch_capacity() const {
    return config_.switch_capacity;
  }

  /// Switch radix (number of ports) when every port runs at `port_speed`.
  /// 51.2 Tbps at 400 G => 128 ports. Truncates to an integer port count.
  [[nodiscard]] int switch_radix(Gbps port_speed) const;

  /// NIC power at an arbitrary port speed (Table 2 + extrapolation rule;
  /// yields the starred 38.6 W / 58.8 W at 800 G / 1600 G).
  [[nodiscard]] Watts nic_power(Gbps speed) const { return nics_.at(speed); }

  /// Optical transceiver power at an arbitrary port speed.
  [[nodiscard]] Watts transceiver_power(Gbps speed) const {
    return transceivers_.at(speed);
  }

  [[nodiscard]] const Config& config() const { return config_; }

 private:
  Config config_;
  Watts gpu_max_{};
  PowerEnvelope gpu_envelope_{};
  PowerTable nics_;
  PowerTable transceivers_;
};

}  // namespace netpp
