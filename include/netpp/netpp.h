// Umbrella header: includes the whole netpp public API.
//
// Prefer the individual headers in production code; this exists for
// exploration, examples, and quick prototypes.
//
//   core     — the paper's Sec. 2-3 analytical models
//   sim      — discrete-event substrate (engine, RNG, stats, energy)
//   topo     — explicit topologies, routing, max flow
//   netsim   — flow-level network simulation + fabric energy tracking
//   traffic  — workload generators and the closed training loop
//   mech     — Sec. 4 mechanism models
//   faults   — fault injection, degraded-mode policies, resilience reports
#pragma once

// core
#include "netpp/analysis/overlap.h"
#include "netpp/analysis/peak_power.h"
#include "netpp/analysis/report.h"
#include "netpp/analysis/savings.h"
#include "netpp/analysis/sensitivity.h"
#include "netpp/analysis/speedup.h"
#include "netpp/cluster/cluster.h"
#include "netpp/power/catalog.h"
#include "netpp/power/envelope.h"
#include "netpp/power/state_timeline.h"
#include "netpp/power/switch_model.h"
#include "netpp/topomodel/fattree.h"
#include "netpp/units.h"
#include "netpp/workload/phase_model.h"

// sim
#include "netpp/sim/energy.h"
#include "netpp/sim/engine.h"
#include "netpp/sim/random.h"
#include "netpp/sim/stats.h"
#include "netpp/sim/sweep.h"

// topo
#include "netpp/topo/builders.h"
#include "netpp/topo/graph.h"
#include "netpp/topo/maxflow.h"
#include "netpp/topo/routing.h"

// netsim
#include "netpp/netsim/energy_tracker.h"
#include "netpp/netsim/fairshare.h"
#include "netpp/netsim/flowsim.h"

// traffic
#include "netpp/traffic/generators.h"
#include "netpp/traffic/training_loop.h"

// mech
#include "netpp/mech/composite.h"
#include "netpp/mech/downrate.h"
#include "netpp/mech/eee.h"
#include "netpp/mech/knobs.h"
#include "netpp/mech/load_trace.h"
#include "netpp/mech/mechanism.h"
#include "netpp/mech/ocs.h"
#include "netpp/mech/packet_switch.h"
#include "netpp/mech/parking.h"
#include "netpp/mech/rateadapt.h"
#include "netpp/mech/redesign.h"
#include "netpp/mech/scheduler.h"
#include "netpp/mech/trace_recorder.h"

// faults
#include "netpp/analysis/resilience.h"
#include "netpp/faults/degraded_mode.h"
#include "netpp/faults/experiment.h"
#include "netpp/faults/fault_model.h"
#include "netpp/faults/injector.h"
