// Strong unit types used throughout netpp.
//
// All quantities are stored as double in a canonical unit (watts, gigabits
// per second, seconds, joules, US dollars). The wrappers exist to prevent
// accidental unit mixing at API boundaries (e.g. passing a bandwidth where a
// power is expected) while staying trivially cheap: every type is a single
// double, constexpr-friendly, and totally ordered.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace netpp {

namespace detail {

// CRTP base providing the arithmetic shared by all scalar unit types.
// `Derived` must be constructible from double.
template <typename Derived>
struct UnitOps {
  // Empty base; defaulted so derived classes can default their own <=>.
  constexpr auto operator<=>(const UnitOps&) const = default;

  friend constexpr Derived operator+(Derived a, Derived b) {
    return Derived{a.value() + b.value()};
  }
  friend constexpr Derived operator-(Derived a, Derived b) {
    return Derived{a.value() - b.value()};
  }
  friend constexpr Derived operator*(Derived a, double s) {
    return Derived{a.value() * s};
  }
  friend constexpr Derived operator*(double s, Derived a) {
    return Derived{a.value() * s};
  }
  friend constexpr Derived operator/(Derived a, double s) {
    return Derived{a.value() / s};
  }
  // Ratio of two like quantities is dimensionless.
  friend constexpr double operator/(Derived a, Derived b) {
    return a.value() / b.value();
  }
  friend constexpr Derived operator-(Derived a) { return Derived{-a.value()}; }

  constexpr Derived& operator+=(Derived other) {
    auto& self = static_cast<Derived&>(*this);
    self = self + other;
    return self;
  }
  constexpr Derived& operator-=(Derived other) {
    auto& self = static_cast<Derived&>(*this);
    self = self - other;
    return self;
  }
  constexpr Derived& operator*=(double s) {
    auto& self = static_cast<Derived&>(*this);
    self = self * s;
    return self;
  }
  constexpr Derived& operator/=(double s) {
    auto& self = static_cast<Derived&>(*this);
    self = self / s;
    return self;
  }
};

}  // namespace detail

/// Electrical power, canonical unit: watt.
class Watts : public detail::UnitOps<Watts> {
 public:
  constexpr Watts() = default;
  constexpr explicit Watts(double w) : w_(w) {}
  [[nodiscard]] constexpr double value() const { return w_; }
  [[nodiscard]] constexpr double kilowatts() const { return w_ / 1e3; }
  [[nodiscard]] constexpr double megawatts() const { return w_ / 1e6; }
  constexpr auto operator<=>(const Watts&) const = default;

  static constexpr Watts from_kilowatts(double kw) { return Watts{kw * 1e3}; }
  static constexpr Watts from_megawatts(double mw) { return Watts{mw * 1e6}; }

 private:
  double w_ = 0.0;
};

/// Data rate, canonical unit: gigabit per second.
class Gbps : public detail::UnitOps<Gbps> {
 public:
  constexpr Gbps() = default;
  constexpr explicit Gbps(double g) : g_(g) {}
  [[nodiscard]] constexpr double value() const { return g_; }
  [[nodiscard]] constexpr double tbps() const { return g_ / 1e3; }
  [[nodiscard]] constexpr double bits_per_second() const { return g_ * 1e9; }
  constexpr auto operator<=>(const Gbps&) const = default;

  static constexpr Gbps from_tbps(double t) { return Gbps{t * 1e3}; }

 private:
  double g_ = 0.0;
};

/// Time span, canonical unit: second.
class Seconds : public detail::UnitOps<Seconds> {
 public:
  constexpr Seconds() = default;
  constexpr explicit Seconds(double s) : s_(s) {}
  [[nodiscard]] constexpr double value() const { return s_; }
  [[nodiscard]] constexpr double hours() const { return s_ / 3600.0; }
  constexpr auto operator<=>(const Seconds&) const = default;

  static constexpr Seconds from_hours(double h) { return Seconds{h * 3600.0}; }
  static constexpr Seconds from_milliseconds(double ms) {
    return Seconds{ms / 1e3};
  }
  static constexpr Seconds from_microseconds(double us) {
    return Seconds{us / 1e6};
  }
  static constexpr Seconds from_nanoseconds(double ns) {
    return Seconds{ns / 1e9};
  }

 private:
  double s_ = 0.0;
};

/// Energy, canonical unit: joule.
class Joules : public detail::UnitOps<Joules> {
 public:
  constexpr Joules() = default;
  constexpr explicit Joules(double j) : j_(j) {}
  [[nodiscard]] constexpr double value() const { return j_; }
  [[nodiscard]] constexpr double kilowatt_hours() const {
    return j_ / 3.6e6;
  }
  constexpr auto operator<=>(const Joules&) const = default;

  static constexpr Joules from_kilowatt_hours(double kwh) {
    return Joules{kwh * 3.6e6};
  }

 private:
  double j_ = 0.0;
};

/// Data volume, canonical unit: bit.
class Bits : public detail::UnitOps<Bits> {
 public:
  constexpr Bits() = default;
  constexpr explicit Bits(double b) : b_(b) {}
  [[nodiscard]] constexpr double value() const { return b_; }
  [[nodiscard]] constexpr double gigabits() const { return b_ / 1e9; }
  constexpr auto operator<=>(const Bits&) const = default;

  static constexpr Bits from_gigabits(double gb) { return Bits{gb * 1e9}; }
  static constexpr Bits from_bytes(double bytes) { return Bits{bytes * 8.0}; }

 private:
  double b_ = 0.0;
};

/// Money, canonical unit: US dollar.
class Dollars : public detail::UnitOps<Dollars> {
 public:
  constexpr Dollars() = default;
  constexpr explicit Dollars(double d) : d_(d) {}
  [[nodiscard]] constexpr double value() const { return d_; }
  constexpr auto operator<=>(const Dollars&) const = default;

 private:
  double d_ = 0.0;
};

// Cross-unit relations.
constexpr Joules operator*(Watts p, Seconds t) {
  return Joules{p.value() * t.value()};
}
constexpr Joules operator*(Seconds t, Watts p) { return p * t; }
constexpr Watts operator/(Joules e, Seconds t) {
  return Watts{e.value() / t.value()};
}
constexpr Seconds operator/(Joules e, Watts p) {
  return Seconds{e.value() / p.value()};
}
constexpr Bits operator*(Gbps r, Seconds t) {
  return Bits{r.bits_per_second() * t.value()};
}
constexpr Bits operator*(Seconds t, Gbps r) { return r * t; }
constexpr Seconds operator/(Bits v, Gbps r) {
  return Seconds{v.value() / r.bits_per_second()};
}
constexpr Gbps operator/(Bits v, Seconds t) {
  return Gbps{v.value() / t.value() / 1e9};
}

// User-defined literals: 400.0_W, 51.2_Tbps, 10.0_ms, ...
namespace literals {
constexpr Watts operator""_W(long double w) {
  return Watts{static_cast<double>(w)};
}
constexpr Watts operator""_W(unsigned long long w) {
  return Watts{static_cast<double>(w)};
}
constexpr Watts operator""_kW(long double kw) {
  return Watts::from_kilowatts(static_cast<double>(kw));
}
constexpr Watts operator""_MW(long double mw) {
  return Watts::from_megawatts(static_cast<double>(mw));
}
constexpr Gbps operator""_Gbps(long double g) {
  return Gbps{static_cast<double>(g)};
}
constexpr Gbps operator""_Gbps(unsigned long long g) {
  return Gbps{static_cast<double>(g)};
}
constexpr Gbps operator""_Tbps(long double t) {
  return Gbps::from_tbps(static_cast<double>(t));
}
constexpr Seconds operator""_s(long double s) {
  return Seconds{static_cast<double>(s)};
}
constexpr Seconds operator""_s(unsigned long long s) {
  return Seconds{static_cast<double>(s)};
}
constexpr Seconds operator""_ms(long double ms) {
  return Seconds::from_milliseconds(static_cast<double>(ms));
}
constexpr Seconds operator""_us(long double us) {
  return Seconds::from_microseconds(static_cast<double>(us));
}
}  // namespace literals

/// Human-readable formatting helpers ("1.23 MW", "416.5 k$", ...).
std::string to_string(Watts p);
std::string to_string(Gbps r);
std::string to_string(Seconds t);
std::string to_string(Joules e);
std::string to_string(Dollars d);

}  // namespace netpp
