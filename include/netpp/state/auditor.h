// InvariantAuditor: one handle that runs every registered component's
// internal-consistency audit at any event boundary.
//
// Each simulated component with mutable cross-referencing state exposes a
// `check_invariants()` member that cross-checks its books — rate feasibility
// per link, conservation of remaining bits, timeline residency sums,
// route-cache-vs-router agreement, wake bookkeeping — and throws
// std::invalid_argument("TypeName: constraint") on the first violation.
// The auditor collects those members (plus any ad-hoc closures) so a
// harness can assert the whole world is coherent with one call: between
// events, after a fault storm, and automatically after every snapshot
// restore.
//
// Audits are read-only: a passing audit changes nothing, and a failing one
// throws before any state is touched. Auditing is O(live state) per
// component — cheap enough for tests and chaos harnesses, not meant for
// per-event use in benchmarks.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

namespace netpp {
class FlowSimulator;
class DegradedModeController;
class FaultExperimentRun;
class PowerStateTimeline;
}  // namespace netpp

namespace netpp::state {

class InvariantAuditor {
 public:
  /// Registers a named ad-hoc check. The callable must be read-only and
  /// throw std::invalid_argument("TypeName: constraint") on violation.
  void add(std::string name, std::function<void()> check);

  /// Typed registrations — each forwards to the component's own
  /// check_invariants(). The component must outlive the auditor.
  void watch(const FlowSimulator& sim);
  void watch(const DegradedModeController& controller);
  void watch(const FaultExperimentRun& run);
  void watch(const PowerStateTimeline& timeline);

  /// Runs every registered check in registration order; the first failure
  /// propagates (std::invalid_argument with the offending component's
  /// "TypeName: constraint" message).
  void audit();

  [[nodiscard]] std::size_t num_checks() const { return checks_.size(); }
  /// Completed (fully passing) audit passes.
  [[nodiscard]] std::size_t audits_passed() const { return audits_passed_; }
  /// Registered check names, in registration order.
  [[nodiscard]] std::vector<std::string> check_names() const;

 private:
  struct Check {
    std::string name;
    std::function<void()> fn;
  };
  std::vector<Check> checks_;
  std::size_t audits_passed_ = 0;
};

}  // namespace netpp::state
