// Versioned binary snapshot format for deterministic save/restore.
//
// A snapshot is a flat byte buffer: an 8-byte magic ("NPPSNAP1"), a u32
// format version, and a sequence of named sections. Each section carries its
// name, a u64 payload length prefix, and a CRC32 of the payload, so a reader
// can reject truncation, corruption, and version skew with a typed
// "SnapshotReader: constraint" error instead of undefined behaviour.
//
// Doubles are serialized as their raw IEEE-754 bit pattern (little-endian
// u64), which round-trips every value exactly — including negative zero,
// infinities, NaN payloads, and subnormals — equivalent to printing and
// re-parsing hexfloats but without the text detour. This is what lets a run
// resumed from a snapshot be bit-identical to the uninterrupted run: no
// serialization rounding can perturb a carried sum or an event time.
//
// The writer/reader pair is deliberately dumb: sections are written and read
// in one fixed order per snapshot kind (the order is part of the format).
// Components stream their state through small scalar/vector accessors; there
// is no reflection and no schema evolution beyond the version gate.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

namespace netpp::state {

/// Snapshot format version written by this build. Readers reject anything
/// else; there is no cross-version migration.
inline constexpr std::uint32_t kSnapshotVersion = 1;

/// CRC-32 (IEEE 802.3 polynomial, reflected) over `len` bytes. `seed` chains
/// incremental computation; pass the previous return value to continue.
[[nodiscard]] std::uint32_t crc32(const void* data, std::size_t len,
                                  std::uint32_t seed = 0);

/// Appends named, length-prefixed, CRC-protected sections to a byte buffer.
/// Scalar puts are only legal between begin_section/end_section.
class SnapshotWriter {
 public:
  SnapshotWriter();

  void begin_section(std::string_view name);
  void end_section();

  void put_u8(std::uint8_t v) { raw(&v, 1); }
  void put_bool(bool v) { put_u8(v ? 1 : 0); }
  void put_u32(std::uint32_t v);
  void put_u64(std::uint64_t v);
  void put_i64(std::int64_t v) { put_u64(static_cast<std::uint64_t>(v)); }
  /// Exact bit-pattern serialization; round-trips every double bitwise.
  void put_f64(double v) { put_u64(std::bit_cast<std::uint64_t>(v)); }
  /// u64 length prefix + raw bytes.
  void put_string(std::string_view s);

  void put_u8_vec(const std::vector<std::uint8_t>& v);
  void put_u32_vec(const std::vector<std::uint32_t>& v);
  void put_u64_vec(const std::vector<std::uint64_t>& v);
  /// u64 count + little-endian u32s; works for any contiguous uint32 storage
  /// (std::vector, AlignedVec) via pointer + count.
  void put_u32_array(const std::uint32_t* data, std::size_t count);
  /// Same, for uint8 storage.
  void put_u8_array(const std::uint8_t* data, std::size_t count);
  /// u64 count + per-element bit patterns; works for any contiguous doubles
  /// (std::vector, AlignedVec) via pointer + count.
  void put_f64_array(const double* data, std::size_t count);
  void put_f64_vec(const std::vector<double>& v) {
    put_f64_array(v.data(), v.size());
  }

  /// Finished snapshot bytes. Must not be called with a section open.
  [[nodiscard]] const std::vector<std::uint8_t>& buffer() const;

  /// Writes the finished snapshot to `path` (binary, overwrite). Throws
  /// std::runtime_error on I/O failure.
  void write_file(const std::string& path) const;

 private:
  void raw(const void* data, std::size_t len);

  std::vector<std::uint8_t> buffer_;    // header + closed sections
  std::vector<std::uint8_t> payload_;   // open section under construction
  std::string section_name_;
  bool section_open_ = false;
};

/// Sequential reader over a snapshot buffer. The constructor validates the
/// magic and version; open_section validates name, length, and CRC before
/// any payload byte is interpreted. Every malformed input path throws
/// std::invalid_argument("SnapshotReader: ...") — never UB.
class SnapshotReader {
 public:
  explicit SnapshotReader(std::vector<std::uint8_t> buffer);

  /// Reads `path` fully and constructs a reader over it. Throws
  /// std::invalid_argument("SnapshotReader: ...") if unreadable.
  static SnapshotReader from_file(const std::string& path);

  /// Opens the next section, which must be named `expected`; verifies the
  /// payload CRC up front.
  void open_section(std::string_view expected);
  /// Closes the current section; the payload must be fully consumed.
  void close_section();

  [[nodiscard]] std::uint8_t get_u8();
  [[nodiscard]] bool get_bool() { return get_u8() != 0; }
  [[nodiscard]] std::uint32_t get_u32();
  [[nodiscard]] std::uint64_t get_u64();
  [[nodiscard]] std::int64_t get_i64() {
    return static_cast<std::int64_t>(get_u64());
  }
  [[nodiscard]] double get_f64() { return std::bit_cast<double>(get_u64()); }
  [[nodiscard]] std::string get_string();

  [[nodiscard]] std::vector<std::uint8_t> get_u8_vec();
  [[nodiscard]] std::vector<std::uint32_t> get_u32_vec();
  [[nodiscard]] std::vector<std::uint64_t> get_u64_vec();
  /// Reads the u64 count; it must equal `count` (callers size their
  /// destination from separately-serialized structure first).
  void get_u32_array(std::uint32_t* out, std::size_t count);
  void get_u8_array(std::uint8_t* out, std::size_t count);
  /// Reads the u64 count; it must equal `count` (callers size their
  /// destination from separately-serialized structure first).
  void get_f64_array(double* out, std::size_t count);
  [[nodiscard]] std::vector<double> get_f64_vec();

  /// True once every section has been consumed.
  [[nodiscard]] bool at_end() const { return pos_ == buffer_.size(); }

 private:
  void need(std::size_t n, std::string_view what);
  [[noreturn]] void fail(std::string_view constraint) const;
  std::uint32_t read_u32_at(std::size_t pos) const;
  std::uint64_t read_u64_at(std::size_t pos) const;

  std::vector<std::uint8_t> buffer_;
  std::size_t pos_ = 0;          // next unread byte in buffer_
  std::size_t section_end_ = 0;  // one past the open section's payload
  std::string section_name_;
  bool section_open_ = false;
};

}  // namespace netpp::state
