// In-memory snapshot images: the fork facility behind warm-state serving.
//
// A StateImage is a captured snapshot held as bytes. Where SnapshotWriter /
// SnapshotReader move state through files once, an image is captured once
// (from a warm baseline: simulator workspaces, route caches, telemetry
// registries) and then *forked* arbitrarily many times — each fork() hands
// out a fresh SnapshotReader over a private copy of the bytes, so thousands
// of divergent what-if restores never re-run setup and never share mutable
// state. Every fork revalidates the header, and section CRCs are checked on
// open exactly as for a file read, so a damaged image is rejected with the
// usual typed "SnapshotReader: ..." error instead of being served.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "netpp/state/snapshot.h"

namespace netpp::state {

class StateImage {
 public:
  /// An empty image; forking it throws ("SnapshotReader: buffer shorter
  /// than the snapshot header").
  StateImage() = default;

  /// Adopts already-serialized snapshot bytes (e.g. a SnapshotWriter
  /// buffer, or a file read). The bytes are validated lazily, on fork().
  explicit StateImage(std::vector<std::uint8_t> bytes)
      : bytes_(std::move(bytes)) {}

  /// Captures an image by running `save` over a fresh SnapshotWriter — the
  /// one-liner for "image this component's save_state".
  static StateImage capture(
      const std::function<void(SnapshotWriter&)>& save) {
    SnapshotWriter writer;
    save(writer);
    return StateImage{writer.buffer()};
  }

  /// Reads an image from `path`. Throws std::invalid_argument
  /// ("SnapshotReader: ...") if unreadable; content damage surfaces on
  /// fork()/open_section like any snapshot.
  static StateImage from_file(const std::string& path);

  /// Writes the image to `path` (binary, overwrite). Throws
  /// std::runtime_error on I/O failure.
  void write_file(const std::string& path) const;

  /// A fresh reader over a private copy of the bytes. The copy is what
  /// makes forks independent: a reader consumes its buffer positionally,
  /// and concurrent forks must not share cursors. Header validation runs
  /// per fork; per-section CRCs run on open_section as usual.
  [[nodiscard]] SnapshotReader fork() const { return SnapshotReader{bytes_}; }

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const {
    return bytes_;
  }
  [[nodiscard]] bool empty() const { return bytes_.empty(); }
  [[nodiscard]] std::size_t size_bytes() const { return bytes_.size(); }

 private:
  std::vector<std::uint8_t> bytes_;
};

}  // namespace netpp::state
